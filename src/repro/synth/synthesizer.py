"""High-level synthesis driver (paper section 4.3).

Given a learned Mealy skeleton and the Oracle Table's concrete traces,
build the sketch, solve it, and assemble an
:class:`~repro.core.extended.ExtendedMealyMachine`.  A CEGIS loop covers
the paper's refinement story: synthesized machines are validated against
additional traces (random equivalence testing); mismatching traces join
the constraint set and the solver restarts.

The module also hosts the Issue-4 analysis: detecting that a supposedly
variable output parameter is in fact a constant (Google's
``STREAM_DATA_BLOCKED.maximum_stream_data == 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.extended import (
    ConcreteStep,
    ExtendedMealyMachine,
    TransitionAnnotation,
)
from ..core.mealy import MealyMachine
from .constraints import INITIAL_KEY, SynthesisProblem, Unknown, build_problem
from .solver import Assignment, SearchBudgetExceeded, SolverStats, TraceSolver
from .terms import ConstTerm, RegisterTerm, Term


@dataclass
class SynthesisResult:
    """A synthesized machine plus the run's accounting."""

    machine: ExtendedMealyMachine
    problem: SynthesisProblem
    assignment: Assignment
    stats: SolverStats
    training_traces: list = field(default_factory=list)
    rounds: int = 1

    def output_terms(self, parameter: str) -> dict[tuple, Term]:
        """The synthesized term for ``parameter`` on each transition."""
        return {
            unknown.transition: term
            for unknown, term in self.assignment.items()
            if unknown.kind == "output" and unknown.name == parameter
        }

    def constant_output(self, parameter: str) -> int | None:
        """If the synthesized machine emits a single value for
        ``parameter`` everywhere, return it -- the Issue-4 detector.

        The check is *semantic*: the machine is executed over the training
        traces and the predicted values for the parameter are collected.
        (A syntactically non-constant term such as a never-updated register
        still counts -- the paper's observation is precisely that the field
        "always has the value 0, and is never updated".)
        """
        terms = self.output_terms(parameter)
        if not terms:
            return None
        if self.training_traces:
            values: set[int] = set()
            for steps in self.training_traces:
                try:
                    predictions = self.machine.execute(list(steps))
                except KeyError:
                    continue
                for step, predicted in zip(steps, predictions):
                    if parameter in step.output_params and parameter in predicted:
                        values.add(predicted[parameter])
            return values.pop() if len(values) == 1 else None
        constants = set()
        for term in terms.values():
            if not isinstance(term, ConstTerm):
                return None
            constants.add(term.value)
        return constants.pop() if len(constants) == 1 else None


def assignment_to_machine(
    problem: SynthesisProblem, assignment: Assignment, name: str = "synthesized"
) -> ExtendedMealyMachine:
    """Assemble the extended machine; unvisited transitions hold registers."""
    initial_registers = dict(problem.initial_registers)
    for register in problem.register_names:
        unknown = Unknown(INITIAL_KEY, "initial", register)
        if unknown in assignment:
            initial_registers[register] = assignment[unknown].evaluate({}, {})
    annotations: dict = {}
    for state in problem.skeleton.states:
        for symbol in problem.skeleton.input_alphabet:
            key = (state, symbol)
            updates: dict[str, Term] = {}
            outputs: dict[str, Term] = {}
            for register in problem.register_names:
                unknown = Unknown(key, "update", register)
                updates[register] = assignment.get(unknown, RegisterTerm(register))
            for parameter in problem.output_fields:
                unknown = Unknown(key, "output", parameter)
                if unknown in assignment:
                    outputs[parameter] = assignment[unknown]
            annotations[key] = TransitionAnnotation(updates=updates, outputs=outputs)
    return ExtendedMealyMachine(
        skeleton=problem.skeleton,
        register_names=problem.register_names,
        initial_registers=initial_registers,
        annotations=annotations,
        name=name,
    )


def synthesize(
    skeleton: MealyMachine,
    traces: Sequence[Sequence[ConcreteStep]],
    register_names: Sequence[str] = ("r0",),
    negative_traces: Sequence[Sequence[ConcreteStep]] = (),
    name: str = "synthesized",
    max_branches: int = 500_000,
    **problem_kwargs,
) -> SynthesisResult | None:
    """One-shot synthesis from a fixed trace set.

    Returns None when the constraints are unsatisfiable *or* when the
    search budget runs out (proving UNSAT over a large sketch is
    exponential; callers treat both as "no machine found").
    """
    problem = build_problem(
        skeleton, traces, register_names=register_names, **problem_kwargs
    )
    solver = TraceSolver(problem, traces, negative_traces, max_branches=max_branches)
    try:
        assignment = solver.solve()
    except SearchBudgetExceeded:
        return None
    if assignment is None:
        return None
    machine = assignment_to_machine(problem, dict(assignment), name=name)
    return SynthesisResult(
        machine=machine,
        problem=problem,
        assignment=dict(assignment),
        stats=solver.stats,
        training_traces=[list(t) for t in traces],
    )


TraceProvider = Callable[[int], Sequence[Sequence[ConcreteStep]]]


def synthesize_with_cegis(
    skeleton: MealyMachine,
    initial_traces: Sequence[Sequence[ConcreteStep]],
    trace_provider: TraceProvider,
    register_names: Sequence[str] = ("r0",),
    max_rounds: int = 5,
    name: str = "synthesized",
    **problem_kwargs,
) -> SynthesisResult | None:
    """Counterexample-guided refinement.

    After each synthesis, ``trace_provider(round)`` supplies fresh concrete
    traces (in Prognosis these come from random equivalence testing against
    the SUL).  Traces the candidate machine mispredicts are added to the
    constraint set; consistent machines are returned.  This matches the
    paper: "these are detected through random equivalence testing, and
    trigger new queries in the synthesis algorithm".
    """
    traces = [list(t) for t in initial_traces]
    result: SynthesisResult | None = None
    for round_number in range(1, max_rounds + 1):
        result = synthesize(
            skeleton, traces, register_names=register_names, name=name, **problem_kwargs
        )
        if result is None:
            return None
        fresh = trace_provider(round_number)
        mispredicted = [
            list(t) for t in fresh if not result.machine.consistent_with(list(t))
        ]
        if not mispredicted:
            result.rounds = round_number
            return result
        traces.extend(mispredicted)
    if result is not None:
        result.rounds = max_rounds
    return result

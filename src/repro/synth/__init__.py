"""Synthesis module: term grammar, constraints, solver, CEGIS driver."""

from .constraints import SynthesisProblem, Unknown, build_problem
from .solver import Assignment, SolverStats, TraceSolver
from .synthesizer import (
    SynthesisResult,
    assignment_to_machine,
    synthesize,
    synthesize_with_cegis,
)
from .terms import (
    ConstTerm,
    InputTerm,
    PlusOne,
    RegisterTerm,
    Term,
    candidate_terms,
    mine_constants,
    term_complexity,
)

__all__ = [
    "Assignment",
    "ConstTerm",
    "InputTerm",
    "PlusOne",
    "RegisterTerm",
    "SolverStats",
    "SynthesisProblem",
    "SynthesisResult",
    "Term",
    "TraceSolver",
    "Unknown",
    "assignment_to_machine",
    "build_problem",
    "candidate_terms",
    "mine_constants",
    "synthesize",
    "synthesize_with_cegis",
    "term_complexity",
]

"""The term grammar of paper section 4.3.

Register updates and output parameters are drawn from a finite menu of
terms: a register's previous value, an input parameter, either of those
incremented by one, or a constant mined from the traces -- e.g. the
candidate list ``[r, r+1, pr, pr+1, pi, pi+1, sn, an]`` of the paper's
worked example.  Terms evaluate over a register valuation and the current
step's concrete input parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class RegisterTerm:
    """The (previous or updated, per context) value of a register."""

    register: str

    def evaluate(self, registers: Mapping[str, int], inputs: Mapping[str, int]) -> int:
        return registers[self.register]

    def __str__(self) -> str:
        return self.register


@dataclass(frozen=True)
class InputTerm:
    """A concrete parameter of the current input packet (e.g. ``sn``)."""

    field: str

    def evaluate(self, registers: Mapping[str, int], inputs: Mapping[str, int]) -> int:
        return inputs[self.field]

    def __str__(self) -> str:
        return self.field


@dataclass(frozen=True)
class ConstTerm:
    """A constant mined from the traces (e.g. the telltale 0 of Issue 4)."""

    value: int

    def evaluate(self, registers: Mapping[str, int], inputs: Mapping[str, int]) -> int:
        return self.value

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class PlusOne:
    """Any base term incremented by one (``r + 1``, ``sn + 1``)."""

    base: "RegisterTerm | InputTerm"

    def evaluate(self, registers: Mapping[str, int], inputs: Mapping[str, int]) -> int:
        return self.base.evaluate(registers, inputs) + 1

    def __str__(self) -> str:
        return f"{self.base}+1"


Term = RegisterTerm | InputTerm | ConstTerm | PlusOne


def term_complexity(term: Term) -> int:
    """Preference order for solutions: registers < inputs < consts < +1.

    The solver tries simpler terms first, so synthesized machines read like
    the paper's figures (``r = pr`` rather than an incidental constant).
    """
    if isinstance(term, RegisterTerm):
        return 0
    if isinstance(term, InputTerm):
        return 1
    if isinstance(term, ConstTerm):
        return 2
    return 1 + term_complexity(term.base)


def candidate_terms(
    registers: Sequence[str],
    input_fields: Sequence[str],
    constants: Iterable[int] = (),
    allow_increment: bool = True,
) -> tuple[Term, ...]:
    """The full candidate menu for one unknown, sorted by complexity."""
    terms: list[Term] = []
    for register in registers:
        terms.append(RegisterTerm(register))
        if allow_increment:
            terms.append(PlusOne(RegisterTerm(register)))
    for field in input_fields:
        terms.append(InputTerm(field))
        if allow_increment:
            terms.append(PlusOne(InputTerm(field)))
    for value in sorted(set(constants)):
        terms.append(ConstTerm(value))
    return tuple(sorted(terms, key=term_complexity))


def mine_constants(
    traces: Sequence[Sequence], fields: Sequence[str], limit: int = 8
) -> list[int]:
    """Collect small constants that appear as observed output parameters.

    The paper's constraints include trace literals (0 and 3 in the worked
    example); constants observed most often come first so the solver sees
    the likely candidates early.
    """
    from collections import Counter

    counts: Counter = Counter()
    for steps in traces:
        for step in steps:
            for f in fields:
                value = step.output_params.get(f)
                if value is not None:
                    counts[value] += 1
    return [value for value, _ in counts.most_common(limit)]

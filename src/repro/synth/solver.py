"""A finite-domain constraint solver: the offline stand-in for Z3.

The constraint system of paper section 4.3 is a finite choice per unknown
(``0 <= E_u <= 7``) plus implications equating register/output values along
each trace.  Because every domain is finite and constraints only fire on
the trace path that touches them, depth-first search with *lazy branching*
decides the system exactly:

* traces are replayed step by step; register values are concrete under the
  current partial assignment;
* the first time a step needs an unassigned unknown, we branch over its
  candidate menu (simplest terms first);
* any violated output constraint prunes the whole subtree immediately.

Negative examples (traces the machine must *not* reproduce, used when
random testing refutes a synthesized machine) are checked at the end of
each complete assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.extended import ConcreteStep
from ..core.mealy import State
from .constraints import INITIAL_KEY, SynthesisProblem, Unknown
from .terms import ConstTerm, InputTerm, PlusOne, RegisterTerm, Term


class SearchBudgetExceeded(RuntimeError):
    """The DFS hit its branch budget (usually: proving UNSAT is too big)."""


#: Sentinel: an output term that can never produce the observed value here.
_INFEASIBLE = object()


def _register_requirement(
    term: Term, observed: int, inputs
) -> tuple[str, int] | None | object:
    """What an output-term choice implies.

    Returns ``(register, required_post_update_value)`` for register-valued
    terms, ``None`` for input/constant terms that already match the observed
    value, and :data:`_INFEASIBLE` for terms that cannot match.
    """
    if isinstance(term, RegisterTerm):
        return term.register, observed
    if isinstance(term, PlusOne) and isinstance(term.base, RegisterTerm):
        return term.base.register, observed - 1
    if isinstance(term, InputTerm):
        value = inputs.get(term.field)
        return None if value == observed else _INFEASIBLE
    if isinstance(term, PlusOne) and isinstance(term.base, InputTerm):
        value = inputs.get(term.base.field)
        return None if value is not None and value + 1 == observed else _INFEASIBLE
    if isinstance(term, ConstTerm):
        return None if term.value == observed else _INFEASIBLE
    return _INFEASIBLE

Assignment = dict[Unknown, Term]


@dataclass
class SolverStats:
    branches: int = 0
    conflicts: int = 0
    solutions_checked: int = 0


class TraceSolver:
    """DFS with lazy branching over the unknowns of a synthesis problem."""

    def __init__(
        self,
        problem: SynthesisProblem,
        positive_traces: Sequence[Sequence[ConcreteStep]],
        negative_traces: Sequence[Sequence[ConcreteStep]] = (),
        max_branches: int = 2_000_000,
    ) -> None:
        self.problem = problem
        self.positive = [list(t) for t in positive_traces]
        self.negative = [list(t) for t in negative_traces]
        self.max_branches = max_branches
        self.stats = SolverStats()

    # ------------------------------------------------------------------
    def solve(self) -> Assignment | None:
        """The first consistent assignment, or None if unsatisfiable.

        The DFS chains recursion across every step of every trace, so the
        recursion limit is raised to cover the whole constraint path.
        """
        import sys

        total_steps = sum(len(t) for t in self.positive)
        needed = total_steps * 8 + len(self.positive) * 4 + 2000
        previous_limit = sys.getrecursionlimit()
        if needed > previous_limit:
            sys.setrecursionlimit(needed)
        try:
            return self._solve_traces({}, 0)
        finally:
            sys.setrecursionlimit(previous_limit)

    # ------------------------------------------------------------------
    def _solve_traces(self, assignment: Assignment, index: int) -> Assignment | None:
        if index == len(self.positive):
            self.stats.solutions_checked += 1
            if all(not self._reproduces(assignment, t) for t in self.negative):
                return assignment
            self.stats.conflicts += 1
            return None
        trace = self.positive[index]

        def start(with_assignment: Assignment) -> Assignment | None:
            registers = self._initial_registers(with_assignment)
            return self._run_steps(
                with_assignment,
                index,
                trace,
                0,
                self.problem.skeleton.initial_state,
                registers,
            )

        return self._assign_initials(assignment, start)

    def _initial_unknowns(self) -> list[Unknown]:
        return [
            Unknown(INITIAL_KEY, "initial", register)
            for register in self.problem.register_names
            if Unknown(INITIAL_KEY, "initial", register) in self.problem.candidates
        ]

    def _initial_registers(self, assignment: Assignment) -> dict[str, int]:
        registers = dict(self.problem.initial_registers)
        for unknown in self._initial_unknowns():
            term = assignment.get(unknown)
            if term is not None:
                registers[unknown.name] = term.evaluate({}, {})
        return registers

    def _assign_initials(self, assignment: Assignment, cont) -> Assignment | None:
        """Branch over any still-unassigned initial-register unknowns."""
        pending = [u for u in self._initial_unknowns() if u not in assignment]

        def recurse(i: int) -> Assignment | None:
            if i == len(pending):
                return cont(assignment)
            unknown = pending[i]
            for term in self.problem.candidates[unknown]:
                self.stats.branches += 1
                if self.stats.branches > self.max_branches:
                    raise SearchBudgetExceeded(
                        f"synthesis search budget exhausted "
                        f"({self.max_branches} branches)"
                    )
                assignment[unknown] = term
                result = recurse(i + 1)
                if result is not None:
                    return result
                del assignment[unknown]
            self.stats.conflicts += 1
            return None

        return recurse(0)

    def _run_steps(
        self,
        assignment: Assignment,
        trace_index: int,
        steps: list[ConcreteStep],
        position: int,
        state: State,
        registers: dict[str, int],
    ) -> Assignment | None:
        if position == len(steps):
            return self._solve_traces(assignment, trace_index + 1)
        step = steps[position]
        key = (state, step.input_symbol)

        # Gather the unknowns this step consults, in evaluation order.
        update_unknowns = [
            Unknown(key, "update", register)
            for register in self.problem.register_names
            if Unknown(key, "update", register) in self.problem.candidates
        ]
        output_unknowns = [
            Unknown(key, "output", parameter)
            for parameter in step.output_params
            if Unknown(key, "output", parameter) in self.problem.candidates
        ]

        inputs = step.input_params

        def budget() -> None:
            self.stats.branches += 1
            if self.stats.branches > self.max_branches:
                raise SearchBudgetExceeded(
                    f"synthesis search budget exhausted "
                    f"({self.max_branches} branches)"
                )

        # Goal-directed search: output terms are chosen FIRST.  A register
        # -valued output term fixes the post-update value that register must
        # take ("requirements"), which then filters the update candidates --
        # without this propagation, unconstrained update unknowns make the
        # DFS thrash (chronological backtracking over irrelevant choices).
        def choose_outputs(
            i: int, requirements: dict[str, int]
        ) -> Assignment | None:
            if i == len(output_unknowns):
                return choose_updates(0, requirements, {})
            unknown = output_unknowns[i]
            observed = step.output_params[unknown.name]
            preassigned = unknown in assignment
            terms = (
                [assignment[unknown]]
                if preassigned
                else self.problem.candidates[unknown]
            )
            for term in terms:
                budget()
                requirement = _register_requirement(term, observed, inputs)
                if requirement is _INFEASIBLE:
                    continue
                added: str | None = None
                if requirement is not None:
                    register, value = requirement
                    if requirements.get(register, value) != value:
                        continue
                    if register not in requirements:
                        requirements[register] = value
                        added = register
                if not preassigned:
                    assignment[unknown] = term
                result = choose_outputs(i + 1, requirements)
                if result is not None:
                    return result
                if not preassigned:
                    del assignment[unknown]
                if added is not None:
                    del requirements[added]
            self.stats.conflicts += 1
            return None

        def choose_updates(
            j: int, requirements: dict[str, int], chosen: dict[str, int]
        ) -> Assignment | None:
            if j == len(update_unknowns):
                updated = dict(registers)
                updated.update(chosen)
                # Requirements on registers without an update unknown must
                # be met by the carried-over value.
                for register, value in requirements.items():
                    if updated.get(register) != value:
                        self.stats.conflicts += 1
                        return None
                next_state, _ = self.problem.skeleton.step(
                    state, step.input_symbol
                )
                return self._run_steps(
                    assignment, trace_index, steps, position + 1, next_state, updated
                )
            unknown = update_unknowns[j]
            register = unknown.name
            required = requirements.get(register)
            if unknown in assignment:
                try:
                    value = assignment[unknown].evaluate(registers, inputs)
                except KeyError:
                    self.stats.conflicts += 1
                    return None
                if required is not None and value != required:
                    self.stats.conflicts += 1
                    return None
                chosen[register] = value
                result = choose_updates(j + 1, requirements, chosen)
                if result is None:
                    del chosen[register]
                return result
            for term in self.problem.candidates[unknown]:
                budget()
                try:
                    value = term.evaluate(registers, inputs)
                except KeyError:
                    continue
                if required is not None and value != required:
                    continue
                assignment[unknown] = term
                chosen[register] = value
                result = choose_updates(j + 1, requirements, chosen)
                if result is not None:
                    return result
                del assignment[unknown]
                del chosen[register]
            self.stats.conflicts += 1
            return None

        return choose_outputs(0, {})

    # ------------------------------------------------------------------
    def _reproduces(self, assignment: Assignment, steps: list[ConcreteStep]) -> bool:
        """Does the assignment's machine reproduce a (negative) trace?"""
        registers = dict(self.problem.initial_registers)
        state = self.problem.skeleton.initial_state
        for step in steps:
            key = (state, step.input_symbol)
            updated = dict(registers)
            for register in self.problem.register_names:
                unknown = Unknown(key, "update", register)
                term = assignment.get(unknown)
                if term is not None:
                    try:
                        updated[register] = term.evaluate(registers, step.input_params)
                    except KeyError:
                        return False
            for parameter, observed in step.output_params.items():
                unknown = Unknown(key, "output", parameter)
                term = assignment.get(unknown)
                if term is None:
                    continue
                try:
                    if term.evaluate(updated, step.input_params) != observed:
                        return False
                except KeyError:
                    return False
            registers = updated
            state, _ = self.problem.skeleton.step(state, step.input_symbol)
        return True

"""Synthesis problem formulation (paper section 4.3).

A :class:`SynthesisProblem` is the "sketch": the learned Mealy skeleton,
the register vector, and -- for every transition -- one unknown per
register update and one unknown per output parameter, each with its finite
candidate-term menu.  Concrete traces from the Oracle Table become the
constraints: replaying a trace through the skeleton pins down which
unknowns fire at which step, and every observed output parameter must
match the chosen output term's value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.extended import ConcreteStep
from ..core.mealy import MealyMachine, State
from ..core.alphabet import AbstractSymbol
from .terms import ConstTerm, RegisterTerm, Term, candidate_terms, mine_constants

TransitionKey = tuple[State, AbstractSymbol]


@dataclass(frozen=True)
class Unknown:
    """One hole in the sketch.

    ``kind`` is ``"update"`` (register update on a transition, evaluated
    over previous registers + inputs), ``"output"`` (output parameter,
    evaluated over updated registers + inputs), or ``"initial"`` (the
    register's value before any input; transition is a placeholder).
    """

    transition: TransitionKey
    kind: str
    name: str  # register name for updates/initials, parameter for outputs

    def render(self) -> str:
        if self.kind == "initial":
            return f"initial:{self.name}"
        state, symbol = self.transition
        return f"{self.kind}:{self.name}@({state},{symbol})"


#: Placeholder transition key for initial-register unknowns.
INITIAL_KEY: TransitionKey = ("__initial__", None)


@dataclass
class SynthesisProblem:
    """The sketch plus candidate menus for every unknown."""

    skeleton: MealyMachine
    register_names: tuple[str, ...]
    input_fields: tuple[str, ...]
    output_fields: tuple[str, ...]
    initial_registers: dict[str, int]
    candidates: dict[Unknown, tuple[Term, ...]] = field(default_factory=dict)

    def unknowns(self) -> list[Unknown]:
        return list(self.candidates)

    def search_space(self) -> int:
        """Total assignments -- the size Z3 would explore symbolically."""
        size = 1
        for menu in self.candidates.values():
            size *= max(1, len(menu))
        return size


def build_problem(
    skeleton: MealyMachine,
    traces: Sequence[Sequence[ConcreteStep]],
    register_names: Sequence[str] = ("r0",),
    input_fields: Sequence[str] | None = None,
    output_fields: Sequence[str] | None = None,
    initial_registers: dict[str, int] | None = None,
    allow_increment: bool = True,
    extra_constants: Sequence[int] = (),
    search_initial_registers: bool = True,
) -> SynthesisProblem:
    """Assemble the sketch from a learned machine and oracle-table traces.

    Input/output fields default to every parameter name observed anywhere
    in the traces.  Unknowns are only created for transitions actually
    exercised by some trace (unvisited transitions would be unconstrained;
    they keep implicit "hold" semantics).
    """
    observed_inputs: set[str] = set()
    observed_outputs: set[str] = set()
    visited: set[TransitionKey] = set()
    output_at: dict[TransitionKey, set[str]] = {}
    for steps in traces:
        state = skeleton.initial_state
        for step in steps:
            key = (state, step.input_symbol)
            visited.add(key)
            observed_inputs.update(step.input_params)
            observed_outputs.update(step.output_params)
            output_at.setdefault(key, set()).update(step.output_params)
            state, _ = skeleton.step(state, step.input_symbol)
    in_fields = tuple(sorted(input_fields or observed_inputs))
    out_fields = tuple(sorted(output_fields or observed_outputs))
    constants = list(extra_constants) + mine_constants(traces, out_fields)

    problem = SynthesisProblem(
        skeleton=skeleton,
        register_names=tuple(register_names),
        input_fields=in_fields,
        output_fields=out_fields,
        initial_registers=dict(initial_registers or {r: 0 for r in register_names}),
    )
    update_menu = candidate_terms(
        problem.register_names, in_fields, constants=(0,), allow_increment=allow_increment
    )
    output_menu = candidate_terms(
        problem.register_names, in_fields, constants=constants, allow_increment=allow_increment
    )
    def menu_for(register: str) -> tuple:
        # Each register tries its own "hold" term first, so inert registers
        # default to no-ops instead of spurious cross-register copies --
        # a large constant-factor win for the DFS.
        hold = RegisterTerm(register)
        rest = [t for t in update_menu if t != hold]
        return (hold, *rest)

    for key in sorted(visited, key=str):
        for register in problem.register_names:
            problem.candidates[Unknown(key, "update", register)] = menu_for(register)
        for parameter in sorted(output_at.get(key, ())):
            if parameter in out_fields:
                problem.candidates[Unknown(key, "output", parameter)] = output_menu
    if search_initial_registers and initial_registers is None:
        # Initial register values are themselves unknowns drawn from the
        # mined constants (the paper's r[0] variables).  Frequency order
        # matters: the most-observed constant is usually the initial value
        # (e.g. the initial flow-control limit), and trying it first keeps
        # the chronologically backtracking DFS out of exponential corners.
        initial_menu = tuple(
            ConstTerm(value) for value in dict.fromkeys([*constants, 0])
        )
        for register in problem.register_names:
            problem.candidates[Unknown(INITIAL_KEY, "initial", register)] = (
                initial_menu
            )
    return problem

"""Simulated network substrate: virtual clock + unreliable datagram link."""

from .clock import VirtualClock
from .network import (
    Address,
    Datagram,
    Endpoint,
    LinkConfig,
    NetworkError,
    PERFECT_LINK,
    SimulatedNetwork,
)

__all__ = [
    "Address",
    "Datagram",
    "Endpoint",
    "LinkConfig",
    "NetworkError",
    "PERFECT_LINK",
    "SimulatedNetwork",
    "VirtualClock",
]

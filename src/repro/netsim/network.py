"""A simulated datagram network.

Implementations and reference clients exchange raw ``bytes`` payloads through
:class:`SimulatedNetwork`, which models an unreliable UDP-like link: loss,
duplication, latency with jitter, and reordering, all driven by a seeded RNG
and a :class:`~repro.netsim.clock.VirtualClock` so every run is
deterministic.

The network is event-driven but synchronous: callers enqueue datagrams and
then :meth:`SimulatedNetwork.run` delivers them in timestamp order, invoking
any handler attached to the destination endpoint.  Handlers may send more
datagrams, which are delivered in the same run -- enough to express complete
request/response protocol exchanges without threads.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Tuple

from .clock import VirtualClock

Address = Tuple[str, int]


class NetworkError(RuntimeError):
    """Raised on binding conflicts or sends from unbound endpoints."""


@dataclass(frozen=True)
class Datagram:
    """One UDP-like datagram in flight or delivered."""

    payload: bytes
    source: Address
    destination: Address
    sent_at: float


@dataclass(order=True)
class _ScheduledDelivery:
    deliver_at: float
    sequence: int
    datagram: Datagram = field(compare=False)


@dataclass(frozen=True)
class LinkConfig:
    """Impairment parameters for the simulated link.

    ``loss_rate`` and ``duplicate_rate`` are probabilities per datagram;
    ``latency`` is the base one-way delay and ``jitter`` the maximum extra
    random delay (which is also what makes reordering possible).
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    latency: float = 0.001
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate out of range: {self.loss_rate}")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError(f"duplicate_rate out of range: {self.duplicate_rate}")
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency and jitter must be non-negative")


PERFECT_LINK = LinkConfig()

EPHEMERAL_PORT_START = 49152
EPHEMERAL_PORT_END = 65535


class Endpoint:
    """A bound network endpoint: an inbox plus a send method.

    An optional ``handler`` is invoked synchronously for each delivered
    datagram (server style); without one, datagrams queue in the inbox for
    explicit :meth:`receive` calls (client style).
    """

    def __init__(self, network: "SimulatedNetwork", address: Address) -> None:
        self._network = network
        self.address = address
        self.inbox: list[Datagram] = []
        self.handler: Callable[[Datagram], None] | None = None
        self.closed = False

    def send(self, payload: bytes, destination: Address) -> None:
        """Enqueue a datagram to ``destination``."""
        if self.closed:
            raise NetworkError(f"send on closed endpoint {self.address}")
        self._network.send(self.address, destination, payload)

    def receive(self) -> Datagram | None:
        """Pop the oldest delivered datagram, or None if the inbox is empty."""
        if self.inbox:
            return self.inbox.pop(0)
        return None

    def receive_all(self) -> list[Datagram]:
        """Drain the inbox."""
        drained, self.inbox = self.inbox, []
        return drained

    def close(self) -> None:
        """Unbind from the network; the port becomes reusable."""
        if not self.closed:
            self._network._unbind(self)
            self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Endpoint({self.address}, inbox={len(self.inbox)})"


class SimulatedNetwork:
    """The shared medium connecting every endpoint in a simulation."""

    def __init__(
        self,
        clock: VirtualClock | None = None,
        seed: int = 0,
        config: LinkConfig = PERFECT_LINK,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.config = config
        self._rng = random.Random(seed)
        self._endpoints: dict[Address, Endpoint] = {}
        self._queue: list[_ScheduledDelivery] = []
        self._sequence = 0
        self._next_ephemeral = EPHEMERAL_PORT_START
        self._drop_next = 0
        self.stats = {"sent": 0, "delivered": 0, "lost": 0, "duplicated": 0}

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, host: str, port: int | None = None) -> Endpoint:
        """Bind an endpoint; ``port=None`` picks a free ephemeral port."""
        if port is None:
            port = self._allocate_ephemeral(host)
        address = (host, port)
        if address in self._endpoints:
            raise NetworkError(f"address already bound: {address}")
        endpoint = Endpoint(self, address)
        self._endpoints[address] = endpoint
        return endpoint

    def random_port_endpoint(self, host: str) -> Endpoint:
        """Bind to a *random* free ephemeral port.

        This models the QUIC-Tracker bug of section 6.2.5, where the retry
        token was re-sent from a brand-new UDP socket on a random port.
        """
        for _ in range(64):
            port = self._rng.randint(EPHEMERAL_PORT_START, EPHEMERAL_PORT_END)
            if (host, port) not in self._endpoints:
                return self.bind(host, port)
        raise NetworkError(f"no free ephemeral port on host {host!r}")

    def _allocate_ephemeral(self, host: str) -> int:
        for _ in range(EPHEMERAL_PORT_END - EPHEMERAL_PORT_START + 1):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > EPHEMERAL_PORT_END:
                self._next_ephemeral = EPHEMERAL_PORT_START
            if (host, port) not in self._endpoints:
                return port
        raise NetworkError(f"ephemeral port range exhausted on host {host!r}")

    def _unbind(self, endpoint: Endpoint) -> None:
        self._endpoints.pop(endpoint.address, None)

    def endpoint_at(self, address: Address) -> Endpoint | None:
        return self._endpoints.get(address)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def drop_next(self, count: int = 1) -> None:
        """Deterministically drop the next ``count`` datagrams sent.

        Unlike :attr:`LinkConfig.loss_rate` (probabilistic, RNG-driven)
        this is an imperative fault-injection hook: the next ``count``
        calls to :meth:`send` discard their datagram, regardless of link
        configuration.  Scenario probes use it to place a loss at an
        exact point in an exchange -- e.g. killing one QUIC packet of a
        two-request flight to show HTTP/3's lack of head-of-line
        blocking.
        """
        if count < 0:
            raise ValueError(f"drop count must be non-negative: {count}")
        self._drop_next += count

    def send(self, source: Address, destination: Address, payload: bytes) -> None:
        """Apply link impairments and schedule delivery."""
        self.stats["sent"] += 1
        if self._drop_next:
            self._drop_next -= 1
            self.stats["lost"] += 1
            return
        if self._rng.random() < self.config.loss_rate:
            self.stats["lost"] += 1
            return
        copies = 1
        if self._rng.random() < self.config.duplicate_rate:
            copies = 2
            self.stats["duplicated"] += 1
        for _ in range(copies):
            delay = self.config.latency + self._rng.random() * self.config.jitter
            datagram = Datagram(
                payload=payload,
                source=source,
                destination=destination,
                sent_at=self.clock.now,
            )
            self._sequence += 1
            heapq.heappush(
                self._queue,
                _ScheduledDelivery(self.clock.now + delay, self._sequence, datagram),
            )

    def step(self) -> bool:
        """Deliver the next scheduled datagram; False when nothing pending."""
        if not self._queue:
            return False
        scheduled = heapq.heappop(self._queue)
        self.clock.advance_to(scheduled.deliver_at)
        endpoint = self._endpoints.get(scheduled.datagram.destination)
        if endpoint is None or endpoint.closed:
            # Destination vanished -- datagram silently dropped, like UDP.
            self.stats["lost"] += 1
            return True
        self.stats["delivered"] += 1
        if endpoint.handler is not None:
            endpoint.handler(scheduled.datagram)
        else:
            endpoint.inbox.append(scheduled.datagram)
        return True

    def run(self, max_events: int = 100_000) -> int:
        """Deliver everything pending (including handler-triggered sends)."""
        delivered = 0
        while self.step():
            delivered += 1
            if delivered >= max_events:
                raise NetworkError(
                    f"network did not quiesce within {max_events} events; "
                    "likely a ping-pong loop between handlers"
                )
        return delivered

    @property
    def pending(self) -> int:
        """Datagrams scheduled but not yet delivered."""
        return len(self._queue)

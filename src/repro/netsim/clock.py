"""A virtual clock for deterministic network simulation.

All time in the simulator is logical: nothing sleeps, and two runs with the
same seed produce identical schedules.  The clock only moves when the
network advances it to the next scheduled event.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonically increasing logical time, measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds (never backwards)."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards (delta={delta})")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute timestamp (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"

"""Command-line interface: ``python -m repro <command>``.

Gives the framework the shape of a releasable tool:

* ``learn``      -- learn a model of a registered SUL target, print/export it
* ``compare``    -- learn two SULs and diff their models
* ``check``      -- model-check an LTLf property against a learned model
* ``properties`` -- run a registered property suite (tcp, quic, http2,
  toy, plug-ins) and/or ad-hoc LTLf formulas against learned models;
  accepts targets, whole families and spec files, and emits
  ``properties.json`` verdict artifacts with minimized witnesses
* ``issues``     -- reproduce one of the paper's four findings
* ``run``        -- execute a declarative experiment spec (JSON file)
* ``passive``    -- bulk-trace passive learning: fold a JSONL session
  corpus into a partial Mealy machine (hardened RPNI), then actively
  refine the undetermined cells through the oracle stack; ``--generate``
  / ``--full`` produce corpora from a registered target first
* ``sweep``      -- run a campaign grid: targets x learners x seeds
* ``difftest``   -- differential conformance campaign over a target family:
  learn every implementation, cross-replay every model-derived suite,
  print the N x N verdict matrix with minimized witnesses
* ``ci``         -- incremental model CI: revalidate each target's stored
  model against the live SUL through the persistent query store, exit
  nonzero (with a minimized diff witness) on behavioural drift
* ``store``      -- inspect (``--stats``) or garbage-collect (``--gc``)
  a persistent query/model store file

``run``, ``sweep`` and ``difftest`` accept ``--store PATH`` to read and
persist membership observations (and model lineage) across invocations.

Target and learner choices come from the :mod:`repro.registry`
registries, so protocols registered by plug-ins appear automatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .registry import LEARNER_REGISTRY, SUL_REGISTRY, load_builtins

#: The classic paper targets (kept for scripts importing this tuple; the
#: parser itself accepts every registered SUL target).
TARGETS = ("tcp", "quic-google", "quic-quiche", "quic-mvfst")


def _known_targets() -> tuple[str, ...]:
    load_builtins()
    return tuple(sorted(SUL_REGISTRY.names()))


def _known_learners() -> tuple[str, ...]:
    load_builtins()
    return tuple(sorted(LEARNER_REGISTRY.names()))


def _learn(target: str, learner: str = "ttt"):
    """Learn one target; returns an Experiment the caller must close."""
    from .experiments import learn_quic, learn_tcp_full

    if target == "tcp":
        return learn_tcp_full(learner=learner)
    if target in TARGETS:
        return learn_quic(target.split("-", 1)[1], learner=learner)
    # Any other registered target runs through the generic spec path.
    from .experiments.base import Experiment
    from .spec import ExperimentSpec

    return Experiment.run(ExperimentSpec(target=target, learner=learner))


def _cmd_learn(args: argparse.Namespace) -> int:
    from .analysis.visualize import transition_table

    with _learn(args.target, args.learner) as experiment:
        print(experiment.report.summary())
        if args.table:
            print(transition_table(experiment.model))
        if args.dot:
            with open(args.dot, "w") as handle:
                handle.write(experiment.model.to_dot())
            print(f"wrote {args.dot}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .framework import Prognosis

    with _learn(args.a) as first, _learn(args.b) as second:
        diff = Prognosis.compare(first.model, second.model)
    print(diff.render())
    return 0 if diff.equivalent else 1


def _cmd_check(args: argparse.Namespace) -> int:
    with _learn(args.target) as experiment:
        violation = experiment.prognosis.check(
            experiment.model, args.formula, depth=args.depth
        )
    if violation is None:
        print(f"property holds (depth {args.depth})")
        return 0
    print(f"property violated: {violation.trace.render()}")
    return 1


def _executor_spec(kind: str | None, timeout_s: float | None = None):
    """An :class:`~repro.spec.ExecutorSpec` for CLI flags (or ``None``)."""
    from .spec import ExecutorSpec

    if kind is None:
        return None
    return ExecutorSpec(kind=kind, timeout_s=timeout_s)


def _expand_member_specs(
    members: Sequence[str],
    learner: str = "ttt",
    seed: int = 0,
    sul_workers: int = 1,
    exact: bool = False,
    executor: str | None = None,
) -> tuple[list, str | None]:
    """Expand families/targets/spec files into a list of experiment specs.

    Name resolution (family expansion, sole-argument rule, ``exact``,
    dedup) is :func:`repro.registry.resolve_targets`; this wrapper adds
    the spec-file fallback for path-like arguments.  Returns
    ``(specs, None)`` on success or ``(None, error message)``.
    """
    from pathlib import Path

    from .registry import resolve_targets
    from .spec import ExperimentSpec

    load_builtins()
    families = SUL_REGISTRY.families()
    expanded = resolve_targets(members, exact=exact, allow_unknown=True)
    specs = []
    for member in expanded:
        if member in SUL_REGISTRY:
            specs.append(
                ExperimentSpec(
                    target=member,
                    learner=learner,
                    seed=seed,
                    workers=sul_workers,
                    name=member,
                    executor=_executor_spec(executor),
                )
            )
            continue
        path = Path(member)
        if path.suffix == ".json" or path.exists():
            try:
                spec = ExperimentSpec.from_file(path)
            except (OSError, ValueError) as error:
                return None, f"cannot load spec {member}: {error}"
            if spec.name is None:
                spec.name = path.stem
            if executor is not None:  # the CLI flag overrides the file
                spec.executor = _executor_spec(executor)
            specs.append(spec)
            continue
        known = ", ".join(sorted(set(families) | set(SUL_REGISTRY.names())))
        return None, (
            f"unknown target {member!r} (not a registered target, "
            f"family, or spec file); known: {known}"
        )
    return specs, None


def _cmd_properties(args: argparse.Namespace) -> int:
    from .analysis.property_api import resolve_properties
    from .campaign import Campaign
    from .spec import PropertiesSpec, SpecError

    specs, error = _expand_member_specs(
        args.targets, learner=args.learner, seed=args.seed, exact=args.exact
    )
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    from .registry import RegistryError

    formulas = args.formula or []
    for spec in specs:
        if spec.properties is None:
            spec.properties = PropertiesSpec(
                depth=args.depth,
                formulas=list(formulas),
                include_probes=args.probes,
            )
        else:
            # A spec file's own section wins; CLI formulas are appended.
            spec.properties.formulas.extend(formulas)
    try:
        resolved = [
            resolve_properties(
                spec.target,
                suite=spec.properties.suite,
                formulas=spec.properties.formulas,
                include_probes=True,
            )
            for spec in specs
        ]
    except RegistryError as error:
        print(f"invalid property campaign: {error}", file=sys.stderr)
        return 2
    if args.list:
        for spec, properties in zip(specs, resolved):
            print(f"{spec.display_name()}:")
            if not properties:
                print("  (no properties registered for this target)")
            for prop in properties:
                print(f"  {prop.name:<32} [{prop.kind}] {prop.description}")
        return 0
    if not any(resolved):
        print(
            "no properties to check: no registered suite for these targets "
            "and no --formula given (see 'repro properties --list')",
            file=sys.stderr,
        )
        return 2
    try:
        results = Campaign(
            specs, workers=args.workers, output_dir=args.out, share_cache=True
        ).run()
    except (SpecError, KeyError) as error:
        print(f"invalid property campaign: {error}", file=sys.stderr)
        return 2
    failed = False
    for result in results:
        if len(results) > 1:
            print(f"== {result.spec.display_name()}")
        if not result.ok:
            print(f"FAILED ({result.error})", file=sys.stderr)
            failed = True
            continue
        print(result.properties.render())
        print(result.properties.summary())
        if result.artifact_dir:
            print(f"artifacts: {result.artifact_dir}")
        if not result.properties.ok:
            failed = True
    return 1 if failed else 0


def _cmd_issues(args: argparse.Namespace) -> int:
    from .experiments import (
        issue1_retry_divergence,
        issue2_nondeterminism,
        issue3_retry_port,
        issue4_stream_data_blocked,
    )

    if args.number == 1:
        result = issue1_retry_divergence()
        print(result.diff.render())
    elif args.number == 2:
        result = issue2_nondeterminism()
        print(f"learning aborted: {result.error}")
        print(f"RESET rate: {result.reset_rate:.0%} (paper: ~82%)")
    elif args.number == 3:
        result = issue3_retry_port()
        print(f"buggy client establishes: {result.buggy_establishes}")
        print(f"fixed client establishes: {result.fixed_establishes}")
    else:
        result = issue4_stream_data_blocked()
        print(f"buggy  max_stream_data: constant {result.buggy_constant}")
        print(
            "fixed  max_stream_data: "
            + (
                "state-dependent"
                if result.fixed_constant is None
                else f"constant {result.fixed_constant}"
            )
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .campaign import run_spec
    from .spec import ExperimentSpec, SpecError

    try:
        spec = ExperimentSpec.from_file(args.spec)
    except (OSError, ValueError) as error:
        print(f"cannot load spec {args.spec}: {error}", file=sys.stderr)
        return 2
    if args.executor is not None:  # the CLI flag overrides the file
        spec.executor = _executor_spec(args.executor)
    try:
        spec.validate()
    except (SpecError, KeyError) as error:
        print(f"invalid spec: {error}", file=sys.stderr)
        return 2
    result = run_spec(spec, output_dir=args.out, store=args.store)
    print(result.summary())
    if result.artifact_dir:
        print(f"artifacts: {result.artifact_dir}")
    return 0 if result.ok else 1


def _cmd_passive(args: argparse.Namespace) -> int:
    import json
    import os

    from .learn.bulk import (
        bulk_passive_learn,
        generate_corpus,
        record_full_corpus,
    )
    from .spec import ExperimentSpec, SpecError

    if args.generate is not None and args.full:
        print("--generate and --full are mutually exclusive", file=sys.stderr)
        return 2
    spec = ExperimentSpec(
        target=args.target,
        learner=args.learner,
        seed=args.seed,
        middleware=["cache"],
        corpus=args.corpus,
        store=args.store,
        executor=_executor_spec(args.executor),
    )
    try:
        spec.validate()
    except (SpecError, KeyError) as error:
        print(f"invalid configuration: {error}", file=sys.stderr)
        return 2
    if args.generate is not None:
        count = generate_corpus(
            spec, args.corpus,
            num_sessions=args.generate, max_len=args.gen_max_len,
        )
        print(f"generated {count} session traces -> {args.corpus}")
    elif args.full:
        count = record_full_corpus(spec, args.corpus)
        print(f"recorded covering corpus ({count} observations) -> {args.corpus}")
    elif not os.path.exists(args.corpus):
        print(
            f"no corpus at {args.corpus} "
            "(use --generate N or --full to create one)",
            file=sys.stderr,
        )
        return 2
    try:
        result = bulk_passive_learn(spec, refine=not args.no_refine)
    except ValueError as error:  # corpus format errors, strict conflicts
        print(f"passive run failed: {error}", file=sys.stderr)
        return 1
    print(result.summary())
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        with open(os.path.join(args.out, "passive.json"), "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        if result.model is not None:
            with open(os.path.join(args.out, "model.json"), "w") as handle:
                json.dump(result.model.to_dict(), handle, indent=2, sort_keys=True)
            with open(os.path.join(args.out, "model.dot"), "w") as handle:
                handle.write(result.model.to_dot())
        print(f"artifacts: {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .campaign import Campaign

    try:
        seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    except ValueError:
        print(f"--seeds must be comma-separated integers, got {args.seeds!r}",
              file=sys.stderr)
        return 2
    base = None
    if args.executor is not None or args.sul_workers != 1:
        from .spec import ExperimentSpec

        base = ExperimentSpec(
            target="toy",
            workers=args.sul_workers,
            executor=_executor_spec(args.executor),
        )
    campaign = Campaign.grid(
        targets=args.target,
        learners=args.learner or ["ttt"],
        seeds=seeds or [0],
        base=base,
        workers=args.workers,
        output_dir=args.out,
        share_cache=not args.no_share_cache,
        store=args.store,
    )
    results = campaign.run()
    for result in results:
        print(result.summary())
    failed = sum(1 for result in results if not result.ok)
    if failed:
        print(f"{failed}/{len(results)} runs failed", file=sys.stderr)
    return 1 if failed else 0


def _cmd_difftest(args: argparse.Namespace) -> int:
    from .campaign import DiffCampaign
    from .spec import SpecError

    specs, error = _expand_member_specs(
        args.targets,
        learner=args.learner,
        seed=args.seed,
        sul_workers=args.sul_workers,
        exact=args.exact,
        executor=args.executor,
    )
    if error is not None:
        print(f"difftest: {error}", file=sys.stderr)
        return 2
    try:
        campaign = DiffCampaign(
            specs,
            kinds=tuple(args.kind or ["wmethod"]),
            workers=args.workers,
            output_dir=args.out,
            max_divergences=args.max_divergences,
            store=args.store,
        )
        result = campaign.run()
    except (SpecError, KeyError) as error:
        print(f"invalid difftest campaign: {error}", file=sys.stderr)
        return 2
    print(result.render())
    print()
    print(result.summary())
    if result.artifact_dir:
        print(f"artifacts: {result.artifact_dir}")
    if result.artifact_error:
        print(result.artifact_error, file=sys.stderr)
    if all(run.model is None for run in result.runs):
        print("no model could be learned", file=sys.stderr)
        return 1
    if args.fail_on_diverge and result.matrix.divergent_pairs():
        return 1
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    import os

    from .attack.automata import resolve_attacker
    from .campaign import Campaign
    from .registry import RegistryError, attacks_for, resolve_targets
    from .spec import AttackSpec, SpecError

    if args.list:
        load_builtins()
        try:
            expanded = resolve_targets(args.targets, exact=args.exact)
        except RegistryError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        for target in expanded:
            names = attacks_for(target)
            print(f"{target}: {', '.join(names) if names else '<none>'}")
        return 0

    if args.attacker is not None:
        try:
            resolve_attacker(args.attacker)
        except RegistryError as error:
            print(error.args[0], file=sys.stderr)
            return 2

    specs, error = _expand_member_specs(
        args.targets,
        learner=args.learner,
        seed=args.seed,
        sul_workers=args.workers,
        exact=args.exact,
        executor=args.executor,
    )
    if error:
        print(error, file=sys.stderr)
        return 2
    for spec in specs:
        corpus_out = None
        if args.out:
            corpus_out = os.path.join(
                args.out, f"attack-{spec.display_name()}-corpus.jsonl"
            )
        spec.attack = AttackSpec(
            attacker=args.attacker,
            objective=args.objective,
            budget=args.budget,
            fuzz=args.fuzz,
            max_suffix=args.max_suffix,
            corpus_out=corpus_out,
        )
        try:
            spec.validate()
        except (SpecError, KeyError) as error:
            print(f"invalid configuration: {error}", file=sys.stderr)
            return 2

    campaign = Campaign(specs, output_dir=args.out, store=args.store)
    failed = False
    for result in campaign.run():
        if not result.ok:
            print(f"{result.spec.display_name()}: FAILED ({result.error})")
            failed = True
            continue
        print(result.attacks.render())
        if result.artifact_dir:
            print(f"  artifacts: {result.artifact_dir}")
        if not result.attacks.ok:
            failed = True
    return 1 if failed else 0


def _cmd_ci(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .campaign import _safe_name
    from .store import incremental_learn

    specs, error = _expand_member_specs(
        args.targets, learner=args.learner, seed=args.seed, exact=args.exact
    )
    if error is not None:
        print(f"ci: {error}", file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else None
    drifted = failed = False
    for spec in specs:
        try:
            result = incremental_learn(
                spec,
                args.store,
                baseline=args.baseline,
                save=not args.no_save,
            )
        except Exception as error:
            print(
                f"{spec.display_name()}: FAILED "
                f"({type(error).__name__}: {error})",
                file=sys.stderr,
            )
            failed = True
            continue
        print(result.summary())
        if result.drifted and result.diff is not None:
            print(result.diff.render())
        if out is not None:
            out.mkdir(parents=True, exist_ok=True)
            (out / f"ci-{_safe_name(spec.display_name())}.json").write_text(
                json.dumps(result.to_dict(), indent=2) + "\n"
            )
        drifted = drifted or result.drifted
    if failed:
        return 2
    return 1 if drifted else 0


def _cmd_store(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .spec import ExperimentSpec
    from .store import FingerprintStats, ModelStore, QueryStore

    path = Path(args.path)
    if not path.exists():
        print(f"no store at {args.path}", file=sys.stderr)
        return 2
    if args.gc is not None:
        load_builtins()
        fingerprint = args.gc
        if fingerprint in SUL_REGISTRY:
            # A target name resolves to its default-params fingerprint.
            fingerprint = ExperimentSpec(target=fingerprint).sul_fingerprint()
        with QueryStore(path) as store:
            observations = store.gc(fingerprint)
        with ModelStore(path) as models:
            dropped = models.gc(fingerprint)
        print(
            f"gc {fingerprint}: removed {observations} observations, "
            f"{dropped} models"
        )
        return 0
    with QueryStore(path) as store, ModelStore(path) as models:
        fingerprints = sorted(
            set(store.fingerprints()) | set(models.fingerprints())
        )
        if not fingerprints:
            print(f"{args.path}: empty store")
            return 0
        print(f"{args.path}: {len(fingerprints)} fingerprints")
        for fingerprint in fingerprints:
            hits, misses = store.usage(fingerprint)
            stats = FingerprintStats(
                fingerprint=fingerprint,
                observations=store.word_count(fingerprint),
                models=models.version_count(fingerprint),
                hits=hits,
                misses=misses,
            )
            print(fingerprint)
            print(
                f"  observations: {stats.observations}  "
                f"models: {stats.models}  "
                f"recorded hit rate: {stats.hit_rate:.0%} "
                f"({stats.hits} hits / {stats.misses} misses)"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prognosis: closed-box protocol model learning and analysis",
        epilog="verbs: learn (model a SUL), compare, check, properties, "
        "issues, run, passive (bulk-trace corpora), sweep, difftest, "
        "attack (synthesize + confirm attacker strategies), ci, store",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    targets = _known_targets()
    learners = _known_learners()

    learn = sub.add_parser("learn", help="learn a model of a registered SUL")
    learn.add_argument("target", choices=targets)
    learn.add_argument("--learner", choices=learners, default="ttt")
    learn.add_argument("--dot", help="write a GraphViz rendering to this file")
    learn.add_argument(
        "--table", action="store_true", help="print the transition table"
    )
    learn.set_defaults(func=_cmd_learn)

    compare = sub.add_parser("compare", help="diff the models of two SULs")
    compare.add_argument("a", choices=targets)
    compare.add_argument("b", choices=targets)
    compare.set_defaults(func=_cmd_compare)

    check = sub.add_parser("check", help="model-check an LTLf property")
    check.add_argument("target", choices=targets)
    check.add_argument("formula", help='e.g. "G (out != NIL)"')
    check.add_argument("--depth", type=int, default=6)
    check.set_defaults(func=_cmd_check)

    properties = sub.add_parser(
        "properties",
        help="run a registered property suite (and ad-hoc LTLf formulas) "
        "against learned models",
    )
    properties.add_argument(
        "targets",
        nargs="+",
        metavar="target|family|spec.json",
        help="a registered target, a family (e.g. 'quic'), or an "
        "ExperimentSpec JSON file (mixable); suites resolve by target "
        "name, then family stem",
    )
    properties.add_argument("--learner", choices=learners, default="ttt")
    properties.add_argument("--depth", type=int, default=5)
    properties.add_argument("--seed", type=int, default=0)
    properties.add_argument(
        "--formula",
        action="append",
        metavar="LTLF",
        help='ad-hoc LTLf property, e.g. "G (out != NIL)" (repeatable)',
    )
    properties.add_argument(
        "--probes", action="store_true", help="include design-decision probes"
    )
    properties.add_argument(
        "--list",
        action="store_true",
        help="list the resolved properties without learning anything",
    )
    properties.add_argument(
        "--workers", type=int, default=1, help="concurrent runs"
    )
    properties.add_argument(
        "--out", help="write properties.json artifacts under this directory"
    )
    properties.add_argument(
        "--exact",
        action="store_true",
        help="treat every name as an exact target; never expand families",
    )
    properties.set_defaults(func=_cmd_properties)

    issues = sub.add_parser("issues", help="reproduce a paper finding")
    issues.add_argument("number", type=int, choices=(1, 2, 3, 4))
    issues.set_defaults(func=_cmd_issues)

    executor_kwargs = dict(
        choices=("serial", "thread", "process"),
        default=None,
        help="SUL executor backend (overrides the spec's executor "
        "section; process fans each run's query shards over worker "
        "processes)",
    )

    store_kwargs = dict(
        default=None,
        metavar="PATH",
        help="persistent sqlite query/model store: warm-start membership "
        "queries from it and append fresh observations (specs with "
        "their own store section keep it)",
    )

    run = sub.add_parser("run", help="execute a JSON experiment spec")
    run.add_argument("spec", help="path to an ExperimentSpec JSON file")
    run.add_argument("--out", help="write artifacts under this directory")
    run.add_argument("--executor", **executor_kwargs)
    run.add_argument("--store", **store_kwargs)
    run.set_defaults(func=_cmd_run)

    passive = sub.add_parser(
        "passive",
        help="bulk-trace passive learning: fold a corpus, actively refine",
    )
    passive.add_argument("target", choices=targets)
    passive.add_argument(
        "--corpus",
        required=True,
        metavar="PATH",
        help="JSONL trace corpus, one "
        '{"inputs": [...], "outputs": [...]} object per line',
    )
    passive.add_argument("--learner", choices=learners, default="ttt")
    passive.add_argument("--seed", type=int, default=0)
    passive.add_argument(
        "--generate",
        type=int,
        default=None,
        metavar="N",
        help="first random-walk N sessions of the target into the corpus file",
    )
    passive.add_argument(
        "--gen-max-len",
        type=int,
        default=8,
        help="maximum session length for --generate (default 8)",
    )
    passive.add_argument(
        "--full",
        action="store_true",
        help="first record a covering corpus (one active run's whole "
        "observation set); refinement then needs zero SUL resets",
    )
    passive.add_argument(
        "--no-refine",
        action="store_true",
        help="stop at the partial (passive-only) machine",
    )
    passive.add_argument("--executor", **executor_kwargs)
    passive.add_argument("--store", **store_kwargs)
    passive.add_argument(
        "--out", help="write passive.json/model.json/model.dot artifacts here"
    )
    passive.set_defaults(func=_cmd_passive)

    sweep = sub.add_parser(
        "sweep", help="run a campaign grid: targets x learners x seeds"
    )
    sweep.add_argument(
        "--target",
        action="append",
        choices=targets,
        required=True,
        help="SUL target (repeatable)",
    )
    sweep.add_argument(
        "--learner",
        action="append",
        choices=learners,
        help="learner (repeatable; default: ttt)",
    )
    sweep.add_argument(
        "--seeds", default="0", help="comma-separated EQ-oracle seeds"
    )
    sweep.add_argument(
        "--workers", type=int, default=1, help="concurrent runs"
    )
    sweep.add_argument("--out", help="write artifacts under this directory")
    sweep.add_argument(
        "--no-share-cache",
        action="store_true",
        help="isolate each run's query cache",
    )
    sweep.add_argument("--executor", **executor_kwargs)
    sweep.add_argument("--store", **store_kwargs)
    sweep.add_argument(
        "--sul-workers",
        type=int,
        default=1,
        help="SUL pool size within each run",
    )
    sweep.set_defaults(func=_cmd_sweep)

    difftest = sub.add_parser(
        "difftest",
        help="differential conformance campaign: learn a family of "
        "implementations, cross-replay every model-derived suite, print "
        "the verdict matrix",
    )
    difftest.add_argument(
        "targets",
        nargs="+",
        metavar="family|target|spec.json",
        help="a registered family (e.g. 'quic'), registered targets, "
        "or ExperimentSpec JSON files (mixable)",
    )
    difftest.add_argument("--learner", choices=learners, default="ttt")
    difftest.add_argument(
        "--kind",
        action="append",
        choices=("transition-cover", "wmethod", "random"),
        help="suite kind derived from each model (repeatable; "
        "default: wmethod)",
    )
    difftest.add_argument("--seed", type=int, default=0)
    difftest.add_argument(
        "--workers", type=int, default=1, help="concurrent runs/replays"
    )
    difftest.add_argument(
        "--sul-workers",
        type=int,
        default=1,
        help="SUL pool size within each run (target/family form only)",
    )
    difftest.add_argument(
        "--max-divergences",
        type=int,
        default=25,
        help="stop collecting divergences per pair after this many",
    )
    difftest.add_argument("--out", help="write artifacts under this directory")
    difftest.add_argument(
        "--exact",
        action="store_true",
        help="treat every name as an exact target; never expand families "
        "(e.g. 'repro difftest tcp --exact' is a 1x1 self-conformance run)",
    )
    difftest.add_argument(
        "--fail-on-diverge",
        action="store_true",
        help="exit 1 when any off-diagonal pair diverges (CI gate)",
    )
    difftest.add_argument("--executor", **executor_kwargs)
    difftest.add_argument("--store", **store_kwargs)
    difftest.set_defaults(func=_cmd_difftest)

    attack = sub.add_parser(
        "attack",
        help="model-guided attack synthesis: search the learned-model x "
        "attacker-automaton product for goal strategies, replay them "
        "against the live SUL (CONFIRMED/REFUTED/DIVERGED), optionally "
        "fuzz the model's frontier states",
    )
    attack.add_argument(
        "targets",
        nargs="+",
        metavar="target|family|spec.json",
        help="a registered target, a family (e.g. 'tcp'), or an "
        "ExperimentSpec JSON file (mixable)",
    )
    attack.add_argument(
        "--attacker",
        metavar="NAME",
        help="pin one registered attacker automaton (default: every "
        "automaton applicable to each target)",
    )
    attack.add_argument(
        "--objective",
        metavar="LTLF",
        help="an LTLf formula the attack trace must violate "
        "(e.g. 'G (out != NIL)')",
    )
    attack.add_argument(
        "--budget",
        type=int,
        default=200,
        help="fuzzer word budget (default 200)",
    )
    attack.add_argument(
        "--fuzz",
        action="store_true",
        help="also fuzz the model's frontier states; divergences join "
        "the attack corpus",
    )
    attack.add_argument(
        "--max-suffix",
        type=int,
        default=4,
        help="longest random fuzz suffix (default 4)",
    )
    attack.add_argument(
        "--list",
        action="store_true",
        help="list the attacker automata applicable to each target and exit",
    )
    attack.add_argument("--learner", choices=learners, default="ttt")
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument(
        "--exact",
        action="store_true",
        help="treat every name as an exact target; never expand families",
    )
    attack.add_argument(
        "--workers",
        type=int,
        default=1,
        help="SUL pool size within each run",
    )
    attack.add_argument("--executor", **executor_kwargs)
    attack.add_argument("--store", **store_kwargs)
    attack.add_argument(
        "--out",
        help="write attacks.json artifacts and confirmed-attack corpora "
        "under this directory",
    )
    attack.set_defaults(func=_cmd_attack)

    ci = sub.add_parser(
        "ci",
        help="incremental model CI: revalidate each target's stored model "
        "against the live SUL through the persistent store; exit 1 (with "
        "a minimized diff witness) on behavioural drift",
    )
    ci.add_argument(
        "targets",
        nargs="+",
        metavar="target|family|spec.json",
        help="a registered target, a family (e.g. 'quic'), or an "
        "ExperimentSpec JSON file (mixable)",
    )
    ci.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="sqlite store file holding the observations and model lineage",
    )
    ci.add_argument(
        "--baseline",
        metavar="TARGET",
        help="diff against this target's stored model lineage instead of "
        "each spec's own (cross-variant drift checks)",
    )
    ci.add_argument("--learner", choices=learners, default="ttt")
    ci.add_argument("--seed", type=int, default=0)
    ci.add_argument(
        "--exact",
        action="store_true",
        help="treat every name as an exact target; never expand families",
    )
    ci.add_argument(
        "--no-save",
        action="store_true",
        help="do not append changed models to the store's lineage",
    )
    ci.add_argument(
        "--out", help="write ci-<name>.json artifacts under this directory"
    )
    ci.set_defaults(func=_cmd_ci)

    store = sub.add_parser(
        "store",
        help="inspect (--stats, the default) or garbage-collect (--gc) a "
        "persistent query/model store",
    )
    store.add_argument("path", help="sqlite store file")
    store.add_argument(
        "--stats",
        action="store_true",
        help="print per-fingerprint statistics (the default action)",
    )
    store.add_argument(
        "--gc",
        metavar="FINGERPRINT|TARGET",
        help="drop every observation and model for this fingerprint (a "
        "registered target name resolves to its default-params "
        "fingerprint)",
    )
    store.set_defaults(func=_cmd_store)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)

"""Command-line interface: ``python -m repro <command>``.

Gives the framework the shape of a releasable tool:

* ``learn``      -- learn a model of a registered SUL target, print/export it
* ``compare``    -- learn two SULs and diff their models
* ``check``      -- model-check an LTLf property against a learned model
* ``properties`` -- run the QUIC property suite against a learned model
* ``issues``     -- reproduce one of the paper's four findings
* ``run``        -- execute a declarative experiment spec (JSON file)
* ``sweep``      -- run a campaign grid: targets x learners x seeds
* ``difftest``   -- differential conformance campaign over a target family:
  learn every implementation, cross-replay every model-derived suite,
  print the N x N verdict matrix with minimized witnesses

Target and learner choices come from the :mod:`repro.registry`
registries, so protocols registered by plug-ins appear automatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .registry import LEARNER_REGISTRY, SUL_REGISTRY, load_builtins

#: The classic paper targets (kept for scripts importing this tuple; the
#: parser itself accepts every registered SUL target).
TARGETS = ("tcp", "quic-google", "quic-quiche", "quic-mvfst")


def _known_targets() -> tuple[str, ...]:
    load_builtins()
    return tuple(sorted(SUL_REGISTRY.names()))


def _known_learners() -> tuple[str, ...]:
    load_builtins()
    return tuple(sorted(LEARNER_REGISTRY.names()))


def _learn(target: str, learner: str = "ttt"):
    """Learn one target; returns an Experiment the caller must close."""
    from .experiments import learn_quic, learn_tcp_full

    if target == "tcp":
        return learn_tcp_full(learner=learner)
    if target in TARGETS:
        return learn_quic(target.split("-", 1)[1], learner=learner)
    # Any other registered target runs through the generic spec path.
    from .experiments.base import Experiment
    from .spec import ExperimentSpec

    return Experiment.run(ExperimentSpec(target=target, learner=learner))


def _cmd_learn(args: argparse.Namespace) -> int:
    from .analysis.visualize import transition_table

    with _learn(args.target, args.learner) as experiment:
        print(experiment.report.summary())
        if args.table:
            print(transition_table(experiment.model))
        if args.dot:
            with open(args.dot, "w") as handle:
                handle.write(experiment.model.to_dot())
            print(f"wrote {args.dot}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .framework import Prognosis

    with _learn(args.a) as first, _learn(args.b) as second:
        diff = Prognosis.compare(first.model, second.model)
    print(diff.render())
    return 0 if diff.equivalent else 1


def _cmd_check(args: argparse.Namespace) -> int:
    with _learn(args.target) as experiment:
        violation = experiment.prognosis.check(
            experiment.model, args.formula, depth=args.depth
        )
    if violation is None:
        print(f"property holds (depth {args.depth})")
        return 0
    print(f"property violated: {violation.trace.render()}")
    return 1


def _cmd_properties(args: argparse.Namespace) -> int:
    if args.target.startswith("http2"):
        from .analysis.http2_properties import (
            check_http2_properties,
            render_results,
        )

        with _learn(args.target) as experiment:
            results = check_http2_properties(experiment.model, depth=args.depth)
        print(render_results(results))
        return 0 if all(r.holds for r in results) else 1

    from .analysis.quic_properties import (
        DESIGN_PROBES,
        STANDARD_PROPERTIES,
        check_quic_properties,
        render_results,
    )

    if not args.target.startswith("quic-"):
        print("the property suite applies to QUIC and HTTP/2 targets", file=sys.stderr)
        return 2
    with _learn(args.target) as experiment:
        properties = STANDARD_PROPERTIES + (DESIGN_PROBES if args.probes else ())
        results = check_quic_properties(
            experiment.model, properties, depth=args.depth
        )
    print(render_results(results))
    return 0 if all(r.holds for r in results if r.property.name != "single-packet-close") else 1


def _cmd_issues(args: argparse.Namespace) -> int:
    from .experiments import (
        issue1_retry_divergence,
        issue2_nondeterminism,
        issue3_retry_port,
        issue4_stream_data_blocked,
    )

    if args.number == 1:
        result = issue1_retry_divergence()
        print(result.diff.render())
    elif args.number == 2:
        result = issue2_nondeterminism()
        print(f"learning aborted: {result.error}")
        print(f"RESET rate: {result.reset_rate:.0%} (paper: ~82%)")
    elif args.number == 3:
        result = issue3_retry_port()
        print(f"buggy client establishes: {result.buggy_establishes}")
        print(f"fixed client establishes: {result.fixed_establishes}")
    else:
        result = issue4_stream_data_blocked()
        print(f"buggy  max_stream_data: constant {result.buggy_constant}")
        print(
            "fixed  max_stream_data: "
            + (
                "state-dependent"
                if result.fixed_constant is None
                else f"constant {result.fixed_constant}"
            )
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .campaign import run_spec
    from .spec import ExperimentSpec, SpecError

    try:
        spec = ExperimentSpec.from_file(args.spec)
    except (OSError, ValueError) as error:
        print(f"cannot load spec {args.spec}: {error}", file=sys.stderr)
        return 2
    try:
        spec.validate()
    except (SpecError, KeyError) as error:
        print(f"invalid spec: {error}", file=sys.stderr)
        return 2
    result = run_spec(spec, output_dir=args.out)
    print(result.summary())
    if result.artifact_dir:
        print(f"artifacts: {result.artifact_dir}")
    return 0 if result.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .campaign import Campaign

    try:
        seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    except ValueError:
        print(f"--seeds must be comma-separated integers, got {args.seeds!r}",
              file=sys.stderr)
        return 2
    campaign = Campaign.grid(
        targets=args.target,
        learners=args.learner or ["ttt"],
        seeds=seeds or [0],
        workers=args.workers,
        output_dir=args.out,
        share_cache=not args.no_share_cache,
    )
    results = campaign.run()
    for result in results:
        print(result.summary())
    failed = sum(1 for result in results if not result.ok)
    if failed:
        print(f"{failed}/{len(results)} runs failed", file=sys.stderr)
    return 1 if failed else 0


def _cmd_difftest(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .campaign import DiffCampaign
    from .spec import ExperimentSpec, SpecError

    load_builtins()
    families = SUL_REGISTRY.families()
    members: list[str] = []
    for member in args.targets:
        # Family names expand to all of their members ("quic" -> the three
        # implementations) anywhere in the argument list.  A name that is
        # both a registered target and a family stem ("http2", "tcp")
        # expands only when it is the sole argument; --exact suppresses
        # expansion entirely (a 1x1 self-conformance check).
        is_family = len(families.get(member, ())) > 1
        expand = is_family and (
            member not in SUL_REGISTRY or len(args.targets) == 1
        )
        if expand and not args.exact:
            members.extend(families[member])
        else:
            members.append(member)
    # An expansion overlapping an explicit target must not duplicate runs.
    members = list(dict.fromkeys(members))
    specs = []
    for member in members:
        if member in SUL_REGISTRY:
            specs.append(
                ExperimentSpec(
                    target=member,
                    learner=args.learner,
                    seed=args.seed,
                    workers=args.sul_workers,
                    name=member,
                )
            )
            continue
        path = Path(member)
        if path.suffix == ".json" or path.exists():
            try:
                spec = ExperimentSpec.from_file(path)
            except (OSError, ValueError) as error:
                print(f"cannot load spec {member}: {error}", file=sys.stderr)
                return 2
            if spec.name is None:
                spec.name = path.stem
            specs.append(spec)
            continue
        known = ", ".join(sorted(set(families) | set(SUL_REGISTRY.names())))
        print(
            f"unknown difftest target {member!r} (not a registered target, "
            f"family, or spec file); known: {known}",
            file=sys.stderr,
        )
        return 2
    try:
        campaign = DiffCampaign(
            specs,
            kinds=tuple(args.kind or ["wmethod"]),
            workers=args.workers,
            output_dir=args.out,
            max_divergences=args.max_divergences,
        )
        result = campaign.run()
    except (SpecError, KeyError) as error:
        print(f"invalid difftest campaign: {error}", file=sys.stderr)
        return 2
    print(result.render())
    print()
    print(result.summary())
    if result.artifact_dir:
        print(f"artifacts: {result.artifact_dir}")
    if result.artifact_error:
        print(result.artifact_error, file=sys.stderr)
    if all(run.model is None for run in result.runs):
        print("no model could be learned", file=sys.stderr)
        return 1
    if args.fail_on_diverge and result.matrix.divergent_pairs():
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prognosis: closed-box protocol model learning and analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    targets = _known_targets()
    learners = _known_learners()

    learn = sub.add_parser("learn", help="learn a model of a registered SUL")
    learn.add_argument("target", choices=targets)
    learn.add_argument("--learner", choices=learners, default="ttt")
    learn.add_argument("--dot", help="write a GraphViz rendering to this file")
    learn.add_argument(
        "--table", action="store_true", help="print the transition table"
    )
    learn.set_defaults(func=_cmd_learn)

    compare = sub.add_parser("compare", help="diff the models of two SULs")
    compare.add_argument("a", choices=targets)
    compare.add_argument("b", choices=targets)
    compare.set_defaults(func=_cmd_compare)

    check = sub.add_parser("check", help="model-check an LTLf property")
    check.add_argument("target", choices=targets)
    check.add_argument("formula", help='e.g. "G (out != NIL)"')
    check.add_argument("--depth", type=int, default=6)
    check.set_defaults(func=_cmd_check)

    properties = sub.add_parser("properties", help="run the QUIC property suite")
    properties.add_argument("target", choices=targets)
    properties.add_argument("--depth", type=int, default=5)
    properties.add_argument(
        "--probes", action="store_true", help="include design-decision probes"
    )
    properties.set_defaults(func=_cmd_properties)

    issues = sub.add_parser("issues", help="reproduce a paper finding")
    issues.add_argument("number", type=int, choices=(1, 2, 3, 4))
    issues.set_defaults(func=_cmd_issues)

    run = sub.add_parser("run", help="execute a JSON experiment spec")
    run.add_argument("spec", help="path to an ExperimentSpec JSON file")
    run.add_argument("--out", help="write artifacts under this directory")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run a campaign grid: targets x learners x seeds"
    )
    sweep.add_argument(
        "--target",
        action="append",
        choices=targets,
        required=True,
        help="SUL target (repeatable)",
    )
    sweep.add_argument(
        "--learner",
        action="append",
        choices=learners,
        help="learner (repeatable; default: ttt)",
    )
    sweep.add_argument(
        "--seeds", default="0", help="comma-separated EQ-oracle seeds"
    )
    sweep.add_argument(
        "--workers", type=int, default=1, help="concurrent runs"
    )
    sweep.add_argument("--out", help="write artifacts under this directory")
    sweep.add_argument(
        "--no-share-cache",
        action="store_true",
        help="isolate each run's query cache",
    )
    sweep.set_defaults(func=_cmd_sweep)

    difftest = sub.add_parser(
        "difftest",
        help="differential conformance campaign: learn a family of "
        "implementations, cross-replay every model-derived suite, print "
        "the verdict matrix",
    )
    difftest.add_argument(
        "targets",
        nargs="+",
        metavar="family|target|spec.json",
        help="a registered family (e.g. 'quic'), registered targets, "
        "or ExperimentSpec JSON files (mixable)",
    )
    difftest.add_argument("--learner", choices=learners, default="ttt")
    difftest.add_argument(
        "--kind",
        action="append",
        choices=("transition-cover", "wmethod", "random"),
        help="suite kind derived from each model (repeatable; "
        "default: wmethod)",
    )
    difftest.add_argument("--seed", type=int, default=0)
    difftest.add_argument(
        "--workers", type=int, default=1, help="concurrent runs/replays"
    )
    difftest.add_argument(
        "--sul-workers",
        type=int,
        default=1,
        help="SUL pool size within each run (target/family form only)",
    )
    difftest.add_argument(
        "--max-divergences",
        type=int,
        default=25,
        help="stop collecting divergences per pair after this many",
    )
    difftest.add_argument("--out", help="write artifacts under this directory")
    difftest.add_argument(
        "--exact",
        action="store_true",
        help="treat every name as an exact target; never expand families "
        "(e.g. 'repro difftest tcp --exact' is a 1x1 self-conformance run)",
    )
    difftest.add_argument(
        "--fail-on-diverge",
        action="store_true",
        help="exit 1 when any off-diagonal pair diverges (CI gate)",
    )
    difftest.set_defaults(func=_cmd_difftest)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)

"""Command-line interface: ``python -m repro <command>``.

Gives the framework the shape of a releasable tool:

* ``learn``      -- learn a model of a built-in SUL, print/export it
* ``compare``    -- learn two SULs and diff their models
* ``check``      -- model-check an LTLf property against a learned model
* ``properties`` -- run the QUIC property suite against a learned model
* ``issues``     -- reproduce one of the paper's four findings
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

TARGETS = ("tcp", "quic-google", "quic-quiche", "quic-mvfst")


def _learn(target: str, learner: str = "ttt"):
    from .experiments import learn_quic, learn_tcp_full

    if target == "tcp":
        return learn_tcp_full(learner=learner)
    implementation = target.split("-", 1)[1]
    return learn_quic(implementation, learner=learner)


def _cmd_learn(args: argparse.Namespace) -> int:
    from .analysis.visualize import transition_table

    experiment = _learn(args.target, args.learner)
    print(experiment.report.summary())
    if args.table:
        print(transition_table(experiment.model))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(experiment.model.to_dot())
        print(f"wrote {args.dot}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .framework import Prognosis

    first = _learn(args.a)
    second = _learn(args.b)
    diff = Prognosis.compare(first.model, second.model)
    print(diff.render())
    return 0 if diff.equivalent else 1


def _cmd_check(args: argparse.Namespace) -> int:
    experiment = _learn(args.target)
    violation = experiment.prognosis.check(
        experiment.model, args.formula, depth=args.depth
    )
    if violation is None:
        print(f"property holds (depth {args.depth})")
        return 0
    print(f"property violated: {violation.trace.render()}")
    return 1


def _cmd_properties(args: argparse.Namespace) -> int:
    from .analysis.quic_properties import (
        DESIGN_PROBES,
        STANDARD_PROPERTIES,
        check_quic_properties,
        render_results,
    )

    if not args.target.startswith("quic-"):
        print("the property suite applies to QUIC targets", file=sys.stderr)
        return 2
    experiment = _learn(args.target)
    properties = STANDARD_PROPERTIES + (DESIGN_PROBES if args.probes else ())
    results = check_quic_properties(experiment.model, properties, depth=args.depth)
    print(render_results(results))
    return 0 if all(r.holds for r in results if r.property.name != "single-packet-close") else 1


def _cmd_issues(args: argparse.Namespace) -> int:
    from .experiments import (
        issue1_retry_divergence,
        issue2_nondeterminism,
        issue3_retry_port,
        issue4_stream_data_blocked,
    )

    if args.number == 1:
        result = issue1_retry_divergence()
        print(result.diff.render())
    elif args.number == 2:
        result = issue2_nondeterminism()
        print(f"learning aborted: {result.error}")
        print(f"RESET rate: {result.reset_rate:.0%} (paper: ~82%)")
    elif args.number == 3:
        result = issue3_retry_port()
        print(f"buggy client establishes: {result.buggy_establishes}")
        print(f"fixed client establishes: {result.fixed_establishes}")
    else:
        result = issue4_stream_data_blocked()
        print(f"buggy  max_stream_data: constant {result.buggy_constant}")
        print(
            "fixed  max_stream_data: "
            + (
                "state-dependent"
                if result.fixed_constant is None
                else f"constant {result.fixed_constant}"
            )
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prognosis: closed-box protocol model learning and analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    learn = sub.add_parser("learn", help="learn a model of a built-in SUL")
    learn.add_argument("target", choices=TARGETS)
    learn.add_argument("--learner", choices=("ttt", "lstar"), default="ttt")
    learn.add_argument("--dot", help="write a GraphViz rendering to this file")
    learn.add_argument(
        "--table", action="store_true", help="print the transition table"
    )
    learn.set_defaults(func=_cmd_learn)

    compare = sub.add_parser("compare", help="diff the models of two SULs")
    compare.add_argument("a", choices=TARGETS)
    compare.add_argument("b", choices=TARGETS)
    compare.set_defaults(func=_cmd_compare)

    check = sub.add_parser("check", help="model-check an LTLf property")
    check.add_argument("target", choices=TARGETS)
    check.add_argument("formula", help='e.g. "G (out != NIL)"')
    check.add_argument("--depth", type=int, default=6)
    check.set_defaults(func=_cmd_check)

    properties = sub.add_parser("properties", help="run the QUIC property suite")
    properties.add_argument("target", choices=TARGETS)
    properties.add_argument("--depth", type=int, default=5)
    properties.add_argument(
        "--probes", action="store_true", help="include design-decision probes"
    )
    properties.set_defaults(func=_cmd_properties)

    issues = sub.add_parser("issues", help="reproduce a paper finding")
    issues.add_argument("number", type=int, choices=(1, 2, 3, 4))
    issues.set_defaults(func=_cmd_issues)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)

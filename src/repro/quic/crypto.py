"""Simulated QUIC-TLS key schedule and packet protection.

The real QUIC handshake derives per-level secrets through TLS 1.3 and
protects packets with AEAD ciphers.  Reproducing actual TLS is out of scope
(and irrelevant to the closed-box learning pipeline), so this module
implements a *shape-faithful* substitute built on HMAC-SHA256:

* Initial secrets are derived from the client's destination connection id
  with a fixed salt -- exactly like RFC 9001, so any party observing the
  first datagram can decrypt Initial packets and nothing else.
* Handshake and application secrets mix the client and server randoms
  exchanged in the simulated ClientHello/ServerHello, so a party must
  process the CRYPTO stream to obtain them.
* Packet protection is an authenticated stream cipher: an HMAC-derived
  keystream XOR plus a 16-byte HMAC tag over header and ciphertext.
  Tampering or a wrong key fails authentication, which the servers treat as
  an undecryptable packet (silently dropped), mirroring real QUIC.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

INITIAL_SALT = b"prognosis-repro-initial-salt-v1"
TAG_LENGTH = 16
RANDOM_LENGTH = 32


class CryptoError(Exception):
    """Raised when packet protection fails to authenticate."""


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    return hmac.new(salt, input_key_material, hashlib.sha256).digest()


def hkdf_expand_label(secret: bytes, label: bytes, length: int = 32) -> bytes:
    """Simplified HKDF-Expand-Label: iterated HMAC blocks."""
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac.new(
            secret, block + label + bytes([counter]), hashlib.sha256
        ).digest()
        output += block
        counter += 1
    return output[:length]


@dataclass(frozen=True)
class DirectionalKey:
    """Key material protecting one direction at one encryption level."""

    key: bytes
    label: str

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        return hkdf_expand_label(self.key, b"ks" + nonce, length)

    def seal(self, packet_number: int, header: bytes, plaintext: bytes) -> bytes:
        """Encrypt and authenticate ``plaintext`` bound to ``header``."""
        nonce = packet_number.to_bytes(8, "big")
        stream = self._keystream(nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = hmac.new(
            self.key, b"tag" + nonce + header + ciphertext, hashlib.sha256
        ).digest()[:TAG_LENGTH]
        return ciphertext + tag

    def open(self, packet_number: int, header: bytes, sealed: bytes) -> bytes:
        """Verify and decrypt; raises :class:`CryptoError` on failure."""
        if len(sealed) < TAG_LENGTH:
            raise CryptoError("sealed payload shorter than tag")
        ciphertext, tag = sealed[:-TAG_LENGTH], sealed[-TAG_LENGTH:]
        nonce = packet_number.to_bytes(8, "big")
        expected = hmac.new(
            self.key, b"tag" + nonce + header + ciphertext, hashlib.sha256
        ).digest()[:TAG_LENGTH]
        if not hmac.compare_digest(tag, expected):
            raise CryptoError(f"authentication failed for {self.label}")
        stream = self._keystream(nonce, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))


@dataclass(frozen=True)
class KeyPair:
    """Client-direction and server-direction keys for one level."""

    client: DirectionalKey
    server: DirectionalKey


def initial_keys(destination_cid: bytes) -> KeyPair:
    """Initial-level keys, derivable by anyone who saw the first datagram."""
    secret = hkdf_extract(INITIAL_SALT, destination_cid)
    return KeyPair(
        client=DirectionalKey(
            hkdf_expand_label(secret, b"client in"), "initial/client"
        ),
        server=DirectionalKey(
            hkdf_expand_label(secret, b"server in"), "initial/server"
        ),
    )


def handshake_keys(client_random: bytes, server_random: bytes) -> KeyPair:
    """Handshake-level keys, requiring both hello randoms."""
    secret = hkdf_extract(b"hs", client_random + server_random)
    return KeyPair(
        client=DirectionalKey(hkdf_expand_label(secret, b"c hs"), "handshake/client"),
        server=DirectionalKey(hkdf_expand_label(secret, b"s hs"), "handshake/server"),
    )


def application_keys(client_random: bytes, server_random: bytes) -> KeyPair:
    """1-RTT keys, derived alongside the handshake keys."""
    secret = hkdf_extract(b"app", client_random + server_random)
    return KeyPair(
        client=DirectionalKey(hkdf_expand_label(secret, b"c ap"), "application/client"),
        server=DirectionalKey(hkdf_expand_label(secret, b"s ap"), "application/server"),
    )


def retry_integrity_tag(original_dcid: bytes, retry_pseudo_packet: bytes) -> bytes:
    """16-byte integrity tag appended to RETRY packets (RFC 9001 section 5.8)."""
    return hmac.new(
        b"retry" + original_dcid, retry_pseudo_packet, hashlib.sha256
    ).digest()[:TAG_LENGTH]


def stateless_reset_token(connection_id: bytes) -> bytes:
    """The 16-byte stateless reset token for a connection id."""
    return hmac.new(b"reset-token", connection_id, hashlib.sha256).digest()[:TAG_LENGTH]


def address_validation_token(host: str, port: int, original_dcid: bytes) -> bytes:
    """A RETRY token binding the client's source address (Issue 3 depends on
    this binding: a token returned from a different port fails validation)."""
    material = f"{host}:{port}".encode() + original_dcid
    return hmac.new(b"retry-token", material, hashlib.sha256).digest()

"""Simulated QUIC implementations: the three SULs plus the reference client."""

from .google import google_server
from .mvfst import mvfst_server
from .quiche import quiche_server
from .tracker import ConcretePacket, TrackerClient, TrackerConfig

__all__ = [
    "ConcretePacket",
    "TrackerClient",
    "TrackerConfig",
    "google_server",
    "mvfst_server",
    "quiche_server",
]

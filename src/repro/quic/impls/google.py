"""The Google-QUIC-like server implementation.

Profile highlights (paper sections 6.2.2, 6.2.6):

* 12-state behaviour core (appendix A.2 reconstruction) including 0.5-RTT
  server push in the first flight;
* **Issue 4 bug**: ``STREAM_DATA_BLOCKED.maximum_stream_data`` is always 0
  -- a development placeholder the developers forgot to replace;
* **Issue 1**: strict about post-RETRY packet-number-space resets -- the
  server aborts the connection (the behaviour the RFC clarification made
  explicitly permissible).
"""

from __future__ import annotations

from ...netsim import SimulatedNetwork
from ..behavior import google_table
from ..connection import QUICServer, ServerProfile


def google_profile(retry_enabled: bool = False) -> ServerProfile:
    return ServerProfile(
        name="google",
        table_factory=google_table,
        sdb_reports_zero=True,
        retry_enabled=retry_enabled,
    )


def google_server(
    network: SimulatedNetwork,
    host: str = "server",
    port: int = 4433,
    seed: int = 17,
    retry_enabled: bool = False,
) -> QUICServer:
    """Bind a Google-like server to the simulated network."""
    return QUICServer(
        network,
        google_profile(retry_enabled=retry_enabled),
        host=host,
        port=port,
        seed=seed,
    )

"""A QUIC-Tracker-like reference client: the concretization oracle.

This is the heart of Prognosis's key idea (paper section 3.2): instead of
hand-writing a concretization function, the adapter instruments a reference
implementation that already owns the protocol logic.  This client

* turns abstract requests (packet type + frame kinds) into *valid* concrete
  packets using its live connection state: correct connection ids, packet
  numbers, crypto transcript offsets, stream offsets and flow-control
  values;
* processes every response to keep that state current, so the next abstract
  request concretizes correctly without any protocol logic in the adapter;
* handles RETRY automatically (re-sending the ClientHello with the token)
  -- including two faithful reproductions of reference-implementation
  behaviour from the paper: the packet-number-space reset on retry that
  exposed the RFC ambiguity of Issue 1, and the **Issue 3 bug** where the
  token is re-sent from a brand-new UDP socket on a random port, breaking
  address validation;
* applies the adapter's retransmission filter (duplicate packet numbers in
  a response are dropped) and exposes its state to the Oracle Table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...netsim import Address, Endpoint, SimulatedNetwork
from .. import crypto
from ..connection import (
    CID_LENGTH,
    CLIENT_HELLO_MAGIC,
    CLIENT_FINISHED_MAGIC,
    SERVER_HELLO_MAGIC,
)
from ..crypto import CryptoError, DirectionalKey, KeyPair, hkdf_expand_label
from ..frames import (
    AckFrame,
    AckRange,
    ConnectionCloseFrame,
    CryptoFrame,
    Frame,
    HandshakeDoneFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    StreamDataBlockedFrame,
    StreamFrame,
    decode_frames,
    encode_frames,
    frame_kinds,
)
from ..packet import (
    PacketHeader,
    PacketType,
    decode_packet,
    encode_packet,
    header_bytes_for_aead,
)
from ..packetspace import PacketNumberSpace, Space
from ..transport_params import TransportParameters

REQUEST_CHUNK = 100


@dataclass(frozen=True)
class ConcretePacket:
    """A fully decoded packet: the concrete alphabet for QUIC."""

    header: PacketHeader
    frames: tuple[Frame, ...]

    @property
    def packet_type(self) -> str:
        return self.header.packet_type.value

    def kinds(self) -> tuple[str, ...]:
        return tuple(k for k in frame_kinds(self.frames) if k != "PADDING")


@dataclass
class TrackerConfig:
    """Reference-implementation behaviour toggles."""

    host: str = "client"
    port: int = 40400
    #: Re-send the ClientHello automatically when a RETRY arrives.
    auto_retry: bool = True
    #: Reset packet-number spaces when retrying (QUIC-Tracker's behaviour
    #: that surfaced the RFC ambiguity of Issue 1).
    reset_pn_spaces_on_retry: bool = True
    #: Issue 3 bug: send the post-RETRY ClientHello from a new random port.
    retry_port_bug: bool = False
    #: Client-advertised initial stream credit for the server's responses.
    initial_max_stream_data: int = 100
    max_stream_data_step: int = 300
    max_data_step: int = 1000
    #: Demonstrates nondeterminism *reason (1)* of paper section 5: when
    #: True, the abstract "STREAM" request is ambiguous -- the client
    #: randomly concretizes it as either a data chunk or an empty FIN.
    #: The server reacts differently to the two, so the same abstract input
    #: trace yields different abstract outputs and the nondeterminism check
    #: fires, telling the user the abstraction is too coarse.
    ambiguous_stream_abstraction: bool = False


class TrackerClient:
    """The instrumented reference implementation (client role)."""

    def __init__(
        self,
        network: SimulatedNetwork,
        server_address: Address,
        config: TrackerConfig | None = None,
        seed: int = 23,
    ) -> None:
        self.network = network
        self.server_address = server_address
        self.config = config or TrackerConfig()
        self.rng = random.Random(seed)
        # Deliberately NOT reset between queries: ambiguity must persist
        # across repeats for the nondeterminism check to observe it.
        self._ambiguity_rng = random.Random(seed + 1)
        self._main_endpoint = network.bind(self.config.host, self.config.port)
        self._active_endpoint: Endpoint = self._main_endpoint
        self._extra_endpoints: list[Endpoint] = []
        self.closed = False
        self.saw_stateless_reset = False
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle (adapter property 3)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Fresh connection state: new cids, randoms, keys and spaces."""
        self.dcid = bytes(self.rng.randrange(256) for _ in range(CID_LENGTH))
        self.scid = bytes(self.rng.randrange(256) for _ in range(CID_LENGTH))
        self.client_random = bytes(
            self.rng.randrange(256) for _ in range(crypto.RANDOM_LENGTH)
        )
        self.initial_keys = crypto.initial_keys(self.dcid)
        self.handshake_keys: KeyPair | None = None
        self.application_keys: KeyPair | None = None
        self.server_random: bytes | None = None
        self.server_scid: bytes | None = None
        self.server_params: TransportParameters | None = None
        self.spaces = {space: PacketNumberSpace() for space in Space}
        self.retry_token: bytes | None = None
        self.request_offset = 0
        self.response_received = 0
        self.max_stream_data_limit = self.config.initial_max_stream_data
        self.max_data_limit = 1000
        self.closed = False
        self.saw_stateless_reset = False
        self.handshake_complete = False
        for endpoint in self._extra_endpoints:
            endpoint.close()
        self._extra_endpoints.clear()
        self._active_endpoint = self._main_endpoint
        self._main_endpoint.receive_all()

    def close(self) -> None:
        for endpoint in self._extra_endpoints:
            endpoint.close()
        self._main_endpoint.close()

    # ------------------------------------------------------------------
    # Concretization: abstract request -> concrete packet
    # ------------------------------------------------------------------
    def build_packet(
        self, packet_type: str, kinds: tuple[str, ...]
    ) -> tuple[PacketHeader, tuple[Frame, ...]]:
        """Realize an abstract request with the current connection state."""
        ptype = PacketType(packet_type)
        space = {
            PacketType.INITIAL: Space.INITIAL,
            PacketType.HANDSHAKE: Space.HANDSHAKE,
            PacketType.SHORT: Space.APPLICATION,
        }[ptype]
        frames = tuple(self._build_frame(kind, space) for kind in kinds)
        header = self._seal_and_wrap(ptype, space, frames)
        return header, frames

    def _build_frame(self, kind: str, space: Space) -> Frame:
        if kind == "CRYPTO":
            if space is Space.INITIAL:
                return CryptoFrame(offset=0, data=self._client_hello())
            return CryptoFrame(offset=0, data=CLIENT_FINISHED_MAGIC + b"\x00" * 28)
        if kind == "ACK":
            ack = self.spaces[space].build_ack()
            return ack if ack is not None else AckFrame(0, 0, (AckRange(0, 0),))
        if kind == "HANDSHAKE_DONE":
            return HandshakeDoneFrame()
        if kind == "STREAM":
            if (
                self.config.ambiguous_stream_abstraction
                and self._ambiguity_rng.random() < 0.5
            ):
                # One of two concrete packets matching the same abstract
                # symbol: a FIN with no payload instead of a data chunk.
                return StreamFrame(
                    stream_id=0, offset=self.request_offset, data=b"", fin=True
                )
            offset = self.request_offset
            self.request_offset += REQUEST_CHUNK
            return StreamFrame(stream_id=0, offset=offset, data=b"d" * REQUEST_CHUNK)
        if kind == "MAX_STREAM_DATA":
            self.max_stream_data_limit += self.config.max_stream_data_step
            return MaxStreamDataFrame(
                stream_id=0, maximum_stream_data=self.max_stream_data_limit
            )
        if kind == "MAX_DATA":
            self.max_data_limit += self.config.max_data_step
            return MaxDataFrame(maximum_data=self.max_data_limit)
        raise ValueError(f"reference client cannot build frame kind {kind!r}")

    def _client_hello(self) -> bytes:
        params = TransportParameters(
            initial_max_stream_data_bidi_remote=self.config.initial_max_stream_data,
            initial_max_data=self.max_data_limit,
        )
        return CLIENT_HELLO_MAGIC + self.client_random + params.encode()

    def _keys_for(self, space: Space) -> KeyPair:
        if space is Space.INITIAL:
            return self.initial_keys
        if space is Space.HANDSHAKE and self.handshake_keys is not None:
            return self.handshake_keys
        if space is Space.APPLICATION and self.application_keys is not None:
            return self.application_keys
        # No keys for this level yet: the reference implementation still
        # emits a packet matching the abstract request (adapter property 2),
        # sealed with throwaway keys the server cannot open.
        fallback = DirectionalKey(
            hkdf_expand_label(b"fallback" + self.dcid, space.value.encode()),
            f"fallback/{space.value}",
        )
        return KeyPair(client=fallback, server=fallback)

    def _seal_and_wrap(
        self, ptype: PacketType, space: Space, frames: tuple[Frame, ...]
    ) -> PacketHeader:
        pn = self.spaces[space].take_packet_number()
        dcid = self.server_scid if self.server_scid is not None else self.dcid
        header = PacketHeader(
            packet_type=ptype,
            destination_cid=dcid,
            source_cid=self.scid if ptype is not PacketType.SHORT else b"",
            packet_number=pn,
            token=self.retry_token or b"" if ptype is PacketType.INITIAL else b"",
        )
        sealed = self._keys_for(space).client.seal(
            pn, header_bytes_for_aead(header), encode_frames(list(frames))
        )
        return PacketHeader(
            packet_type=header.packet_type,
            destination_cid=header.destination_cid,
            source_cid=header.source_cid,
            packet_number=pn,
            token=header.token,
            payload=sealed,
        )

    # ------------------------------------------------------------------
    # The exchange: send one abstract symbol, gather the response set
    # ------------------------------------------------------------------
    def exchange(
        self, packet_type: str, kinds: tuple[str, ...]
    ) -> tuple[ConcretePacket, list[ConcretePacket]]:
        """Send one concrete packet for the abstract request and collect all
        response packets (following RETRYs automatically)."""
        header, frames = self.build_packet(packet_type, kinds)
        sent = ConcretePacket(header=header, frames=frames)
        self._active_endpoint.send(encode_packet(header), self.server_address)
        self.network.run()
        responses = self._drain_and_process()
        return sent, responses

    def _drain_and_process(self) -> list[ConcretePacket]:
        responses: list[ConcretePacket] = []
        pending = [d.payload for d in self._active_endpoint.receive_all()]
        stash: list[bytes] = []  # undecryptable now, maybe decryptable later
        progress = True
        while pending or (stash and progress):
            if not pending:
                # Keys may have arrived since these failed; retry them once
                # per round of progress (real clients buffer exactly so).
                pending, stash, progress = stash, [], False
            payload = pending.pop(0)
            packet = self._decode_response(payload)
            if packet is None:
                stash.append(payload)
                continue
            progress = True
            if packet.header.packet_type is PacketType.RETRY:
                responses.append(packet)
                pending.extend(
                    d.payload for d in self._follow_retry(packet)
                )
                continue
            if not self._register_received(packet):
                continue  # retransmission: filtered per the paper
            self._process_response(packet)
            responses.append(packet)
        return responses

    def _decode_response(self, payload: bytes) -> ConcretePacket | None:
        try:
            header = decode_packet(payload, short_cid_length=CID_LENGTH)
        except Exception:
            return None
        if header.packet_type is PacketType.STATELESS_RESET:
            self.saw_stateless_reset = True
            return ConcretePacket(header=header, frames=())
        if header.packet_type is PacketType.RETRY:
            return ConcretePacket(header=header, frames=())
        space = {
            PacketType.INITIAL: Space.INITIAL,
            PacketType.HANDSHAKE: Space.HANDSHAKE,
            PacketType.SHORT: Space.APPLICATION,
        }.get(header.packet_type)
        if space is None:
            return None
        keys = self._keys_for(space)
        try:
            plaintext = keys.server.open(
                header.packet_number, header_bytes_for_aead(header), header.payload
            )
        except CryptoError:
            return None
        try:
            frames = tuple(decode_frames(plaintext))
        except Exception:
            return None
        return ConcretePacket(header=header, frames=frames)

    def _register_received(self, packet: ConcretePacket) -> bool:
        space = {
            PacketType.INITIAL: Space.INITIAL,
            PacketType.HANDSHAKE: Space.HANDSHAKE,
            PacketType.SHORT: Space.APPLICATION,
        }.get(packet.header.packet_type)
        if space is None:
            return True
        return self.spaces[space].on_received(packet.header.packet_number)

    def _process_response(self, packet: ConcretePacket) -> None:
        if packet.header.source_cid and packet.header.packet_type in (
            PacketType.INITIAL,
            PacketType.HANDSHAKE,
        ):
            self.server_scid = packet.header.source_cid
        for frame in packet.frames:
            if isinstance(frame, CryptoFrame):
                self._on_crypto(frame)
            elif isinstance(frame, StreamFrame):
                self.response_received = max(
                    self.response_received, frame.end_offset
                )
            elif isinstance(frame, HandshakeDoneFrame):
                self.handshake_complete = True
            elif isinstance(frame, ConnectionCloseFrame):
                self.closed = True

    def _on_crypto(self, frame: CryptoFrame) -> None:
        if frame.data.startswith(SERVER_HELLO_MAGIC):
            self.server_random = frame.data[4 : 4 + crypto.RANDOM_LENGTH]
            try:
                self.server_params = TransportParameters.decode(
                    frame.data[4 + crypto.RANDOM_LENGTH :]
                )
            except Exception:
                self.server_params = None
            self.handshake_keys = crypto.handshake_keys(
                self.client_random, self.server_random
            )
            self.application_keys = crypto.application_keys(
                self.client_random, self.server_random
            )

    # ------------------------------------------------------------------
    # RETRY handling (Issues 1 and 3 live here)
    # ------------------------------------------------------------------
    def _follow_retry(self, retry: ConcretePacket) -> list:
        """React to a RETRY: adopt the new cid and re-send the ClientHello."""
        self.retry_token = retry.header.token
        # RFC 9001: the client's new destination cid is the retry's source
        # cid, and initial keys are re-derived from it.
        self.dcid = retry.header.source_cid
        self.server_scid = retry.header.source_cid
        self.initial_keys = crypto.initial_keys(self.dcid)
        if not self.config.auto_retry:
            return []
        if self.config.reset_pn_spaces_on_retry:
            # QUIC-Tracker resets its packet-number spaces here -- the
            # behaviour whose handling the RFC left ambiguous (Issue 1).
            for space in self.spaces.values():
                space.reset()
        if self.config.retry_port_bug:
            # Issue 3: the token goes back from a brand-new UDP socket on a
            # random free port, so server-side address validation fails.
            bugged = self.network.random_port_endpoint(self.config.host)
            self._extra_endpoints.append(bugged)
            self._active_endpoint = bugged
        header, _ = self.build_packet("INITIAL", ("CRYPTO",))
        self._active_endpoint.send(encode_packet(header), self.server_address)
        self.network.run()
        return self._active_endpoint.receive_all()

    # ------------------------------------------------------------------
    # Oracle-table support: concrete numeric views of packets
    # ------------------------------------------------------------------
    @staticmethod
    def packet_params(packet: ConcretePacket) -> dict[str, int]:
        """Flatten the numeric fields the synthesizer may reason about."""
        params: dict[str, int] = {"pn": packet.header.packet_number}
        for frame in packet.frames:
            if isinstance(frame, StreamFrame):
                params["stream_offset"] = frame.offset
                params["stream_len"] = len(frame.data)
            elif isinstance(frame, StreamDataBlockedFrame):
                params["max_stream_data"] = frame.maximum_stream_data
            elif isinstance(frame, MaxStreamDataFrame):
                params["max_stream_data"] = frame.maximum_stream_data
            elif isinstance(frame, MaxDataFrame):
                params["max_data"] = frame.maximum_data
            elif isinstance(frame, AckFrame):
                params["largest_acked"] = frame.largest_acknowledged
            elif isinstance(frame, ConnectionCloseFrame):
                params["close_code"] = frame.error_code
        return params

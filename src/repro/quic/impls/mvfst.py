"""The Facebook-mvfst-like server implementation.

Profile highlights (paper section 6.2.4, Issue 2):

* Quiche-shaped behaviour core, but after the connection closes the server
  answers subsequent packets with a stateless RESET only with probability
  ~0.82 (and silence otherwise), with **no back-off** -- the confirmed
  nondeterminism/DoS bug.  Deterministic model learning aborts on this
  implementation, exactly as the paper reports.
"""

from __future__ import annotations

from ...netsim import SimulatedNetwork
from ..behavior import mvfst_table
from ..connection import QUICServer, ServerProfile

#: The empirical reset rate the paper measured ("only in 82% of the
#: responses ... a RESET").
MVFST_RESET_PROBABILITY = 0.82


def mvfst_profile(
    retry_enabled: bool = False,
    reset_probability: float = MVFST_RESET_PROBABILITY,
) -> ServerProfile:
    return ServerProfile(
        name="mvfst",
        table_factory=mvfst_table,
        sdb_reports_zero=False,
        retry_enabled=retry_enabled,
        stateless_reset_probability=reset_probability,
    )


def mvfst_server(
    network: SimulatedNetwork,
    host: str = "server",
    port: int = 4433,
    seed: int = 17,
    retry_enabled: bool = False,
    reset_probability: float = MVFST_RESET_PROBABILITY,
) -> QUICServer:
    """Bind an mvfst-like server to the simulated network."""
    return QUICServer(
        network,
        mvfst_profile(
            retry_enabled=retry_enabled, reset_probability=reset_probability
        ),
        host=host,
        port=port,
        seed=seed,
    )

"""The Cloudflare-Quiche-like server implementation.

Profile highlights (paper section 6.2.2):

* 8-state behaviour core (appendix A.3 reconstruction): no 0.5-RTT push,
  handshake keys dropped after the first 1-RTT exchange (late
  handshake-space packets are then ignored rather than answered with a
  close);
* correct ``STREAM_DATA_BLOCKED`` values (real blocked offsets);
* **Issue 1**: lenient about post-RETRY packet-number-space resets -- the
  handshake simply continues.
"""

from __future__ import annotations

from ...netsim import SimulatedNetwork
from ..behavior import quiche_table
from ..connection import QUICServer, ServerProfile


def quiche_profile(retry_enabled: bool = False) -> ServerProfile:
    return ServerProfile(
        name="quiche",
        table_factory=quiche_table,
        sdb_reports_zero=False,
        retry_enabled=retry_enabled,
    )


def quiche_server(
    network: SimulatedNetwork,
    host: str = "server",
    port: int = 4433,
    seed: int = 17,
    retry_enabled: bool = False,
) -> QUICServer:
    """Bind a Quiche-like server to the simulated network."""
    return QUICServer(
        network,
        quiche_profile(retry_enabled=retry_enabled),
        host=host,
        port=port,
        seed=seed,
    )

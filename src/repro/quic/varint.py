"""QUIC variable-length integers (RFC 9000 section 16).

A varint's two most significant bits encode its total length (1, 2, 4 or 8
bytes); the remaining bits carry the value.  Every length-prefixed field in
the QUIC wire format uses this encoding.
"""

from __future__ import annotations

VARINT_MAX = (1 << 62) - 1

_PREFIX_FOR_LENGTH = {1: 0x00, 2: 0x40, 4: 0x80, 8: 0xC0}
_LENGTH_FOR_PREFIX = {0x00: 1, 0x40: 2, 0x80: 4, 0xC0: 8}


class VarintError(ValueError):
    """Raised on out-of-range values or truncated buffers."""


def varint_length(value: int) -> int:
    """Number of bytes needed to encode ``value``."""
    if value < 0 or value > VARINT_MAX:
        raise VarintError(f"varint out of range: {value}")
    if value < 1 << 6:
        return 1
    if value < 1 << 14:
        return 2
    if value < 1 << 30:
        return 4
    return 8


def encode_varint(value: int) -> bytes:
    """Encode ``value`` in the minimal number of bytes."""
    length = varint_length(value)
    encoded = value.to_bytes(length, "big")
    return bytes([encoded[0] | _PREFIX_FOR_LENGTH[length]]) + encoded[1:]


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns ``(value, next_offset)``."""
    if offset >= len(data):
        raise VarintError("varint truncated: empty buffer")
    prefix = data[offset] & 0xC0
    length = _LENGTH_FOR_PREFIX[prefix]
    end = offset + length
    if end > len(data):
        raise VarintError(
            f"varint truncated: need {length} bytes, have {len(data) - offset}"
        )
    value = int.from_bytes(data[offset:end], "big") & ~(0xC0 << (8 * (length - 1)))
    return value, end


class Buffer:
    """A tiny cursor-based reader/writer used by the codecs."""

    def __init__(self, data: bytes = b"") -> None:
        self._data = bytearray(data)
        self._offset = 0

    # -- writing ---------------------------------------------------------
    def push_bytes(self, data: bytes) -> "Buffer":
        self._data.extend(data)
        return self

    def push_uint8(self, value: int) -> "Buffer":
        self._data.append(value & 0xFF)
        return self

    def push_uint(self, value: int, size: int) -> "Buffer":
        self._data.extend(value.to_bytes(size, "big"))
        return self

    def push_varint(self, value: int) -> "Buffer":
        self._data.extend(encode_varint(value))
        return self

    def push_varint_bytes(self, data: bytes) -> "Buffer":
        """Length-prefixed byte string."""
        self.push_varint(len(data))
        self._data.extend(data)
        return self

    # -- reading ---------------------------------------------------------
    def pull_bytes(self, count: int) -> bytes:
        end = self._offset + count
        if end > len(self._data):
            raise VarintError(f"buffer underrun: need {count} bytes")
        chunk = bytes(self._data[self._offset : end])
        self._offset = end
        return chunk

    def pull_uint8(self) -> int:
        return self.pull_bytes(1)[0]

    def pull_uint(self, size: int) -> int:
        return int.from_bytes(self.pull_bytes(size), "big")

    def pull_varint(self) -> int:
        value, self._offset = decode_varint(bytes(self._data), self._offset)
        return value

    def pull_varint_bytes(self) -> bytes:
        return self.pull_bytes(self.pull_varint())

    # -- state -----------------------------------------------------------
    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    @property
    def eof(self) -> bool:
        return self._offset >= len(self._data)

    def getvalue(self) -> bytes:
        return bytes(self._data)

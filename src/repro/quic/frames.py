"""QUIC frames: all 20 frame types of RFC 9000 section 12.4.

Each frame is a frozen dataclass with ``encode`` and a registered decoder;
:func:`decode_frames` parses a packet payload into a frame list and
:func:`encode_frames` is its inverse.  Frame type names match the abstract
alphabet of :mod:`repro.core.alphabet` (``frame.kind`` is the name the
adapter uses when abstracting packets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Sequence

from .varint import Buffer, VarintError

FRAME_PADDING = 0x00
FRAME_PING = 0x01
FRAME_ACK = 0x02
FRAME_ACK_ECN = 0x03
FRAME_RESET_STREAM = 0x04
FRAME_STOP_SENDING = 0x05
FRAME_CRYPTO = 0x06
FRAME_NEW_TOKEN = 0x07
FRAME_STREAM_BASE = 0x08  # 0x08..0x0f with OFF/LEN/FIN bits
FRAME_MAX_DATA = 0x10
FRAME_MAX_STREAM_DATA = 0x11
FRAME_MAX_STREAMS_BIDI = 0x12
FRAME_MAX_STREAMS_UNI = 0x13
FRAME_DATA_BLOCKED = 0x14
FRAME_STREAM_DATA_BLOCKED = 0x15
FRAME_STREAMS_BLOCKED_BIDI = 0x16
FRAME_STREAMS_BLOCKED_UNI = 0x17
FRAME_NEW_CONNECTION_ID = 0x18
FRAME_RETIRE_CONNECTION_ID = 0x19
FRAME_PATH_CHALLENGE = 0x1A
FRAME_PATH_RESPONSE = 0x1B
FRAME_CONNECTION_CLOSE_TRANSPORT = 0x1C
FRAME_CONNECTION_CLOSE_APP = 0x1D
FRAME_HANDSHAKE_DONE = 0x1E


class FrameError(ValueError):
    """Raised on malformed frame encodings."""


@dataclass(frozen=True)
class Frame:
    """Base class; ``kind`` is the abstract frame-type name."""

    kind: ClassVar[str] = "FRAME"

    def encode(self, buf: Buffer) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class PaddingFrame(Frame):
    kind: ClassVar[str] = "PADDING"
    length: int = 1

    def encode(self, buf: Buffer) -> None:
        buf.push_bytes(b"\x00" * self.length)


@dataclass(frozen=True)
class PingFrame(Frame):
    kind: ClassVar[str] = "PING"

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_PING)


@dataclass(frozen=True)
class AckRange:
    """A closed range ``[smallest, largest]`` of acknowledged numbers."""

    smallest: int
    largest: int

    def __post_init__(self) -> None:
        if self.smallest > self.largest or self.smallest < 0:
            raise FrameError(f"bad ack range: [{self.smallest}, {self.largest}]")


@dataclass(frozen=True)
class AckFrame(Frame):
    kind: ClassVar[str] = "ACK"
    largest_acknowledged: int = 0
    ack_delay: int = 0
    ranges: tuple[AckRange, ...] = ()

    def encode(self, buf: Buffer) -> None:
        if not self.ranges:
            raise FrameError("ACK frame needs at least one range")
        ordered = sorted(self.ranges, key=lambda r: -r.largest)
        first = ordered[0]
        if first.largest != self.largest_acknowledged:
            raise FrameError("largest_acknowledged must match first range")
        buf.push_uint8(FRAME_ACK)
        buf.push_varint(self.largest_acknowledged)
        buf.push_varint(self.ack_delay)
        buf.push_varint(len(ordered) - 1)
        buf.push_varint(first.largest - first.smallest)
        previous_smallest = first.smallest
        for ack_range in ordered[1:]:
            gap = previous_smallest - ack_range.largest - 2
            if gap < 0:
                raise FrameError("ack ranges overlap or touch")
            buf.push_varint(gap)
            buf.push_varint(ack_range.largest - ack_range.smallest)
            previous_smallest = ack_range.smallest

    @classmethod
    def decode(cls, buf: Buffer, frame_type: int) -> "AckFrame":
        largest = buf.pull_varint()
        delay = buf.pull_varint()
        range_count = buf.pull_varint()
        first_span = buf.pull_varint()
        ranges = [AckRange(largest - first_span, largest)]
        smallest = largest - first_span
        for _ in range(range_count):
            gap = buf.pull_varint()
            span = buf.pull_varint()
            next_largest = smallest - gap - 2
            ranges.append(AckRange(next_largest - span, next_largest))
            smallest = next_largest - span
        if frame_type == FRAME_ACK_ECN:
            buf.pull_varint(), buf.pull_varint(), buf.pull_varint()
        return cls(largest_acknowledged=largest, ack_delay=delay, ranges=tuple(ranges))

    def acknowledges(self, packet_number: int) -> bool:
        return any(r.smallest <= packet_number <= r.largest for r in self.ranges)


@dataclass(frozen=True)
class ResetStreamFrame(Frame):
    kind: ClassVar[str] = "RESET_STREAM"
    stream_id: int = 0
    error_code: int = 0
    final_size: int = 0

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_RESET_STREAM)
        buf.push_varint(self.stream_id)
        buf.push_varint(self.error_code)
        buf.push_varint(self.final_size)


@dataclass(frozen=True)
class StopSendingFrame(Frame):
    kind: ClassVar[str] = "STOP_SENDING"
    stream_id: int = 0
    error_code: int = 0

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_STOP_SENDING)
        buf.push_varint(self.stream_id)
        buf.push_varint(self.error_code)


@dataclass(frozen=True)
class CryptoFrame(Frame):
    kind: ClassVar[str] = "CRYPTO"
    offset: int = 0
    data: bytes = b""

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_CRYPTO)
        buf.push_varint(self.offset)
        buf.push_varint_bytes(self.data)


@dataclass(frozen=True)
class NewTokenFrame(Frame):
    kind: ClassVar[str] = "NEW_TOKEN"
    token: bytes = b""

    def encode(self, buf: Buffer) -> None:
        if not self.token:
            raise FrameError("NEW_TOKEN frame must carry a token")
        buf.push_uint8(FRAME_NEW_TOKEN)
        buf.push_varint_bytes(self.token)


@dataclass(frozen=True)
class StreamFrame(Frame):
    kind: ClassVar[str] = "STREAM"
    stream_id: int = 0
    offset: int = 0
    data: bytes = b""
    fin: bool = False

    def encode(self, buf: Buffer) -> None:
        frame_type = FRAME_STREAM_BASE | 0x02  # LEN always present
        if self.offset:
            frame_type |= 0x04
        if self.fin:
            frame_type |= 0x01
        buf.push_uint8(frame_type)
        buf.push_varint(self.stream_id)
        if self.offset:
            buf.push_varint(self.offset)
        buf.push_varint_bytes(self.data)

    @classmethod
    def decode(cls, buf: Buffer, frame_type: int) -> "StreamFrame":
        stream_id = buf.pull_varint()
        offset = buf.pull_varint() if frame_type & 0x04 else 0
        if frame_type & 0x02:
            data = buf.pull_varint_bytes()
        else:
            data = buf.pull_bytes(buf.remaining)
        return cls(
            stream_id=stream_id, offset=offset, data=data, fin=bool(frame_type & 0x01)
        )

    @property
    def end_offset(self) -> int:
        return self.offset + len(self.data)


@dataclass(frozen=True)
class MaxDataFrame(Frame):
    kind: ClassVar[str] = "MAX_DATA"
    maximum_data: int = 0

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_MAX_DATA)
        buf.push_varint(self.maximum_data)


@dataclass(frozen=True)
class MaxStreamDataFrame(Frame):
    kind: ClassVar[str] = "MAX_STREAM_DATA"
    stream_id: int = 0
    maximum_stream_data: int = 0

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_MAX_STREAM_DATA)
        buf.push_varint(self.stream_id)
        buf.push_varint(self.maximum_stream_data)


@dataclass(frozen=True)
class MaxStreamsFrame(Frame):
    kind: ClassVar[str] = "MAX_STREAMS"
    maximum_streams: int = 0
    bidirectional: bool = True

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(
            FRAME_MAX_STREAMS_BIDI if self.bidirectional else FRAME_MAX_STREAMS_UNI
        )
        buf.push_varint(self.maximum_streams)


@dataclass(frozen=True)
class DataBlockedFrame(Frame):
    kind: ClassVar[str] = "DATA_BLOCKED"
    limit: int = 0

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_DATA_BLOCKED)
        buf.push_varint(self.limit)


@dataclass(frozen=True)
class StreamDataBlockedFrame(Frame):
    """The frame at the heart of Issue 4 (section 6.2.6).

    ``maximum_stream_data`` indicates the offset at which the sender got
    blocked; Google's implementation left a development placeholder of 0
    here, which Prognosis detected by synthesizing a register model.
    """

    kind: ClassVar[str] = "STREAM_DATA_BLOCKED"
    stream_id: int = 0
    maximum_stream_data: int = 0

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_STREAM_DATA_BLOCKED)
        buf.push_varint(self.stream_id)
        buf.push_varint(self.maximum_stream_data)


@dataclass(frozen=True)
class StreamsBlockedFrame(Frame):
    kind: ClassVar[str] = "STREAMS_BLOCKED"
    limit: int = 0
    bidirectional: bool = True

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(
            FRAME_STREAMS_BLOCKED_BIDI
            if self.bidirectional
            else FRAME_STREAMS_BLOCKED_UNI
        )
        buf.push_varint(self.limit)


@dataclass(frozen=True)
class NewConnectionIdFrame(Frame):
    kind: ClassVar[str] = "NEW_CONNECTION_ID"
    sequence_number: int = 0
    retire_prior_to: int = 0
    connection_id: bytes = b""
    stateless_reset_token: bytes = b"\x00" * 16

    def encode(self, buf: Buffer) -> None:
        if not 1 <= len(self.connection_id) <= 20:
            raise FrameError("connection id must be 1..20 bytes")
        if len(self.stateless_reset_token) != 16:
            raise FrameError("stateless reset token must be 16 bytes")
        buf.push_uint8(FRAME_NEW_CONNECTION_ID)
        buf.push_varint(self.sequence_number)
        buf.push_varint(self.retire_prior_to)
        buf.push_uint8(len(self.connection_id))
        buf.push_bytes(self.connection_id)
        buf.push_bytes(self.stateless_reset_token)


@dataclass(frozen=True)
class RetireConnectionIdFrame(Frame):
    kind: ClassVar[str] = "RETIRE_CONNECTION_ID"
    sequence_number: int = 0

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_RETIRE_CONNECTION_ID)
        buf.push_varint(self.sequence_number)


@dataclass(frozen=True)
class PathChallengeFrame(Frame):
    kind: ClassVar[str] = "PATH_CHALLENGE"
    data: bytes = b"\x00" * 8

    def encode(self, buf: Buffer) -> None:
        if len(self.data) != 8:
            raise FrameError("path challenge data must be 8 bytes")
        buf.push_uint8(FRAME_PATH_CHALLENGE)
        buf.push_bytes(self.data)


@dataclass(frozen=True)
class PathResponseFrame(Frame):
    kind: ClassVar[str] = "PATH_RESPONSE"
    data: bytes = b"\x00" * 8

    def encode(self, buf: Buffer) -> None:
        if len(self.data) != 8:
            raise FrameError("path response data must be 8 bytes")
        buf.push_uint8(FRAME_PATH_RESPONSE)
        buf.push_bytes(self.data)


@dataclass(frozen=True)
class ConnectionCloseFrame(Frame):
    kind: ClassVar[str] = "CONNECTION_CLOSE"
    error_code: int = 0
    frame_type: int = 0
    reason: bytes = b""
    application_close: bool = False

    def encode(self, buf: Buffer) -> None:
        if self.application_close:
            buf.push_uint8(FRAME_CONNECTION_CLOSE_APP)
            buf.push_varint(self.error_code)
        else:
            buf.push_uint8(FRAME_CONNECTION_CLOSE_TRANSPORT)
            buf.push_varint(self.error_code)
            buf.push_varint(self.frame_type)
        buf.push_varint_bytes(self.reason)


@dataclass(frozen=True)
class HandshakeDoneFrame(Frame):
    kind: ClassVar[str] = "HANDSHAKE_DONE"

    def encode(self, buf: Buffer) -> None:
        buf.push_uint8(FRAME_HANDSHAKE_DONE)


# QUIC error codes used by the implementations (RFC 9000 section 20.1).
ERROR_NO_ERROR = 0x00
ERROR_PROTOCOL_VIOLATION = 0x0A
ERROR_FLOW_CONTROL = 0x03


def encode_frames(frames: Sequence[Frame]) -> bytes:
    """Serialize a frame sequence into a packet payload."""
    buf = Buffer()
    for frame in frames:
        frame.encode(buf)
    return buf.getvalue()


def decode_frames(payload: bytes) -> list[Frame]:
    """Parse a packet payload into frames; raises FrameError if malformed."""
    buf = Buffer(payload)
    frames: list[Frame] = []
    try:
        while not buf.eof:
            frame_type = buf.pull_uint8()
            frames.append(_decode_one(buf, frame_type))
    except VarintError as exc:
        raise FrameError(f"truncated frame: {exc}") from exc
    return frames


def _decode_one(buf: Buffer, frame_type: int) -> Frame:
    if frame_type == FRAME_PADDING:
        length = 1
        while not buf.eof and buf.getvalue()[_buf_offset(buf)] == 0:
            buf.pull_uint8()
            length += 1
        return PaddingFrame(length=length)
    if frame_type == FRAME_PING:
        return PingFrame()
    if frame_type in (FRAME_ACK, FRAME_ACK_ECN):
        return AckFrame.decode(buf, frame_type)
    if frame_type == FRAME_RESET_STREAM:
        return ResetStreamFrame(
            stream_id=buf.pull_varint(),
            error_code=buf.pull_varint(),
            final_size=buf.pull_varint(),
        )
    if frame_type == FRAME_STOP_SENDING:
        return StopSendingFrame(
            stream_id=buf.pull_varint(), error_code=buf.pull_varint()
        )
    if frame_type == FRAME_CRYPTO:
        offset = buf.pull_varint()
        return CryptoFrame(offset=offset, data=buf.pull_varint_bytes())
    if frame_type == FRAME_NEW_TOKEN:
        return NewTokenFrame(token=buf.pull_varint_bytes())
    if FRAME_STREAM_BASE <= frame_type <= FRAME_STREAM_BASE | 0x07:
        return StreamFrame.decode(buf, frame_type)
    if frame_type == FRAME_MAX_DATA:
        return MaxDataFrame(maximum_data=buf.pull_varint())
    if frame_type == FRAME_MAX_STREAM_DATA:
        return MaxStreamDataFrame(
            stream_id=buf.pull_varint(), maximum_stream_data=buf.pull_varint()
        )
    if frame_type in (FRAME_MAX_STREAMS_BIDI, FRAME_MAX_STREAMS_UNI):
        return MaxStreamsFrame(
            maximum_streams=buf.pull_varint(),
            bidirectional=frame_type == FRAME_MAX_STREAMS_BIDI,
        )
    if frame_type == FRAME_DATA_BLOCKED:
        return DataBlockedFrame(limit=buf.pull_varint())
    if frame_type == FRAME_STREAM_DATA_BLOCKED:
        return StreamDataBlockedFrame(
            stream_id=buf.pull_varint(), maximum_stream_data=buf.pull_varint()
        )
    if frame_type in (FRAME_STREAMS_BLOCKED_BIDI, FRAME_STREAMS_BLOCKED_UNI):
        return StreamsBlockedFrame(
            limit=buf.pull_varint(),
            bidirectional=frame_type == FRAME_STREAMS_BLOCKED_BIDI,
        )
    if frame_type == FRAME_NEW_CONNECTION_ID:
        sequence = buf.pull_varint()
        retire = buf.pull_varint()
        cid_len = buf.pull_uint8()
        cid = buf.pull_bytes(cid_len)
        token = buf.pull_bytes(16)
        return NewConnectionIdFrame(
            sequence_number=sequence,
            retire_prior_to=retire,
            connection_id=cid,
            stateless_reset_token=token,
        )
    if frame_type == FRAME_RETIRE_CONNECTION_ID:
        return RetireConnectionIdFrame(sequence_number=buf.pull_varint())
    if frame_type == FRAME_PATH_CHALLENGE:
        return PathChallengeFrame(data=buf.pull_bytes(8))
    if frame_type == FRAME_PATH_RESPONSE:
        return PathResponseFrame(data=buf.pull_bytes(8))
    if frame_type in (FRAME_CONNECTION_CLOSE_TRANSPORT, FRAME_CONNECTION_CLOSE_APP):
        error_code = buf.pull_varint()
        if frame_type == FRAME_CONNECTION_CLOSE_TRANSPORT:
            offending = buf.pull_varint()
        else:
            offending = 0
        return ConnectionCloseFrame(
            error_code=error_code,
            frame_type=offending,
            reason=buf.pull_varint_bytes(),
            application_close=frame_type == FRAME_CONNECTION_CLOSE_APP,
        )
    if frame_type == FRAME_HANDSHAKE_DONE:
        return HandshakeDoneFrame()
    raise FrameError(f"unknown frame type: {frame_type:#04x}")


def _buf_offset(buf: Buffer) -> int:
    return len(buf.getvalue()) - buf.remaining


def frame_kinds(frames: Sequence[Frame]) -> tuple[str, ...]:
    """Sorted unique frame-kind names -- the abstraction the adapter uses."""
    return tuple(sorted({frame.kind for frame in frames}))

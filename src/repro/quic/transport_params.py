"""QUIC transport parameters (RFC 9000 section 18).

Transport parameters ride inside the simulated ClientHello/ServerHello and
negotiate flow-control limits.  Only the parameters the implementations
actually consult are modelled, but the codec accepts and preserves unknown
ids (as required by the RFC's extension rules).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .varint import Buffer, VarintError

PARAM_MAX_IDLE_TIMEOUT = 0x01
PARAM_INITIAL_MAX_DATA = 0x04
PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL = 0x05
PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE = 0x06
PARAM_INITIAL_MAX_STREAMS_BIDI = 0x08
PARAM_ORIGINAL_DCID = 0x00
PARAM_RETRY_SOURCE_CID = 0x10


class TransportParameterError(ValueError):
    """Raised on malformed transport-parameter encodings."""


@dataclass
class TransportParameters:
    """The negotiated limits one endpoint advertises to its peer."""

    max_idle_timeout: int = 30_000
    initial_max_data: int = 10_000
    initial_max_stream_data_bidi_local: int = 100
    initial_max_stream_data_bidi_remote: int = 100
    initial_max_streams_bidi: int = 8
    original_dcid: bytes = b""
    retry_source_cid: bytes | None = None
    unknown: dict[int, bytes] = field(default_factory=dict)

    def encode(self) -> bytes:
        buf = Buffer()

        def put_varint_param(param_id: int, value: int) -> None:
            buf.push_varint(param_id)
            inner = Buffer()
            inner.push_varint(value)
            buf.push_varint_bytes(inner.getvalue())

        def put_bytes_param(param_id: int, value: bytes) -> None:
            buf.push_varint(param_id)
            buf.push_varint_bytes(value)

        put_varint_param(PARAM_MAX_IDLE_TIMEOUT, self.max_idle_timeout)
        put_varint_param(PARAM_INITIAL_MAX_DATA, self.initial_max_data)
        put_varint_param(
            PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL,
            self.initial_max_stream_data_bidi_local,
        )
        put_varint_param(
            PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE,
            self.initial_max_stream_data_bidi_remote,
        )
        put_varint_param(
            PARAM_INITIAL_MAX_STREAMS_BIDI, self.initial_max_streams_bidi
        )
        if self.original_dcid:
            put_bytes_param(PARAM_ORIGINAL_DCID, self.original_dcid)
        if self.retry_source_cid is not None:
            put_bytes_param(PARAM_RETRY_SOURCE_CID, self.retry_source_cid)
        for param_id, value in sorted(self.unknown.items()):
            put_bytes_param(param_id, value)
        return buf.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "TransportParameters":
        params = cls()
        buf = Buffer(data)
        try:
            while not buf.eof:
                param_id = buf.pull_varint()
                value = buf.pull_varint_bytes()
                params._apply(param_id, value)
        except VarintError as exc:
            raise TransportParameterError(f"truncated parameters: {exc}") from exc
        return params

    def _apply(self, param_id: int, value: bytes) -> None:
        def as_varint() -> int:
            inner = Buffer(value)
            result = inner.pull_varint()
            if not inner.eof:
                raise TransportParameterError(
                    f"trailing bytes in parameter {param_id:#x}"
                )
            return result

        if param_id == PARAM_MAX_IDLE_TIMEOUT:
            self.max_idle_timeout = as_varint()
        elif param_id == PARAM_INITIAL_MAX_DATA:
            self.initial_max_data = as_varint()
        elif param_id == PARAM_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL:
            self.initial_max_stream_data_bidi_local = as_varint()
        elif param_id == PARAM_INITIAL_MAX_STREAM_DATA_BIDI_REMOTE:
            self.initial_max_stream_data_bidi_remote = as_varint()
        elif param_id == PARAM_INITIAL_MAX_STREAMS_BIDI:
            self.initial_max_streams_bidi = as_varint()
        elif param_id == PARAM_ORIGINAL_DCID:
            self.original_dcid = value
        elif param_id == PARAM_RETRY_SOURCE_CID:
            self.retry_source_cid = value
        else:
            self.unknown[param_id] = value

"""Server-side QUIC connection processing.

:class:`QUICServerConnection` is a real packet processor: it decrypts
incoming packets with the proper level keys, parses frames, maintains
packet-number spaces, streams and flow control, and realizes the response
:class:`~repro.quic.behavior.PacketSpec` lists produced by its
:class:`~repro.quic.behavior.BehaviorCore` into freshly numbered, encrypted
packets.  :class:`QUICServer` owns the UDP endpoint, performs address
validation (RETRY) when enabled, and hosts one connection at a time (the
SUL is reset between learner queries).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim import Datagram, SimulatedNetwork
from . import crypto
from .behavior import BehaviorCore, BehaviorTable, OutputSpec, input_key, spec

#: The response flush emitted when the client FINs its request stream.
spec_final_flush = spec("SHORT", "STREAM")
from .crypto import CryptoError, KeyPair
from .frames import (
    AckFrame,
    AckRange,
    ConnectionCloseFrame,
    CryptoFrame,
    ERROR_PROTOCOL_VIOLATION,
    Frame,
    HandshakeDoneFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    StreamDataBlockedFrame,
    StreamFrame,
    FrameError,
    decode_frames,
    encode_frames,
    frame_kinds,
)
from .packet import (
    PacketHeader,
    PacketType,
    decode_packet,
    encode_packet,
    header_bytes_for_aead,
)
from .packetspace import PacketNumberSpace, Space
from .streams import ReceiveStream, SendStream
from .transport_params import TransportParameters

CID_LENGTH = 8
CLIENT_HELLO_MAGIC = b"CH01"
SERVER_HELLO_MAGIC = b"SH01"
ENCRYPTED_EXTENSIONS = b"EE01" + b"\x00" * 60
SERVER_FINISHED = b"SF01" + b"\x00" * 28
CLIENT_FINISHED_MAGIC = b"CF01"
SESSION_TICKET = b"NST1" + b"\x00" * 40
RESPONSE_CHUNK = 150
PUSH_GREETING = b"server-greeting/0.5rtt:" + b"g" * 40


@dataclass
class ServerProfile:
    """Implementation-specific behaviour switches."""

    name: str
    table_factory: "callable"
    #: Issue 4: report maximum_stream_data = 0 in STREAM_DATA_BLOCKED.
    sdb_reports_zero: bool = False
    #: Enable RETRY-based address validation.
    retry_enabled: bool = False
    #: Issue 2: probability of answering post-close packets with a
    #: stateless reset (only consulted for flaky table states).
    stateless_reset_probability: float = 1.0
    #: Size of the response the server generates per completed request.
    response_size: int = 3 * RESPONSE_CHUNK


def _space_for(packet_type: PacketType) -> Space:
    if packet_type is PacketType.INITIAL:
        return Space.INITIAL
    if packet_type is PacketType.HANDSHAKE:
        return Space.HANDSHAKE
    return Space.APPLICATION


class QUICServerConnection:
    """One server connection: crypto, spaces, streams and the behaviour core."""

    def __init__(
        self,
        profile: ServerProfile,
        table: BehaviorTable,
        original_dcid: bytes,
        client_scid: bytes,
        rng: random.Random,
    ) -> None:
        self.profile = profile
        self.core = BehaviorCore(table)
        self.rng = rng
        self.scid = bytes(rng.randrange(256) for _ in range(CID_LENGTH))
        self.client_cid = client_scid
        self.original_dcid = original_dcid
        self.initial_keys: KeyPair = crypto.initial_keys(original_dcid)
        self.handshake_keys: KeyPair | None = None
        self.application_keys: KeyPair | None = None
        self.client_random: bytes | None = None
        self.server_random: bytes | None = None
        self.client_params = TransportParameters()
        self.spaces = {space: PacketNumberSpace() for space in Space}
        self._crypto_queues: dict[Space, list[bytes]] = {space: [] for space in Space}
        self._crypto_offsets: dict[Space, int] = {space: 0 for space in Space}
        self.recv_stream = ReceiveStream()
        self.send_stream = SendStream()
        self.recv_stream.flow.limit = 10_000
        self._request_bytes = 0
        self._hello_processed = False

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def _keys_for(self, space: Space) -> KeyPair | None:
        if space is Space.INITIAL:
            return self.initial_keys
        if space is Space.HANDSHAKE:
            return self.handshake_keys
        return self.application_keys

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def handle_packet(self, header: PacketHeader) -> list[PacketHeader]:
        """Process one decrypted-able packet; returns response packets."""
        space = _space_for(header.packet_type)
        keys = self._keys_for(space)
        if keys is None:
            return []  # no keys for this level yet: undecryptable, dropped
        try:
            plaintext = keys.client.open(
                header.packet_number, header_bytes_for_aead(header), header.payload
            )
        except CryptoError:
            return []
        pn_space = self.spaces[space]
        if not pn_space.on_received(header.packet_number):
            return []  # duplicate packet number: already processed
        try:
            frames = decode_frames(plaintext)
        except FrameError:
            return []
        kinds = tuple(k for k in frame_kinds(frames) if k != "PADDING")
        self._process_frame_contents(space, frames)
        if self.core.is_flaky:
            # Issue 2 (mvfst): the closed connection answers with a
            # stateless reset only ~82% of the time, with no back-off.
            if self.rng.random() < self.profile.stateless_reset_probability:
                return [self._stateless_reset()]
            return []
        output = self.core.react(input_key(header.packet_type.value, kinds))
        responses = self._realize(output)
        if any(isinstance(f, StreamFrame) and f.fin for f in frames):
            # The client finished its request stream: flush the final
            # response.  This is concrete-content-dependent behaviour the
            # abstract frame-kind view cannot see -- which is exactly what
            # makes an ambiguous abstraction observable (section 5,
            # nondeterminism reason 1).
            responses.extend(self._realize((spec_final_flush,)))
        return responses

    def abort_for_pn_reset(self) -> list[PacketHeader]:
        """Issue 1: strict implementations close when the client resets its
        packet-number spaces after a RETRY."""
        if not self.core.abort_for_pn_reset():
            return []
        close = ConnectionCloseFrame(
            error_code=ERROR_PROTOCOL_VIOLATION, reason=b"pn reset after retry"
        )
        packet = self._build_packet(Space.INITIAL, [close])
        return [packet] if packet is not None else []

    # ------------------------------------------------------------------
    # Frame-content side effects (real protocol state)
    # ------------------------------------------------------------------
    def _process_frame_contents(self, space: Space, frames: list[Frame]) -> None:
        for frame in frames:
            if isinstance(frame, CryptoFrame):
                self._on_crypto(space, frame)
            elif isinstance(frame, AckFrame):
                self.spaces[space].on_ack(frame)
            elif isinstance(frame, StreamFrame):
                self._on_stream(frame)
            elif isinstance(frame, MaxDataFrame):
                pass  # connection-level credit is not the bottleneck here
            elif isinstance(frame, MaxStreamDataFrame):
                self.send_stream.flow.raise_limit(frame.maximum_stream_data)
            elif isinstance(frame, ConnectionCloseFrame):
                self.core.state = _closed_state_for(self.core)

    def _on_crypto(self, space: Space, frame: CryptoFrame) -> None:
        if space is Space.INITIAL and frame.data.startswith(CLIENT_HELLO_MAGIC):
            self._process_client_hello(frame.data)

    def _process_client_hello(self, data: bytes) -> None:
        if self._hello_processed:
            return
        self._hello_processed = True
        self.client_random = data[4 : 4 + crypto.RANDOM_LENGTH]
        try:
            self.client_params = TransportParameters.decode(
                data[4 + crypto.RANDOM_LENGTH :]
            )
        except Exception:
            self.client_params = TransportParameters()
        self.server_random = bytes(
            self.rng.randrange(256) for _ in range(crypto.RANDOM_LENGTH)
        )
        self.handshake_keys = crypto.handshake_keys(
            self.client_random, self.server_random
        )
        self.application_keys = crypto.application_keys(
            self.client_random, self.server_random
        )
        # The client's advertised stream credit limits our response stream.
        self.send_stream.flow.limit = (
            self.client_params.initial_max_stream_data_bidi_remote
        )
        server_params = TransportParameters(original_dcid=self.original_dcid)
        server_hello = (
            SERVER_HELLO_MAGIC + self.server_random + server_params.encode()
        )
        self._crypto_queues[Space.INITIAL].append(server_hello)
        self._crypto_queues[Space.HANDSHAKE].append(ENCRYPTED_EXTENSIONS)
        self._crypto_queues[Space.HANDSHAKE].append(SERVER_FINISHED)

    def _on_stream(self, frame: StreamFrame) -> None:
        before = self.recv_stream.bytes_received
        try:
            self.recv_stream.on_frame(frame.offset, frame.data, frame.fin)
        except Exception:
            return
        received = self.recv_stream.bytes_received - before
        if received <= 0:
            return
        self._request_bytes += received
        # An application request completes every two chunks; the server
        # generates a response bigger than the client's initial stream
        # credit, which is what makes STREAM_DATA_BLOCKED observable.
        while self._request_bytes >= 200:
            self._request_bytes -= 200
            self.send_stream.write(b"r" * self.profile.response_size)

    # ------------------------------------------------------------------
    # Outbound realization
    # ------------------------------------------------------------------
    def _realize(self, output: OutputSpec) -> list[PacketHeader]:
        packets: list[PacketHeader] = []
        for packet_spec in output:
            space = _space_for(PacketType(packet_spec.packet_type))
            frames: list[Frame] = []
            for kind in packet_spec.frames:
                frame = self._realize_frame(kind, space)
                if frame is not None:
                    frames.append(frame)
            packet = self._build_packet(space, frames, packet_spec.packet_type)
            if packet is not None:
                packets.append(packet)
        return packets

    def _realize_frame(self, kind: str, space: Space) -> Frame | None:
        if kind == "ACK":
            ack = self.spaces[space].build_ack()
            return ack if ack is not None else AckFrame(0, 0, (AckRange(0, 0),))
        if kind == "CRYPTO":
            queue = self._crypto_queues[space]
            data = queue.pop(0) if queue else SESSION_TICKET
            offset = self._crypto_offsets[space]
            self._crypto_offsets[space] += len(data)
            return CryptoFrame(offset=offset, data=data)
        if kind == "STREAM":
            if not self.send_stream.has_pending:
                self.send_stream.write(PUSH_GREETING)
            offset, data, fin = self.send_stream.drain(max_bytes=RESPONSE_CHUNK * 2)
            return StreamFrame(stream_id=0, offset=offset, data=data, fin=fin)
        if kind == "STREAM_DATA_BLOCKED":
            blocked_at = self.send_stream.flow.blocked_at
            if blocked_at is None:
                blocked_at = self.send_stream.flow.limit
            reported = 0 if self.profile.sdb_reports_zero else blocked_at
            return StreamDataBlockedFrame(stream_id=0, maximum_stream_data=reported)
        if kind == "HANDSHAKE_DONE":
            return HandshakeDoneFrame()
        if kind == "CONNECTION_CLOSE":
            return ConnectionCloseFrame(
                error_code=ERROR_PROTOCOL_VIOLATION, reason=b"protocol violation"
            )
        if kind == "MAX_DATA":
            return MaxDataFrame(maximum_data=self.recv_stream.flow.grant(1000))
        if kind == "MAX_STREAM_DATA":
            return MaxStreamDataFrame(
                stream_id=0, maximum_stream_data=self.recv_stream.flow.grant(300)
            )
        return None

    def _build_packet(
        self, space: Space, frames: list[Frame], packet_type: str | None = None
    ) -> PacketHeader | None:
        keys = self._keys_for(space)
        if keys is None:
            return None
        if packet_type is None:
            packet_type = {
                Space.INITIAL: "INITIAL",
                Space.HANDSHAKE: "HANDSHAKE",
                Space.APPLICATION: "SHORT",
            }[space]
        ptype = PacketType(packet_type)
        pn = self.spaces[space].take_packet_number()
        header = PacketHeader(
            packet_type=ptype,
            destination_cid=self.client_cid,
            source_cid=self.scid if ptype is not PacketType.SHORT else b"",
            packet_number=pn,
        )
        sealed = keys.server.seal(
            pn, header_bytes_for_aead(header), encode_frames(frames)
        )
        return PacketHeader(
            packet_type=ptype,
            destination_cid=header.destination_cid,
            source_cid=header.source_cid,
            packet_number=pn,
            payload=sealed,
        )

    def _stateless_reset(self) -> PacketHeader:
        return PacketHeader(
            packet_type=PacketType.STATELESS_RESET,
            destination_cid=b"",
            payload=crypto.stateless_reset_token(self.scid),
        )


def _closed_state_for(core: BehaviorCore) -> str:
    """Where the table goes when the *client* closes; best-effort mapping."""
    if core.table.pn_reset_abort_state is not None:
        return core.table.pn_reset_abort_state
    # Quiche/mvfst tables use q3 as their silent closed state.
    return "q3" if "q3" in core.table.rows else core.state


class QUICServer:
    """A simulated QUIC server bound to the network (the Implementation)."""

    def __init__(
        self,
        network: SimulatedNetwork,
        profile: ServerProfile,
        host: str = "server",
        port: int = 4433,
        seed: int = 17,
    ) -> None:
        self.network = network
        self.profile = profile
        self.host = host
        self.port = port
        self.rng = random.Random(seed)
        self.endpoint = network.bind(host, port)
        self.endpoint.handler = self._handle
        self.connection: QUICServerConnection | None = None
        self.datagrams_received = 0
        self._retry_scid = b"retry-id"

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all connection state (adapter property 3)."""
        self.connection = None

    def close(self) -> None:
        self.endpoint.close()

    # ------------------------------------------------------------------
    def _handle(self, datagram: Datagram) -> None:
        self.datagrams_received += 1
        try:
            header = decode_packet(datagram.payload, short_cid_length=CID_LENGTH)
        except Exception:
            return
        responses = self._dispatch(header, datagram.source)
        for response in responses:
            self.endpoint.send(encode_packet(response), datagram.source)

    def _dispatch(self, header: PacketHeader, source) -> list[PacketHeader]:
        if header.packet_type is PacketType.INITIAL and self.connection is None:
            return self._on_new_initial(header, source)
        if self.connection is None:
            return []  # nothing to decrypt non-initial packets with
        return self.connection.handle_packet(header)

    def _on_new_initial(self, header: PacketHeader, source) -> list[PacketHeader]:
        min_pn = 0
        if self.profile.retry_enabled:
            # The token binds the client's source address only: after a
            # RETRY the client adopts a fresh destination cid (the retry's
            # source cid), so the cid cannot participate in the binding.
            if not header.token:
                token = crypto.address_validation_token(
                    source[0], source[1], b""
                ) + (header.packet_number + 1).to_bytes(4, "big")
                return [
                    PacketHeader(
                        packet_type=PacketType.RETRY,
                        destination_cid=header.source_cid,
                        source_cid=self._retry_scid,
                        token=token,
                    )
                ]
            expected = crypto.address_validation_token(source[0], source[1], b"")
            if header.token[:-4] != expected:
                return []  # invalid token (e.g. sent from the wrong port)
            min_pn = int.from_bytes(header.token[-4:], "big")
        table = self.profile.table_factory()
        self.connection = QUICServerConnection(
            profile=self.profile,
            table=table,
            original_dcid=header.destination_cid,
            client_scid=header.source_cid,
            rng=self.rng,
        )
        if self.profile.retry_enabled and header.packet_number < min_pn:
            # The client reset its packet-number space after the RETRY.
            responses = self.connection.abort_for_pn_reset()
            if responses:
                return responses
        return self.connection.handle_packet(header)

"""QUIC substrate: wire codecs, crypto, flow control, servers and client."""

from .behavior import (
    ALL_INPUTS,
    BehaviorCore,
    BehaviorTable,
    google_table,
    input_key,
    mvfst_table,
    quiche_table,
)
from .connection import QUICServer, QUICServerConnection, ServerProfile
from .crypto import CryptoError
from .frames import Frame, FrameError, decode_frames, encode_frames, frame_kinds
from .packet import PacketError, PacketHeader, PacketType, decode_packet, encode_packet
from .varint import Buffer, VarintError, decode_varint, encode_varint

__all__ = [
    "ALL_INPUTS",
    "BehaviorCore",
    "BehaviorTable",
    "Buffer",
    "CryptoError",
    "Frame",
    "FrameError",
    "PacketError",
    "PacketHeader",
    "PacketType",
    "QUICServer",
    "QUICServerConnection",
    "ServerProfile",
    "VarintError",
    "decode_frames",
    "decode_packet",
    "decode_varint",
    "encode_frames",
    "encode_packet",
    "encode_varint",
    "frame_kinds",
    "google_table",
    "input_key",
    "mvfst_table",
    "quiche_table",
]

"""Packet-number spaces (RFC 9000 section 12.3).

QUIC keeps three independent packet-number spaces: Initial, Handshake and
Application (1-RTT).  Each space tracks the next number to send, every
number received (for ACK generation and duplicate detection), and the
largest number the peer acknowledged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .frames import AckFrame, AckRange


class Space(enum.Enum):
    INITIAL = "INITIAL"
    HANDSHAKE = "HANDSHAKE"
    APPLICATION = "APPLICATION"


@dataclass
class PacketNumberSpace:
    """Send/receive bookkeeping for one encryption level."""

    next_packet_number: int = 0
    received: set[int] = field(default_factory=set)
    largest_received: int = -1
    largest_acked_by_peer: int = -1

    def take_packet_number(self) -> int:
        number = self.next_packet_number
        self.next_packet_number += 1
        return number

    def on_received(self, packet_number: int) -> bool:
        """Record an incoming packet number; False if it is a duplicate."""
        if packet_number in self.received:
            return False
        self.received.add(packet_number)
        self.largest_received = max(self.largest_received, packet_number)
        return True

    def on_ack(self, frame: AckFrame) -> None:
        self.largest_acked_by_peer = max(
            self.largest_acked_by_peer, frame.largest_acknowledged
        )

    def build_ack(self) -> AckFrame | None:
        """An ACK frame covering everything received so far, or None."""
        if not self.received:
            return None
        ranges: list[AckRange] = []
        ordered = sorted(self.received)
        start = previous = ordered[0]
        for number in ordered[1:]:
            if number == previous + 1:
                previous = number
                continue
            ranges.append(AckRange(start, previous))
            start = previous = number
        ranges.append(AckRange(start, previous))
        return AckFrame(
            largest_acknowledged=self.largest_received,
            ack_delay=0,
            ranges=tuple(reversed(ranges)),
        )

    def reset(self) -> None:
        """Forget everything -- what a client does when it (incorrectly?)
        resets its packet-number spaces after a RETRY (Issue 1)."""
        self.next_packet_number = 0
        self.received.clear()
        self.largest_received = -1
        self.largest_acked_by_peer = -1

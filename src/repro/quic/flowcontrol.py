"""Connection- and stream-level flow control.

QUIC flow control is credit-based: the receiver advertises a maximum
absolute offset (``MAX_DATA`` / ``MAX_STREAM_DATA``) and the sender may not
send past it.  :class:`SendFlowController` tracks the sender side -- how
much credit remains and the offset at which a send got *blocked* (the value
a correct implementation reports in ``STREAM_DATA_BLOCKED``; Google's bug in
Issue 4 is reporting 0 instead).
"""

from __future__ import annotations

from dataclasses import dataclass


class FlowControlError(Exception):
    """Raised when a peer violates an advertised limit."""


@dataclass
class SendFlowController:
    """Sender-side credit tracking for one stream or the connection."""

    limit: int = 0
    sent: int = 0
    blocked_at: int | None = None

    def available(self) -> int:
        return max(0, self.limit - self.sent)

    def consume(self, wanted: int) -> int:
        """Send up to ``wanted`` bytes; returns how many fit in the credit.

        Records ``blocked_at`` (the current limit) when the send is cut
        short -- the value ``STREAM_DATA_BLOCKED.maximum_stream_data``
        should carry.
        """
        granted = min(wanted, self.available())
        self.sent += granted
        if granted < wanted:
            self.blocked_at = self.limit
        else:
            self.blocked_at = None
        return granted

    def raise_limit(self, new_limit: int) -> bool:
        """Apply a MAX_DATA / MAX_STREAM_DATA update; returns True if raised.

        Limits never regress (RFC 9000: a smaller value is ignored).
        """
        if new_limit > self.limit:
            self.limit = new_limit
            if self.available() > 0:
                self.blocked_at = None
            return True
        return False

    @property
    def is_blocked(self) -> bool:
        return self.blocked_at is not None


@dataclass
class ReceiveFlowController:
    """Receiver-side accounting for one stream or the connection."""

    limit: int = 0
    received: int = 0

    def on_data(self, new_final_offset: int) -> None:
        """Account for data up to ``new_final_offset``; enforce our limit."""
        if new_final_offset > self.limit:
            raise FlowControlError(
                f"peer exceeded flow-control limit: {new_final_offset} > {self.limit}"
            )
        self.received = max(self.received, new_final_offset)

    def grant(self, extra: int) -> int:
        """Raise the advertised limit by ``extra``; returns the new limit."""
        self.limit += extra
        return self.limit

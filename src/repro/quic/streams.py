"""Stream state: ordered reassembly plus send buffering.

A QUIC stream is two independent byte pipes.  The receive side reassembles
out-of-order STREAM frames into a contiguous prefix; the send side queues
response bytes and drains them through a
:class:`~repro.quic.flowcontrol.SendFlowController`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .flowcontrol import ReceiveFlowController, SendFlowController


class StreamError(Exception):
    """Raised on final-size violations or writes after FIN."""


@dataclass
class ReceiveStream:
    """Reassembles the peer's bytes for one stream."""

    flow: ReceiveFlowController = field(default_factory=ReceiveFlowController)
    _segments: dict[int, bytes] = field(default_factory=dict)
    _delivered: int = 0
    final_size: int | None = None

    def on_frame(self, offset: int, data: bytes, fin: bool) -> None:
        end = offset + len(data)
        if self.final_size is not None and end > self.final_size:
            raise StreamError(
                f"data beyond final size: {end} > {self.final_size}"
            )
        if fin:
            if self.final_size is not None and self.final_size != end:
                raise StreamError("conflicting final sizes")
            self.final_size = end
        self.flow.on_data(end)
        if data:
            self._segments[offset] = data

    def readable(self) -> bytes:
        """The contiguous prefix not yet consumed."""
        out = bytearray()
        cursor = self._delivered
        while cursor in self._segments:
            segment = self._segments[cursor]
            out.extend(segment)
            cursor += len(segment)
        return bytes(out)

    def consume(self, count: int) -> bytes:
        """Pop ``count`` bytes off the contiguous prefix."""
        data = self.readable()[:count]
        cursor = self._delivered
        remaining = len(data)
        while remaining > 0 and cursor in self._segments:
            segment = self._segments.pop(cursor)
            if len(segment) > remaining:
                self._segments[cursor + remaining] = segment[remaining:]
                cursor += remaining
                remaining = 0
            else:
                cursor += len(segment)
                remaining -= len(segment)
        self._delivered = cursor
        return data

    @property
    def bytes_received(self) -> int:
        return self.flow.received

    @property
    def finished(self) -> bool:
        return self.final_size is not None and self._delivered >= self.final_size


@dataclass
class SendStream:
    """Buffers our bytes for one stream and drains under flow control."""

    flow: SendFlowController = field(default_factory=SendFlowController)
    _pending: bytearray = field(default_factory=bytearray)
    offset: int = 0
    fin_queued: bool = False
    fin_sent: bool = False

    def write(self, data: bytes, fin: bool = False) -> None:
        if self.fin_queued:
            raise StreamError("write after FIN")
        self._pending.extend(data)
        if fin:
            self.fin_queued = True

    def sendable(self) -> int:
        """How many pending bytes current credit allows."""
        return min(len(self._pending), self.flow.available())

    def drain(self, max_bytes: int | None = None) -> tuple[int, bytes, bool]:
        """Take a chunk to put in a STREAM frame.

        Returns ``(offset, data, fin)``; records blocked state in the flow
        controller when credit cuts the send short.
        """
        wanted = len(self._pending)
        if max_bytes is not None:
            wanted = min(wanted, max_bytes)
        granted = self.flow.consume(wanted)
        data = bytes(self._pending[:granted])
        del self._pending[:granted]
        offset = self.offset
        self.offset += granted
        fin = self.fin_queued and not self._pending
        if fin:
            self.fin_sent = True
        return offset, data, fin

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    @property
    def is_blocked(self) -> bool:
        return self.has_pending and self.flow.available() == 0

"""Per-implementation protocol cores for the simulated QUIC servers.

Each server's observable behaviour -- which packets it emits for each
``(packet type, frame set)`` input in each connection phase -- is encoded as
an explicit behaviour table.  The tables are our reconstruction of the
models Prognosis learned from the real servers (paper appendix A.2/A.3):
the appendix figures are rendered as flattened GraphViz text whose edge
structure is partially ambiguous, so we rebuilt semantically coherent
machines that

* have exactly the state/transition counts the paper reports (Google-like:
  12 states / 84 transitions; Quiche-like: 8 states / 56 transitions),
* produce the documented handshake flights, connection-close reactions,
  flow-control and ``STREAM_DATA_BLOCKED`` behaviour, and
* exhibit the four issues of section 6.2 (RETRY divergence, mvfst's
  nondeterministic stateless resets, the tracker port bug's fallout, and
  Google's constant-zero ``maximum_stream_data``).

The tables drive *real* packet processing: the connection layer realizes
each :class:`PacketSpec` as an encrypted packet whose frames carry live
values (packet numbers, offsets, flow-control limits), which is what the
synthesizer later mines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

InputKey = tuple[str, tuple[str, ...]]


def input_key(packet_type: str, frames: tuple[str, ...] | list[str]) -> InputKey:
    """Canonical table key: packet type + sorted frame kinds."""
    return packet_type, tuple(sorted(frames))


# The seven abstract inputs of section 6.2.2.
I_CH = input_key("INITIAL", ("CRYPTO",))
I_IHD = input_key("INITIAL", ("ACK", "HANDSHAKE_DONE"))
I_HC = input_key("HANDSHAKE", ("ACK", "CRYPTO"))
I_HHD = input_key("HANDSHAKE", ("ACK", "HANDSHAKE_DONE"))
I_MD = input_key("SHORT", ("ACK", "MAX_DATA", "MAX_STREAM_DATA"))
I_ST = input_key("SHORT", ("ACK", "STREAM"))
I_SHD = input_key("SHORT", ("ACK", "HANDSHAKE_DONE"))

ALL_INPUTS = (I_CH, I_IHD, I_HC, I_HHD, I_MD, I_ST, I_SHD)


@dataclass(frozen=True)
class PacketSpec:
    """One response packet to realize: type plus the frame kinds it carries."""

    packet_type: str
    frames: tuple[str, ...]


def spec(packet_type: str, *frames: str) -> PacketSpec:
    return PacketSpec(packet_type, tuple(frames))


OutputSpec = tuple[PacketSpec, ...]

NIL: OutputSpec = ()


@dataclass(frozen=True)
class BehaviorTable:
    """A complete deterministic behaviour table for one implementation.

    ``rows[state][input] == (output_spec, next_state)``.  ``flaky_states``
    marks states where the implementation responds *nondeterministically*
    with a stateless reset (mvfst, Issue 2); the connection layer handles
    those before consulting the table.
    """

    name: str
    initial_state: str
    rows: Mapping[str, Mapping[InputKey, tuple[OutputSpec, str]]]
    #: state entered when the server aborts due to a post-RETRY packet-number
    #: space reset (Issue 1); None means the implementation tolerates it.
    pn_reset_abort_state: str | None = None
    flaky_states: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        for state, row in self.rows.items():
            missing = [key for key in ALL_INPUTS if key not in row]
            if missing:
                raise ValueError(
                    f"{self.name}: state {state} missing inputs {missing}"
                )
            for _, (_, target) in row.items():
                if target not in self.rows:
                    raise ValueError(
                        f"{self.name}: transition into unknown state {target}"
                    )

    def react(self, state: str, key: InputKey) -> tuple[OutputSpec, str]:
        """Table lookup; unknown inputs are ignored (stay, no output)."""
        row = self.rows[state]
        if key in row:
            return row[key]
        return NIL, state


# ---------------------------------------------------------------------------
# Shared output vocabulary
# ---------------------------------------------------------------------------

# Google sends 0.5-RTT data with its first flight; Quiche does not.  The
# INITIAL goes first so the peer derives handshake keys before the
# handshake-level packets arrive (real servers coalesce in this order too).
FLIGHT_GOOGLE: OutputSpec = (
    spec("INITIAL", "ACK", "CRYPTO"),
    spec("HANDSHAKE", "CRYPTO"),
    spec("HANDSHAKE", "CRYPTO"),
    spec("SHORT", "STREAM"),
)
FLIGHT_QUICHE: OutputSpec = (
    spec("INITIAL", "ACK", "CRYPTO"),
    spec("HANDSHAKE", "CRYPTO"),
    spec("HANDSHAKE", "CRYPTO"),
)

# Post-handshake flight: session ticket + HANDSHAKE_DONE.
FIN_GOOGLE: OutputSpec = (spec("SHORT", "CRYPTO"), spec("SHORT", "HANDSHAKE_DONE"))
FIN_QUICHE: OutputSpec = (
    spec("HANDSHAKE", "ACK"),
    spec("SHORT", "CRYPTO", "HANDSHAKE_DONE", "STREAM"),
    spec("SHORT", "STREAM"),
    spec("SHORT", "STREAM"),
)

# Close reactions at various encryption levels.
CLOSE_INITIAL: OutputSpec = (
    spec("HANDSHAKE", "CONNECTION_CLOSE"),
    spec("INITIAL", "ACK", "CONNECTION_CLOSE"),
    spec("SHORT", "CONNECTION_CLOSE", "STREAM"),
)
CLOSE_HANDSHAKE: OutputSpec = (
    spec("HANDSHAKE", "ACK", "CONNECTION_CLOSE"),
    spec("SHORT", "CONNECTION_CLOSE", "STREAM"),
)
CLOSE_SHORT_RETX: OutputSpec = (spec("SHORT", "ACK", "CONNECTION_CLOSE", "STREAM"),)
CLOSE_Q_HANDSHAKE: OutputSpec = (spec("HANDSHAKE", "CONNECTION_CLOSE"),)
CLOSE_Q_SHORT: OutputSpec = (spec("SHORT", "CONNECTION_CLOSE"),)

ACK_ONLY: OutputSpec = (spec("SHORT", "ACK"),)
FLUSH: OutputSpec = (spec("SHORT", "ACK", "STREAM"),)
ECHO: OutputSpec = (spec("SHORT", "ACK", "STREAM"),)
BLOCKED: OutputSpec = (spec("SHORT", "ACK", "STREAM", "STREAM_DATA_BLOCKED"),)

# Google's reaction to a ClientHello arriving after an earlier violation:
# a fresh server flight fused with the pending close (appendix A.2, s11).
REFLIGHT_GOOGLE: OutputSpec = (
    spec("INITIAL", "ACK", "CRYPTO"),
    spec("INITIAL", "ACK", "CONNECTION_CLOSE"),
    spec("HANDSHAKE", "CRYPTO"),
    spec("HANDSHAKE", "CRYPTO"),
    spec("HANDSHAKE", "CONNECTION_CLOSE"),
    spec("SHORT", "STREAM"),
    spec("SHORT", "CONNECTION_CLOSE", "STREAM"),
)


# ---------------------------------------------------------------------------
# Google-like implementation: 12 states, 84 transitions
# ---------------------------------------------------------------------------

def google_table() -> BehaviorTable:
    """Behaviour core of the Google-like server.

    States: g0 idle; g1 flight sent; g2 connected; g3 idle after a premature
    HANDSHAKE_DONE; g4 closed during handshake (close retransmitted in the
    handshake space); g5 request in progress; g6 early 1-RTT data buffered
    during handshake; g7 connected with buffered early data; g8 response
    blocked by stream flow control; g9 response flushed after unblocking;
    g10 closed post-handshake (close retransmitted in 1-RTT space); g11
    flight sent while a close is pending.
    """
    rows = {
        "g0": {
            I_CH: (FLIGHT_GOOGLE, "g1"),
            I_IHD: (NIL, "g3"),
            I_HC: (NIL, "g0"),
            I_HHD: (NIL, "g0"),
            I_MD: (NIL, "g0"),
            I_ST: (NIL, "g0"),
            I_SHD: (NIL, "g0"),
        },
        "g1": {
            I_CH: (CLOSE_INITIAL, "g4"),
            I_IHD: (CLOSE_INITIAL, "g4"),
            I_HC: (FIN_GOOGLE, "g2"),
            I_HHD: (CLOSE_HANDSHAKE, "g4"),
            I_MD: (NIL, "g1"),
            I_ST: (NIL, "g6"),
            I_SHD: (NIL, "g1"),
        },
        "g2": {
            I_CH: (NIL, "g2"),
            I_IHD: (NIL, "g2"),
            I_HC: (FIN_GOOGLE, "g2"),
            I_HHD: (CLOSE_HANDSHAKE, "g4"),
            I_MD: (ACK_ONLY, "g2"),
            I_ST: (ACK_ONLY, "g5"),
            I_SHD: (CLOSE_SHORT_RETX, "g10"),
        },
        "g3": {
            I_CH: (REFLIGHT_GOOGLE, "g11"),
            I_IHD: (NIL, "g3"),
            I_HC: (NIL, "g3"),
            I_HHD: (NIL, "g3"),
            I_MD: (NIL, "g3"),
            I_ST: (NIL, "g3"),
            I_SHD: (NIL, "g3"),
        },
        "g4": {
            I_CH: (NIL, "g4"),
            I_IHD: (NIL, "g4"),
            I_HC: (CLOSE_HANDSHAKE, "g4"),
            I_HHD: (NIL, "g4"),
            I_MD: (NIL, "g4"),
            I_ST: (NIL, "g4"),
            I_SHD: (NIL, "g4"),
        },
        "g5": {
            I_CH: (NIL, "g5"),
            I_IHD: (NIL, "g5"),
            I_HC: (NIL, "g5"),
            I_HHD: (CLOSE_HANDSHAKE, "g4"),
            I_MD: (ACK_ONLY, "g5"),
            I_ST: (BLOCKED, "g8"),
            I_SHD: (CLOSE_SHORT_RETX, "g10"),
        },
        "g6": {
            I_CH: (CLOSE_INITIAL, "g4"),
            I_IHD: (CLOSE_INITIAL, "g4"),
            I_HC: (FIN_GOOGLE, "g7"),
            I_HHD: (CLOSE_HANDSHAKE, "g4"),
            I_MD: (NIL, "g6"),
            I_ST: (NIL, "g6"),
            I_SHD: (NIL, "g6"),
        },
        "g7": {
            I_CH: (NIL, "g7"),
            I_IHD: (NIL, "g7"),
            I_HC: (FIN_GOOGLE, "g7"),
            I_HHD: (CLOSE_HANDSHAKE, "g4"),
            I_MD: (FLUSH, "g2"),
            I_ST: (ACK_ONLY, "g5"),
            I_SHD: (CLOSE_SHORT_RETX, "g10"),
        },
        "g8": {
            I_CH: (NIL, "g8"),
            I_IHD: (NIL, "g8"),
            I_HC: (NIL, "g8"),
            I_HHD: (CLOSE_HANDSHAKE, "g4"),
            I_MD: (FLUSH, "g9"),
            I_ST: (BLOCKED, "g8"),
            I_SHD: (CLOSE_SHORT_RETX, "g10"),
        },
        "g9": {
            I_CH: (NIL, "g9"),
            I_IHD: (NIL, "g9"),
            I_HC: (NIL, "g9"),
            I_HHD: (CLOSE_HANDSHAKE, "g4"),
            I_MD: (ACK_ONLY, "g9"),
            I_ST: (ACK_ONLY, "g5"),
            I_SHD: (CLOSE_SHORT_RETX, "g10"),
        },
        "g10": {
            I_CH: (NIL, "g10"),
            I_IHD: (NIL, "g10"),
            I_HC: (NIL, "g10"),
            I_HHD: (NIL, "g10"),
            I_MD: (NIL, "g10"),
            I_ST: (NIL, "g10"),
            I_SHD: (CLOSE_SHORT_RETX, "g10"),
        },
        "g11": {
            I_CH: (NIL, "g11"),
            I_IHD: (NIL, "g11"),
            I_HC: (CLOSE_HANDSHAKE, "g4"),
            I_HHD: (CLOSE_HANDSHAKE, "g4"),
            I_MD: (NIL, "g11"),
            I_ST: (NIL, "g11"),
            I_SHD: (NIL, "g11"),
        },
    }
    return BehaviorTable(
        name="google", initial_state="g0", rows=rows, pn_reset_abort_state="g4"
    )


# ---------------------------------------------------------------------------
# Quiche-like implementation: 8 states, 56 transitions
# ---------------------------------------------------------------------------

def quiche_table() -> BehaviorTable:
    """Behaviour core of the Quiche-like server.

    States: q0 idle; q1 flight sent; q2 connected (handshake keys still
    held, so handshake-space violations draw a 1-RTT close); q3 closed
    (silent); q4 connected after a flow-control update (handshake keys
    dropped: late handshake packets are ignored); q5 streaming (echoes);
    q6 early 1-RTT data during handshake; q7 connected with buffered early
    data (echoes immediately).
    """
    rows = {
        "q0": {
            I_CH: (FLIGHT_QUICHE, "q1"),
            I_IHD: (NIL, "q0"),
            I_HC: (NIL, "q0"),
            I_HHD: (NIL, "q0"),
            I_MD: (NIL, "q0"),
            I_ST: (NIL, "q0"),
            I_SHD: (NIL, "q0"),
        },
        "q1": {
            I_CH: (CLOSE_Q_HANDSHAKE, "q3"),
            I_IHD: (CLOSE_Q_HANDSHAKE, "q3"),
            I_HC: (FIN_QUICHE, "q2"),
            I_HHD: (CLOSE_Q_HANDSHAKE, "q3"),
            I_MD: (NIL, "q1"),
            I_ST: (NIL, "q6"),
            I_SHD: (NIL, "q1"),
        },
        "q2": {
            I_CH: (NIL, "q2"),
            I_IHD: (NIL, "q2"),
            I_HC: (CLOSE_Q_SHORT, "q3"),
            I_HHD: (CLOSE_Q_SHORT, "q3"),
            I_MD: (ACK_ONLY, "q4"),
            I_ST: (ACK_ONLY, "q5"),
            I_SHD: (CLOSE_Q_SHORT, "q3"),
        },
        "q3": {
            I_CH: (NIL, "q3"),
            I_IHD: (NIL, "q3"),
            I_HC: (NIL, "q3"),
            I_HHD: (NIL, "q3"),
            I_MD: (NIL, "q3"),
            I_ST: (NIL, "q3"),
            I_SHD: (NIL, "q3"),
        },
        "q4": {
            I_CH: (NIL, "q4"),
            I_IHD: (NIL, "q4"),
            I_HC: (NIL, "q4"),
            I_HHD: (NIL, "q4"),
            I_MD: (ACK_ONLY, "q4"),
            I_ST: (ACK_ONLY, "q5"),
            I_SHD: (CLOSE_Q_SHORT, "q3"),
        },
        "q5": {
            I_CH: (NIL, "q5"),
            I_IHD: (NIL, "q5"),
            I_HC: (NIL, "q5"),
            I_HHD: (NIL, "q5"),
            I_MD: (ACK_ONLY, "q4"),
            I_ST: (ECHO, "q5"),
            I_SHD: (CLOSE_Q_SHORT, "q3"),
        },
        "q6": {
            I_CH: (CLOSE_Q_HANDSHAKE, "q3"),
            I_IHD: (CLOSE_Q_HANDSHAKE, "q3"),
            I_HC: (FIN_QUICHE, "q7"),
            I_HHD: (CLOSE_Q_HANDSHAKE, "q3"),
            I_MD: (NIL, "q6"),
            I_ST: (NIL, "q6"),
            I_SHD: (NIL, "q6"),
        },
        "q7": {
            I_CH: (NIL, "q7"),
            I_IHD: (NIL, "q7"),
            I_HC: (CLOSE_Q_SHORT, "q3"),
            I_HHD: (CLOSE_Q_SHORT, "q3"),
            I_MD: (ACK_ONLY, "q4"),
            I_ST: (ECHO, "q5"),
            I_SHD: (CLOSE_Q_SHORT, "q3"),
        },
    }
    return BehaviorTable(name="quiche", initial_state="q0", rows=rows)


# ---------------------------------------------------------------------------
# mvfst-like implementation: Quiche-shaped, but nondeterministic after close
# ---------------------------------------------------------------------------

def mvfst_table() -> BehaviorTable:
    """Behaviour core of the mvfst-like server (Issue 2).

    Structurally similar to Quiche, but every closed state is *flaky*: the
    server answers subsequent packets with a stateless RESET only with
    probability ~0.82 and stays silent otherwise, with no back-off -- the
    DoS-amplifying bug of section 6.2.4.  Deterministic learning therefore
    fails on this implementation, exactly as the paper reports.
    """
    base = quiche_table()
    rows = {state: dict(row) for state, row in base.rows.items()}
    return BehaviorTable(
        name="mvfst",
        initial_state=base.initial_state,
        rows=rows,
        flaky_states=frozenset({"q3"}),
    )


@dataclass
class BehaviorCore:
    """A mutable cursor over a behaviour table (one per connection)."""

    table: BehaviorTable
    state: str = field(default="")

    def __post_init__(self) -> None:
        if not self.state:
            self.state = self.table.initial_state

    def react(self, key: InputKey) -> OutputSpec:
        output, self.state = self.table.react(self.state, key)
        return output

    def abort_for_pn_reset(self) -> bool:
        """Move to the abort state if this implementation is strict about
        post-RETRY packet-number resets (Issue 1).  Returns True if moved."""
        if self.table.pn_reset_abort_state is None:
            return False
        self.state = self.table.pn_reset_abort_state
        return True

    @property
    def is_flaky(self) -> bool:
        return self.state in self.table.flaky_states

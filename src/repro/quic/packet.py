"""QUIC packet headers: encoding and decoding (RFC 9000 section 17).

Long headers (Initial, Handshake, 0-RTT, Retry) carry version and both
connection ids; short headers (1-RTT) carry only the destination id.
Version Negotiation and Stateless Reset are special datagram formats.

Packet numbers are carried as fixed 4-byte fields (a legal choice in QUIC;
full packet-number encoding/decoding truncation is an authenticity detail
irrelevant to the learning pipeline, and a constant length keeps decode
unambiguous for every implementation in the simulation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .crypto import TAG_LENGTH, retry_integrity_tag
from .varint import Buffer, VarintError

QUIC_VERSION = 0x00000001
HEADER_FORM_LONG = 0x80
FIXED_BIT = 0x40
PN_LENGTH = 4


class PacketType(enum.Enum):
    INITIAL = "INITIAL"
    ZERO_RTT = "ZERO_RTT"
    HANDSHAKE = "HANDSHAKE"
    RETRY = "RETRY"
    SHORT = "SHORT"
    VERSION_NEGOTIATION = "VERSION_NEGOTIATION"
    STATELESS_RESET = "STATELESS_RESET"


_LONG_TYPE_BITS = {
    PacketType.INITIAL: 0x00,
    PacketType.ZERO_RTT: 0x01,
    PacketType.HANDSHAKE: 0x02,
    PacketType.RETRY: 0x03,
}
_LONG_TYPE_FROM_BITS = {bits: ptype for ptype, bits in _LONG_TYPE_BITS.items()}


class PacketError(ValueError):
    """Raised on malformed packet headers."""


@dataclass(frozen=True)
class PacketHeader:
    """A parsed (or to-be-encoded) packet header plus protected payload.

    For RETRY packets ``payload`` is the retry token and ``packet_number``
    is meaningless; for STATELESS_RESET ``payload`` is the reset token.
    """

    packet_type: PacketType
    destination_cid: bytes
    source_cid: bytes = b""
    packet_number: int = 0
    token: bytes = b""
    payload: bytes = b""
    version: int = QUIC_VERSION

    def describe(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.packet_type.value}(pn={self.packet_number}, "
            f"dcid={self.destination_cid.hex()}, payload={len(self.payload)}B)"
        )


def encode_packet(header: PacketHeader) -> bytes:
    """Serialize a packet (payload is assumed already sealed)."""
    ptype = header.packet_type
    if ptype is PacketType.SHORT:
        buf = Buffer()
        buf.push_uint8(FIXED_BIT | (PN_LENGTH - 1))
        buf.push_bytes(header.destination_cid)
        buf.push_uint(header.packet_number, PN_LENGTH)
        buf.push_bytes(header.payload)
        return buf.getvalue()
    if ptype is PacketType.STATELESS_RESET:
        # Unpredictable bits followed by the 16-byte reset token.
        buf = Buffer()
        buf.push_uint8(FIXED_BIT | 0x20)
        buf.push_bytes(b"\xaa" * 20)
        buf.push_bytes(header.payload[-TAG_LENGTH:])
        return buf.getvalue()
    if ptype is PacketType.VERSION_NEGOTIATION:
        buf = Buffer()
        buf.push_uint8(HEADER_FORM_LONG)
        buf.push_uint(0, 4)
        buf.push_uint8(len(header.destination_cid))
        buf.push_bytes(header.destination_cid)
        buf.push_uint8(len(header.source_cid))
        buf.push_bytes(header.source_cid)
        buf.push_bytes(header.payload)  # list of supported versions
        return buf.getvalue()

    first = HEADER_FORM_LONG | FIXED_BIT | (_LONG_TYPE_BITS[ptype] << 4)
    buf = Buffer()
    if ptype is PacketType.RETRY:
        buf.push_uint8(first)
        buf.push_uint(header.version, 4)
        buf.push_uint8(len(header.destination_cid))
        buf.push_bytes(header.destination_cid)
        buf.push_uint8(len(header.source_cid))
        buf.push_bytes(header.source_cid)
        buf.push_bytes(header.token)
        pseudo = buf.getvalue()
        tag = retry_integrity_tag(header.destination_cid, pseudo)
        return pseudo + tag

    buf.push_uint8(first | (PN_LENGTH - 1))
    buf.push_uint(header.version, 4)
    buf.push_uint8(len(header.destination_cid))
    buf.push_bytes(header.destination_cid)
    buf.push_uint8(len(header.source_cid))
    buf.push_bytes(header.source_cid)
    if ptype is PacketType.INITIAL:
        buf.push_varint_bytes(header.token)
    buf.push_varint(PN_LENGTH + len(header.payload))
    buf.push_uint(header.packet_number, PN_LENGTH)
    buf.push_bytes(header.payload)
    return buf.getvalue()


def decode_packet(data: bytes, short_cid_length: int = 8) -> PacketHeader:
    """Parse one packet from ``data`` (which must contain exactly one).

    ``short_cid_length`` tells the parser how long the destination id of a
    short-header packet is (QUIC short headers do not self-describe this).
    """
    if not data:
        raise PacketError("empty datagram")
    buf = Buffer(data)
    first = buf.pull_uint8()
    if not first & HEADER_FORM_LONG:
        if first & 0x20 and not first & 0x80:
            # Heuristic stateless-reset detection: our simulation marks
            # reset datagrams with bit 0x20 and 20 bytes of filler.
            if len(data) >= 21 + TAG_LENGTH:
                return PacketHeader(
                    packet_type=PacketType.STATELESS_RESET,
                    destination_cid=b"",
                    payload=data[-TAG_LENGTH:],
                )
        dcid = buf.pull_bytes(short_cid_length)
        packet_number = buf.pull_uint(PN_LENGTH)
        return PacketHeader(
            packet_type=PacketType.SHORT,
            destination_cid=dcid,
            packet_number=packet_number,
            payload=buf.pull_bytes(buf.remaining),
        )

    version = buf.pull_uint(4)
    dcid = buf.pull_bytes(buf.pull_uint8())
    scid = buf.pull_bytes(buf.pull_uint8())
    if version == 0:
        return PacketHeader(
            packet_type=PacketType.VERSION_NEGOTIATION,
            destination_cid=dcid,
            source_cid=scid,
            version=0,
            payload=buf.pull_bytes(buf.remaining),
        )
    ptype = _LONG_TYPE_FROM_BITS[(first >> 4) & 0x03]
    if ptype is PacketType.RETRY:
        rest = buf.pull_bytes(buf.remaining)
        if len(rest) < TAG_LENGTH:
            raise PacketError("retry packet too short for integrity tag")
        token, tag = rest[:-TAG_LENGTH], rest[-TAG_LENGTH:]
        return PacketHeader(
            packet_type=PacketType.RETRY,
            destination_cid=dcid,
            source_cid=scid,
            token=token,
            payload=tag,
            version=version,
        )
    token = b""
    if ptype is PacketType.INITIAL:
        token = buf.pull_varint_bytes()
    try:
        length = buf.pull_varint()
    except VarintError as exc:
        raise PacketError(f"bad length field: {exc}") from exc
    if length < PN_LENGTH or length > buf.remaining:
        raise PacketError(f"bad packet length: {length}")
    packet_number = buf.pull_uint(PN_LENGTH)
    payload = buf.pull_bytes(length - PN_LENGTH)
    return PacketHeader(
        packet_type=ptype,
        destination_cid=dcid,
        source_cid=scid,
        packet_number=packet_number,
        token=token,
        payload=payload,
        version=version,
    )


def header_bytes_for_aead(header: PacketHeader) -> bytes:
    """The associated data bound into packet protection.

    Binding type, connection ids and packet number is enough to detect
    header tampering in the simulation.
    """
    return b"|".join(
        [
            header.packet_type.value.encode(),
            header.destination_cid,
            header.source_cid,
            header.packet_number.to_bytes(8, "big"),
        ]
    )

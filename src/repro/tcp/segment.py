"""TCP segment encoding and decoding (the TCP *native* alphabet).

Implements the RFC 793 segment layout -- 20-byte header plus payload -- with
the standard ones'-complement checksum over an IPv4 pseudo-header.  This is
the binary representation the simulated wire carries; the concrete alphabet
(:class:`TCPSegment`) is its structured form, mirroring the JSON object of
paper example 3.2.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Iterable

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

_FLAG_BITS = {"FIN": FIN, "SYN": SYN, "RST": RST, "PSH": PSH, "ACK": ACK, "URG": URG}
_HEADER = struct.Struct("!HHIIBBHHH")
HEADER_LEN = _HEADER.size  # 20 bytes, no options

SEQ_MODULUS = 2**32


class SegmentError(ValueError):
    """Raised on truncated segments or checksum failures."""


def flags_to_bits(flags: Iterable[str]) -> int:
    """Convert flag names (``["SYN", "ACK"]``) to the header bitmask."""
    bits = 0
    for name in flags:
        try:
            bits |= _FLAG_BITS[name.upper()]
        except KeyError:
            raise SegmentError(f"unknown TCP flag: {name!r}") from None
    return bits


def bits_to_flags(bits: int) -> frozenset[str]:
    """Convert a header bitmask back to a set of flag names."""
    return frozenset(name for name, bit in _FLAG_BITS.items() if bits & bit)


def _checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement sum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _pseudo_header(src_ip: bytes, dst_ip: bytes, tcp_length: int) -> bytes:
    return src_ip + dst_ip + struct.pack("!BBH", 0, 6, tcp_length)


def _ip_bytes(host: str) -> bytes:
    """4-byte IPv4 address; non-dotted simulation hostnames are hashed."""
    parts = host.split(".")
    if len(parts) == 4 and all(p.isdigit() and int(p) < 256 for p in parts):
        return bytes(int(p) for p in parts)
    digest = sum(ord(c) * (i + 1) for i, c in enumerate(host)) & 0xFFFFFFFF
    return digest.to_bytes(4, "big")


@dataclass(frozen=True)
class TCPSegment:
    """A structured TCP segment -- the concrete alphabet for TCP.

    Field names follow paper example 3.2 (``seqNumber``, ``ackNumber``, ...);
    ``flags`` is a frozenset of flag names.
    """

    source_port: int
    destination_port: int
    seq_number: int
    ack_number: int
    flags: frozenset[str] = field(default_factory=frozenset)
    window: int = 8192
    urgent_pointer: int = 0
    payload: bytes = b""

    def __post_init__(self) -> None:
        for name, value in (
            ("source_port", self.source_port),
            ("destination_port", self.destination_port),
        ):
            if not 0 <= value <= 0xFFFF:
                raise SegmentError(f"{name} out of range: {value}")
        for name, value in (
            ("seq_number", self.seq_number),
            ("ack_number", self.ack_number),
        ):
            if not 0 <= value < SEQ_MODULUS:
                raise SegmentError(f"{name} out of range: {value}")

    def has_flags(self, *names: str) -> bool:
        """True if *exactly* this flag set is present."""
        return self.flags == frozenset(n.upper() for n in names)

    def flag_string(self) -> str:
        """Canonical ``+``-joined flag rendering (ACK first, like the paper)."""
        order = ("ACK", "SYN", "FIN", "RST", "PSH", "URG")
        present = [f for f in order if f in self.flags]
        return "+".join(present) if present else "NIL"

    def with_checksum_fields(self, **changes: object) -> "TCPSegment":
        """Functional update helper."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self, src_host: str = "0.0.0.0", dst_host: str = "0.0.0.0") -> bytes:
        """Serialize with a valid checksum over the IPv4 pseudo-header."""
        data_offset_words = HEADER_LEN // 4
        offset_byte = data_offset_words << 4
        header = _HEADER.pack(
            self.source_port,
            self.destination_port,
            self.seq_number,
            self.ack_number,
            offset_byte,
            flags_to_bits(self.flags),
            self.window,
            0,  # checksum placeholder
            self.urgent_pointer,
        )
        segment = header + self.payload
        pseudo = _pseudo_header(
            _ip_bytes(src_host), _ip_bytes(dst_host), len(segment)
        )
        checksum = _checksum(pseudo + segment)
        return segment[:16] + struct.pack("!H", checksum) + segment[18:]

    @classmethod
    def decode(
        cls,
        data: bytes,
        src_host: str = "0.0.0.0",
        dst_host: str = "0.0.0.0",
        verify_checksum: bool = True,
    ) -> "TCPSegment":
        """Parse bytes back into a segment, optionally verifying checksum."""
        if len(data) < HEADER_LEN:
            raise SegmentError(f"segment truncated: {len(data)} bytes")
        (
            source_port,
            destination_port,
            seq_number,
            ack_number,
            offset_byte,
            flag_bits,
            window,
            checksum,
            urgent_pointer,
        ) = _HEADER.unpack(data[:HEADER_LEN])
        data_offset = (offset_byte >> 4) * 4
        if data_offset < HEADER_LEN or data_offset > len(data):
            raise SegmentError(f"bad data offset: {data_offset}")
        if verify_checksum:
            pseudo = _pseudo_header(_ip_bytes(src_host), _ip_bytes(dst_host), len(data))
            zeroed = data[:16] + b"\x00\x00" + data[18:]
            expected = _checksum(pseudo + zeroed)
            if expected != checksum:
                raise SegmentError(
                    f"checksum mismatch: header={checksum:#06x} "
                    f"computed={expected:#06x}"
                )
        return cls(
            source_port=source_port,
            destination_port=destination_port,
            seq_number=seq_number,
            ack_number=ack_number,
            flags=bits_to_flags(flag_bits),
            window=window,
            urgent_pointer=urgent_pointer,
            payload=data[data_offset:],
        )

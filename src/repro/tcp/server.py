"""A Linux-like TCP server implementation (the TCP System Under Learning).

The behaviour reproduces the 6-state model Prognosis learned from the
Ubuntu 20.04 stack (paper section 6.1 and appendix A.1):

* ``LISTEN`` -- stray ACK-bearing segments are answered with RST; a SYN
  starts a connection with SYN+ACK.
* ``SYN_RCVD`` -- a valid ACK (or data) completes the handshake; a fresh SYN
  or SYN+ACK aborts the connection with (ACK+)RST; a FIN+ACK simultaneously
  completes the handshake and closes, answered ACK+FIN.
* ``ESTABLISHED`` -- data is acknowledged; an in-window SYN triggers a
  *challenge ACK* which is rate-limited: the second consecutive SYN is
  silently dropped (this rate limiter is what gives the learned model its
  sixth state, exactly as in the appendix figure).
* ``LAST_ACK`` -- after answering a FIN, awaiting the final ACK.
* ``DEAD`` -- the single-connection harness has torn the socket down;
  everything is ignored until the SUL is reset.

The server is a *real* packet processor: it decodes wire bytes (checksum
included), tracks sequence/acknowledgement numbers, and emits correctly
numbered responses -- the numbers the synthesizer later recovers (Fig. 3c).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from ..netsim import Datagram, Endpoint, SimulatedNetwork
from .segment import SEQ_MODULUS, SegmentError, TCPSegment


class TCPState(enum.Enum):
    LISTEN = "LISTEN"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    ESTABLISHED_NO_CREDIT = "ESTABLISHED_NO_CREDIT"
    LAST_ACK = "LAST_ACK"
    DEAD = "DEAD"


@dataclass
class TCPServerConfig:
    """Tunable behaviour knobs for the simulated stack."""

    host: str = "server"
    port: int = 44344
    window: int = 65535
    #: When True the challenge-ACK rate limiter is active (Linux default);
    #: disabling it collapses the learned model to 5 states -- an ablation.
    challenge_ack_rate_limit: bool = True


class TCPServer:
    """Single-connection TCP responder bound to a simulated network."""

    def __init__(
        self,
        network: SimulatedNetwork,
        config: TCPServerConfig | None = None,
        seed: int = 7,
    ) -> None:
        self.config = config or TCPServerConfig()
        self._network = network
        self._rng = random.Random(seed)
        self.endpoint: Endpoint = network.bind(self.config.host, self.config.port)
        self.endpoint.handler = self._handle
        self.state = TCPState.LISTEN
        self._iss = 0  # our initial send sequence
        self.snd_nxt = 0  # next sequence number we will send
        self.rcv_nxt = 0  # next sequence number we expect
        self.segments_received = 0
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to LISTEN with a fresh initial sequence number."""
        self.state = TCPState.LISTEN
        self._iss = self._rng.randrange(SEQ_MODULUS)
        self.snd_nxt = self._iss
        self.rcv_nxt = 0

    def close(self) -> None:
        self.endpoint.close()

    # ------------------------------------------------------------------
    # Packet processing
    # ------------------------------------------------------------------
    def _handle(self, datagram: Datagram) -> None:
        try:
            segment = TCPSegment.decode(
                datagram.payload,
                src_host=datagram.source[0],
                dst_host=self.config.host,
            )
        except SegmentError:
            return  # malformed or corrupted segment: silently dropped
        self.segments_received += 1
        for response in self._react(segment):
            self.endpoint.send(
                response.encode(self.config.host, datagram.source[0]),
                datagram.source,
            )

    def _react(self, seg: TCPSegment) -> list[TCPSegment]:
        state = self.state
        if state is TCPState.LISTEN:
            return self._in_listen(seg)
        if state is TCPState.SYN_RCVD:
            return self._in_syn_rcvd(seg)
        if state in (TCPState.ESTABLISHED, TCPState.ESTABLISHED_NO_CREDIT):
            return self._in_established(seg)
        if state is TCPState.LAST_ACK:
            return self._in_last_ack(seg)
        return []  # DEAD: the socket is gone; UDP-like silence

    # -- state handlers -------------------------------------------------
    def _in_listen(self, seg: TCPSegment) -> list[TCPSegment]:
        if "RST" in seg.flags:
            return []  # RSTs to a listener are ignored
        if seg.has_flags("SYN"):
            self.rcv_nxt = (seg.seq_number + 1) % SEQ_MODULUS
            self.state = TCPState.SYN_RCVD
            reply = self._make(("SYN", "ACK"), seq=self._iss, ack=self.rcv_nxt, peer=seg)
            self.snd_nxt = (self._iss + 1) % SEQ_MODULUS
            return [reply]
        # Any other segment to a listening port draws a RST (RFC 793 p.36).
        return [self._rst_for(seg)]

    def _in_syn_rcvd(self, seg: TCPSegment) -> list[TCPSegment]:
        if "RST" in seg.flags:
            self.state = TCPState.DEAD
            return []
        if seg.has_flags("SYN"):
            # A different SYN while synchronizing: abort with ACK+RST.
            self.state = TCPState.DEAD
            return [self._make(("ACK", "RST"), seq=self.snd_nxt, ack=self.rcv_nxt, peer=seg)]
        if seg.has_flags("SYN", "ACK"):
            self.state = TCPState.DEAD
            return [self._rst_for(seg)]
        if seg.has_flags("FIN", "ACK") and self._acks_our_syn(seg):
            # Handshake completes and the peer closes immediately.
            self.rcv_nxt = (seg.seq_number + 1) % SEQ_MODULUS
            self.state = TCPState.LAST_ACK
            reply = self._make(("ACK", "FIN"), seq=self.snd_nxt, ack=self.rcv_nxt, peer=seg)
            self.snd_nxt = (self.snd_nxt + 1) % SEQ_MODULUS
            return [reply]
        if "ACK" in seg.flags and self._acks_our_syn(seg):
            self.state = TCPState.ESTABLISHED
            if seg.payload:
                self.rcv_nxt = (seg.seq_number + len(seg.payload)) % SEQ_MODULUS
                return [self._make(("ACK",), seq=self.snd_nxt, ack=self.rcv_nxt, peer=seg)]
            return []
        return []  # out-of-window ACKs are dropped in this abstraction

    def _in_established(self, seg: TCPSegment) -> list[TCPSegment]:
        rate_limited = self.state is TCPState.ESTABLISHED_NO_CREDIT
        if "RST" in seg.flags:
            self.state = TCPState.DEAD
            return []
        if "SYN" in seg.flags:
            # In-window SYN on a synchronized connection: challenge ACK
            # (RFC 5961), rate-limited like Linux's tcp_challenge_ack_limit.
            if rate_limited and self.config.challenge_ack_rate_limit:
                return []
            if self.config.challenge_ack_rate_limit:
                self.state = TCPState.ESTABLISHED_NO_CREDIT
            return [self._make(("ACK",), seq=self.snd_nxt, ack=self.rcv_nxt, peer=seg)]
        if seg.has_flags("FIN", "ACK"):
            self.rcv_nxt = (seg.seq_number + 1) % SEQ_MODULUS
            self.state = TCPState.LAST_ACK
            reply = self._make(("ACK", "FIN"), seq=self.snd_nxt, ack=self.rcv_nxt, peer=seg)
            self.snd_nxt = (self.snd_nxt + 1) % SEQ_MODULUS
            return [reply]
        if "ACK" in seg.flags and seg.payload:
            self.rcv_nxt = (seg.seq_number + len(seg.payload)) % SEQ_MODULUS
            # Receiving data replenishes the challenge-ACK credit.
            self.state = TCPState.ESTABLISHED
            return [self._make(("ACK",), seq=self.snd_nxt, ack=self.rcv_nxt, peer=seg)]
        if "ACK" in seg.flags:
            return []  # bare ACK: nothing to do
        return []

    def _in_last_ack(self, seg: TCPSegment) -> list[TCPSegment]:
        if "RST" in seg.flags:
            self.state = TCPState.DEAD
            return []
        if "SYN" in seg.flags:
            return [self._make(("ACK",), seq=self.snd_nxt, ack=self.rcv_nxt, peer=seg)]
        if seg.has_flags("FIN", "ACK"):
            return []  # retransmitted FIN: our ACK+FIN is on the wire
        if "ACK" in seg.flags:
            if seg.payload:
                self.state = TCPState.DEAD
                return []
            self.state = TCPState.DEAD
            return []
        return []

    # -- segment builders ----------------------------------------------
    def _acks_our_syn(self, seg: TCPSegment) -> bool:
        return seg.ack_number == (self._iss + 1) % SEQ_MODULUS

    def _make(
        self, flags: tuple[str, ...], seq: int, ack: int, peer: TCPSegment
    ) -> TCPSegment:
        return TCPSegment(
            source_port=self.config.port,
            destination_port=peer.source_port,
            seq_number=seq,
            ack_number=ack,
            flags=frozenset(flags),
            window=self.config.window,
        )

    def _rst_for(self, seg: TCPSegment) -> TCPSegment:
        """A RST as specified for segments arriving at a closed/listening
        port: seq taken from the offender's ACK field."""
        if "ACK" in seg.flags:
            seq = seg.ack_number
            flags: tuple[str, ...] = ("RST",)
            ack = 0
        else:
            seq = 0
            flags = ("RST", "ACK")
            ack = (seg.seq_number + len(seg.payload)) % SEQ_MODULUS
        return TCPSegment(
            source_port=self.config.port,
            destination_port=seg.source_port,
            seq_number=seq,
            ack_number=ack,
            flags=frozenset(flags),
            window=0,
        )

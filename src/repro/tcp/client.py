"""A reference TCP client used as the concretization oracle.

This is the TCP counterpart of the instrumented reference implementation in
paper section 3.2: it owns the protocol logic needed to turn an abstract
symbol like ``ACK(?,?,0)`` into a *valid* concrete segment for the current
connection state (correct ports, sequence and acknowledgement numbers), and
it keeps that state up to date by processing every response from the server.

The TCP adapter instruments this client; the client itself knows nothing
about learning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim import Address, SimulatedNetwork
from .segment import SEQ_MODULUS, SegmentError, TCPSegment


@dataclass
class ClientConfig:
    host: str = "client"
    port: int = 40965
    window: int = 8192
    payload_byte: bytes = b"x"


class TCPClient:
    """Protocol-state-tracking client for building concrete segments."""

    def __init__(
        self,
        network: SimulatedNetwork,
        server_address: Address,
        config: ClientConfig | None = None,
        seed: int = 11,
    ) -> None:
        self.config = config or ClientConfig()
        self._network = network
        self.server_address = server_address
        self._rng = random.Random(seed)
        self.endpoint = network.bind(self.config.host, self.config.port)
        self.iss = 0
        self.snd_nxt = 0
        self.rcv_nxt = 0
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle (adapter property 3: full reset between queries)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Start a fresh logical connection with a new ISS."""
        self.iss = self._rng.randrange(SEQ_MODULUS)
        self.snd_nxt = self.iss
        self.rcv_nxt = 0
        self.endpoint.receive_all()  # drop any stale datagrams

    def close(self) -> None:
        self.endpoint.close()

    # ------------------------------------------------------------------
    # Concretization: abstract flag set -> valid concrete segment
    # ------------------------------------------------------------------
    def build_segment(self, flags: tuple[str, ...], payload_len: int) -> TCPSegment:
        """Produce a concrete segment matching the abstract request.

        The reference implementation's connection state supplies every field
        the abstraction left as ``?``.
        """
        flag_set = frozenset(flags)
        payload = self.config.payload_byte * payload_len
        if flag_set == {"SYN"}:
            seq, ack = self.iss, 0
        elif flag_set == {"SYN", "ACK"}:
            seq, ack = self.iss, self.rcv_nxt
        elif flag_set == {"RST"}:
            seq, ack = self.snd_nxt, 0
        else:  # ACK-bearing segments: ACK, ACK+PSH, FIN+ACK, ACK+RST
            seq, ack = self.snd_nxt, self.rcv_nxt
        return TCPSegment(
            source_port=self.config.port,
            destination_port=self.server_address[1],
            seq_number=seq,
            ack_number=ack,
            flags=flag_set,
            window=self.config.window,
            payload=payload,
        )

    def _note_sent(self, segment: TCPSegment) -> None:
        """Advance snd_nxt for sequence-consuming segments we emitted."""
        consumed = len(segment.payload)
        if "SYN" in segment.flags or "FIN" in segment.flags:
            consumed += 1
        self.snd_nxt = (segment.seq_number + consumed) % SEQ_MODULUS

    def _note_received(self, segment: TCPSegment) -> None:
        """Track the server's sequence space from its responses."""
        if "RST" in segment.flags:
            return
        consumed = len(segment.payload)
        if "SYN" in segment.flags or "FIN" in segment.flags:
            consumed += 1
        if consumed:
            self.rcv_nxt = (segment.seq_number + consumed) % SEQ_MODULUS

    # ------------------------------------------------------------------
    # Exchange
    # ------------------------------------------------------------------
    def exchange(
        self, flags: tuple[str, ...], payload_len: int
    ) -> tuple[TCPSegment, list[TCPSegment]]:
        """Send one concrete segment and collect the server's responses.

        Runs the simulated network to quiescence, so every response caused by
        this input (and nothing else -- adapter property 1) is returned.
        """
        segment = self.build_segment(flags, payload_len)
        self.endpoint.send(
            segment.encode(self.config.host, self.server_address[0]),
            self.server_address,
        )
        self._note_sent(segment)
        self._network.run()
        responses: list[TCPSegment] = []
        for datagram in self.endpoint.receive_all():
            try:
                response = TCPSegment.decode(
                    datagram.payload,
                    src_host=datagram.source[0],
                    dst_host=self.config.host,
                )
            except SegmentError:
                continue
            self._note_received(response)
            responses.append(response)
        return segment, responses

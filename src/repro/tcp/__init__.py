"""TCP substrate: segment codec, Linux-like server, reference client."""

from .client import ClientConfig, TCPClient
from .segment import (
    ACK,
    FIN,
    HEADER_LEN,
    PSH,
    RST,
    SegmentError,
    SEQ_MODULUS,
    SYN,
    TCPSegment,
    URG,
    bits_to_flags,
    flags_to_bits,
)
from .server import TCPServer, TCPServerConfig, TCPState

__all__ = [
    "ACK",
    "ClientConfig",
    "FIN",
    "HEADER_LEN",
    "PSH",
    "RST",
    "SEQ_MODULUS",
    "SYN",
    "SegmentError",
    "TCPClient",
    "TCPSegment",
    "TCPServer",
    "TCPServerConfig",
    "TCPState",
    "URG",
    "bits_to_flags",
    "flags_to_bits",
]

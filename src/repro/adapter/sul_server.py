"""Serve a registry SUL target over the length-prefixed socket protocol.

Run as a module (``python -m repro.adapter.sul_server --target tcp``),
this turns any in-process adapter into an *external implementation*: a
separate process reachable only through the wire protocol documented in
:mod:`repro.adapter.remote`.  It is the reference peer for
:class:`~repro.adapter.remote.SocketSUL` /
:class:`~repro.adapter.remote.SubprocessSUL` and the fault-injection
rig the boundary tests drive.

On startup the server binds (``--port 0`` picks a free port), prints
``PROGNOSIS-SUL-SERVER port=N`` on stdout and serves each accepted
connection on its own thread, so a client whose previous handler is
wedged can reconnect and keep working.  A watcher thread exits the
process as soon as stdin reaches EOF: when the parent that spawned us
dies, we do too, never leaking an orphan.

Fault flags (all count the steps served by one connection):

* ``--step-delay S`` -- sleep S seconds per step (an I/O-bound SUL for
  the executor benchmarks).
* ``--hang-after-steps N`` -- after N steps, stop answering (client
  timeout path).
* ``--crash-after-steps N`` -- after N steps, die mid-word (client
  disconnect/respawn path).
* ``--garbage-after-steps N`` -- after N steps, answer one step with a
  well-framed payload that is not JSON (client protocol-error path).
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import threading
import time

from ..core.alphabet import deserialize_symbol, serialize_symbol
from ..registry import SUL_REGISTRY, load_builtins, supported_kwargs
from .remote import (
    SERVER_BANNER,
    RemoteDisconnectError,
    RemoteProtocolError,
    recv_frame,
    send_frame,
)
from .sul import SUL


class FaultPlan:
    """When (if ever) this server misbehaves, per connection."""

    def __init__(
        self,
        step_delay: float = 0.0,
        hang_after_steps: int | None = None,
        crash_after_steps: int | None = None,
        garbage_after_steps: int | None = None,
    ) -> None:
        self.step_delay = step_delay
        self.hang_after_steps = hang_after_steps
        self.crash_after_steps = crash_after_steps
        self.garbage_after_steps = garbage_after_steps


def _serve_connection(conn: socket.socket, sul: SUL, faults: FaultPlan) -> None:
    steps_served = 0
    with conn:
        while True:
            try:
                request = recv_frame(conn)
            except RemoteDisconnectError:
                return
            except RemoteProtocolError as exc:
                send_frame(conn, {"ok": False, "error": str(exc)})
                return
            op = request.get("op")
            if op == "hello":
                send_frame(
                    conn,
                    {
                        "ok": True,
                        "name": sul.name,
                        "alphabet": [
                            serialize_symbol(s)
                            for s in sul.input_alphabet.symbols
                        ],
                    },
                )
            elif op == "reset":
                sul.reset()
                send_frame(conn, {"ok": True})
            elif op == "step":
                steps_served += 1
                if (
                    faults.crash_after_steps is not None
                    and steps_served > faults.crash_after_steps
                ):
                    os._exit(13)  # die mid-word, reply never sent
                if (
                    faults.hang_after_steps is not None
                    and steps_served > faults.hang_after_steps
                ):
                    time.sleep(3600)  # wedge this handler; client times out
                    return
                if faults.step_delay:
                    time.sleep(faults.step_delay)
                try:
                    symbol = deserialize_symbol(request.get("symbol"))
                    output, in_params, out_params = sul._step_impl(symbol)
                except Exception as exc:  # surface adapter errors as replies
                    send_frame(
                        conn,
                        {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                    )
                    continue
                if (
                    faults.garbage_after_steps is not None
                    and steps_served > faults.garbage_after_steps
                ):
                    # Well-framed, newline-terminated -- and not JSON.
                    body = b"\xfe\xfd!! not a protocol frame !!\n"
                    conn.sendall(len(body).to_bytes(4, "big") + body)
                    continue
                send_frame(
                    conn,
                    {
                        "ok": True,
                        "output": serialize_symbol(output),
                        "in_params": dict(in_params),
                        "out_params": dict(out_params),
                    },
                )
            elif op == "bye":
                send_frame(conn, {"ok": True})
                return
            else:
                send_frame(conn, {"ok": False, "error": f"unknown op {op!r}"})


def _watch_parent() -> None:
    """Exit when stdin hits EOF -- i.e. the spawning parent is gone."""
    try:
        sys.stdin.buffer.read()
    except Exception:  # pragma: no cover - any stdin failure means "gone"
        pass
    os._exit(0)


def serve(
    target: str,
    params: dict,
    host: str = "127.0.0.1",
    port: int = 0,
    faults: FaultPlan | None = None,
) -> None:
    """Build the target SUL and serve it until the parent disappears."""
    load_builtins()
    factory = SUL_REGISTRY.get(target)
    sul = factory(**supported_kwargs(factory, params))
    faults = faults or FaultPlan()

    listener = socket.create_server((host, port))
    actual_port = listener.getsockname()[1]
    print(f"{SERVER_BANNER} port={actual_port}", flush=True)
    threading.Thread(target=_watch_parent, daemon=True).start()

    while True:
        conn, _ = listener.accept()
        threading.Thread(
            target=_serve_connection, args=(conn, sul, faults), daemon=True
        ).start()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Serve a registry SUL target over the socket protocol."
    )
    parser.add_argument("--target", default="tcp", help="SUL registry key")
    parser.add_argument(
        "--params", default="{}", help="JSON object of factory params"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = pick free")
    parser.add_argument("--step-delay", type=float, default=0.0)
    parser.add_argument("--hang-after-steps", type=int, default=None)
    parser.add_argument("--crash-after-steps", type=int, default=None)
    parser.add_argument("--garbage-after-steps", type=int, default=None)
    args = parser.parse_args(argv)
    serve(
        args.target,
        json.loads(args.params),
        host=args.host,
        port=args.port,
        faults=FaultPlan(
            step_delay=args.step_delay,
            hang_after_steps=args.hang_after_steps,
            crash_after_steps=args.crash_after_steps,
            garbage_after_steps=args.garbage_after_steps,
        ),
    )


if __name__ == "__main__":
    main()

"""Pluggable executor backends for order-preserving batch fan-out.

Every parallel seam in the framework -- the SUL pool sharding membership
-query batches, campaigns running many specs, the property checker fanning
over models -- reduces to the same operation: *apply a function to every
item of a batch, return results in submission order*.  This module owns
that operation behind one interface, :class:`ExecutorBackend`, with three
implementations:

* ``serial``  -- a plain loop; no threads, no processes.  The reference
  semantics every other backend must reproduce.
* ``thread``  -- a bounded :class:`~concurrent.futures.ThreadPoolExecutor`.
  Scales for work that releases the GIL (socket round-trips, subprocess
  turnarounds); pure-Python work gains nothing.
* ``process`` -- persistent ``multiprocessing`` worker processes, each
  initialized once by a picklable ``initializer`` (per-worker SUL
  construction happens *in the child*).  Scales CPU-bound work past the
  GIL and is the only backend with real fault isolation: a per-task
  timeout, dead-worker detection, automatic respawn and a bounded retry.

All backends share the failure contract :class:`ExecutorError`: instead of
raising on the first failing item and silently discarding the rest (the
old ``ThreadPoolExecutor.map`` behaviour), every item runs and the
per-item exceptions are aggregated into one error that names exactly which
items failed.

Task pinning is deterministic everywhere: item ``i`` of a batch always
runs on worker ``i mod n`` (``n`` = active workers for the batch), so a
run's work distribution -- and, for stateful-across-reset SULs, its
observable behaviour -- never depends on scheduler timing.
"""

from __future__ import annotations

import multiprocessing
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

#: The registered executor backend kinds, in cost order.
EXECUTOR_KINDS = ("serial", "thread", "process")


class ExecutorError(RuntimeError):
    """One or more items of a batch failed.

    ``failures`` holds ``(index, item_repr, message)`` triples for every
    failing item, so callers (and test logs) see exactly which words or
    shards died instead of only the first exception.  The first underlying
    exception object, when available in-process, is chained as
    ``__cause__``.
    """

    def __init__(
        self, kind: str, total: int, failures: list[tuple[int, str, str]]
    ) -> None:
        self.kind = kind
        self.total = total
        self.failures = failures
        shown = "; ".join(
            f"[{index}] {message} (item={item})"
            for index, item, message in failures[:5]
        )
        if len(failures) > 5:
            shown += f"; ... and {len(failures) - 5} more"
        super().__init__(
            f"{len(failures)}/{total} items failed on the {kind} executor: "
            f"{shown}"
        )


def _item_repr(item: object, limit: int = 60) -> str:
    text = repr(item)
    return text if len(text) <= limit else text[: limit - 3] + "..."


class ExecutorBackend(ABC):
    """Order-preserving fan-out of callables over a bounded worker set.

    ``map(fn, items)`` returns ``[fn(item) for item in items]`` -- same
    values, same order -- however the backend schedules the work.  A
    backend owns its worker lifecycle; call :meth:`close` (or use the
    instance as a context manager) to release threads/processes.
    """

    kind: str = "serial"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers

    @abstractmethod
    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item; results in submission order.

        Raises :class:`ExecutorError` aggregating *all* per-item failures.
        """

    @abstractmethod
    def close(self) -> None:
        """Release worker threads/processes.  Idempotent."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def _collect(
    kind: str, outcomes: list[tuple[object, BaseException | None]], items: Sequence
) -> list:
    """Split (result, error) pairs into results or one aggregated error."""
    failures = [
        (index, _item_repr(items[index]), f"{type(error).__name__}: {error}")
        for index, (_, error) in enumerate(outcomes)
        if error is not None
    ]
    if failures:
        first = next(error for _, error in outcomes if error is not None)
        raise ExecutorError(kind, len(items), failures) from first
    return [result for result, _ in outcomes]


class SerialExecutor(ExecutorBackend):
    """A plain loop: the reference backend and the ``workers == 1`` path.

    Even serially, every item runs before failures surface, so the error
    report is identical to the parallel backends'.
    """

    kind = "serial"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)

    def map(self, fn: Callable, items: Sequence) -> list:
        outcomes: list[tuple[object, BaseException | None]] = []
        for item in items:
            try:
                outcomes.append((fn(item), None))
            except Exception as error:
                outcomes.append((None, error))
        return _collect(self.kind, outcomes, items)

    def close(self) -> None:
        pass


class ThreadExecutor(ExecutorBackend):
    """A bounded thread pool; the historical ``BatchExecutor`` semantics.

    ``workers == 1`` (or a single-item batch) short-circuits to a plain
    loop with no threads at all, making that path byte-identical to
    serial execution.  The pool is created lazily on first parallel use
    and reused across batches.
    """

    kind = "thread"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def map(self, fn: Callable, items: Sequence) -> list:
        if self.workers == 1 or len(items) <= 1:
            return SerialExecutor().map(fn, items)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="sul-pool"
            )
        futures = [self._pool.submit(fn, item) for item in items]
        outcomes: list[tuple[object, BaseException | None]] = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except Exception as error:
                outcomes.append((None, error))
        return _collect(self.kind, outcomes, items)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class BatchExecutor(ThreadExecutor):
    """Backward-compatible name for the thread-or-serial executor.

    Campaigns, the property checker and the SUL pool's thread path have
    always fanned out through a ``BatchExecutor``; it is now simply the
    ``thread`` backend of the executor interface.
    """


# ---------------------------------------------------------------------------
# Process backend
# ---------------------------------------------------------------------------

def _process_worker_main(conn, initializer, init_args) -> None:
    """Worker-process entry point: build state once, then serve tasks.

    ``initializer`` runs exactly once per process (per-shard SUL
    construction happens here, in the child); its return value is the
    worker state handed to every task function.  Application exceptions
    are reported back as strings -- they must not kill the worker, only
    that task.
    """
    state = initializer(*init_args) if initializer is not None else None
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            fn, item = message
            try:
                result = fn(item) if state is None else fn(state, item)
                conn.send(("ok", result))
            except Exception as error:
                conn.send(("err", f"{type(error).__name__}: {error}"))
    finally:
        close = getattr(state, "close", None)
        if callable(close):
            try:
                close()
            except Exception:
                pass
        conn.close()


class _Worker:
    """Parent-side handle on one worker process (pipe + process)."""

    def __init__(self, context, initializer, init_args) -> None:
        self.conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_process_worker_main,
            args=(child_conn, initializer, init_args),
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stuck in syscall
                self.process.kill()
                self.process.join(timeout=2.0)

    def stop(self) -> None:
        """Graceful shutdown: ask the child to exit, then enforce it."""
        try:
            self.conn.send(None)
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.process.join(timeout=2.0)
        self.kill()


class ProcessExecutor(ExecutorBackend):
    """Persistent worker processes with timeout, respawn and bounded retry.

    Workers are forked lazily on first use and reused across batches; each
    runs ``initializer(*init_args)`` once at startup and keeps the result
    as its state (a SUL pool passes its ``sul_factory`` here, so every
    worker owns a private SUL built *in the child* -- nothing live crosses
    the process boundary, only picklable task payloads and results).

    ``map(fn, items)`` pins item ``i`` to worker ``i mod n`` and calls
    ``fn(item)`` -- or ``fn(state, item)`` when an initializer was given
    -- in that worker.  ``fn`` and every item/result must be picklable.

    Fault handling, per task: if a worker dies or exceeds ``timeout_s``,
    it is killed and respawned (re-running the initializer) and the task
    is retried up to ``retries`` times on the fresh worker; exhausted
    retries become entries in the aggregated :class:`ExecutorError`.
    Exceptions *inside* the task function are application errors, not
    worker faults -- they are reported without burning a respawn.
    """

    kind = "process"

    def __init__(
        self,
        workers: int,
        initializer: Callable | None = None,
        init_args: tuple = (),
        timeout_s: float | None = None,
        retries: int = 1,
    ) -> None:
        super().__init__(workers)
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"need a positive timeout, got {timeout_s}")
        self.timeout_s = timeout_s
        self.retries = retries
        self.respawns = 0
        self._initializer = initializer
        self._init_args = init_args
        # Fork keeps non-picklable initializers working (args are inherited,
        # not pickled) and skips re-importing the world per worker; spawn is
        # the portability fallback.
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: dict[int, _Worker] = {}

    # -- worker lifecycle --------------------------------------------------
    def _worker(self, index: int) -> _Worker:
        worker = self._workers.get(index)
        if worker is None:
            worker = _Worker(self._context, self._initializer, self._init_args)
            self._workers[index] = worker
        return worker

    def _respawn(self, index: int) -> _Worker:
        self._workers.pop(index).kill()
        self.respawns += 1
        return self._worker(index)

    # -- mapping -----------------------------------------------------------
    def map(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        if not items:
            return []
        active = min(self.workers, len(items))
        queues = {
            index: deque(range(index, len(items), active))
            for index in range(active)
        }
        results: list = [None] * len(items)
        failures: dict[int, str] = {}
        # worker index -> (item index, deadline or None, attempt)
        inflight: dict[int, tuple[int, float | None, int]] = {}

        def dispatch(worker_index: int, item_index: int, attempt: int) -> None:
            deadline = (
                time.monotonic() + self.timeout_s
                if self.timeout_s is not None
                else None
            )
            self._worker(worker_index).conn.send((fn, items[item_index]))
            inflight[worker_index] = (item_index, deadline, attempt)

        def dispatch_next(worker_index: int) -> None:
            queue = queues[worker_index]
            if queue:
                dispatch(worker_index, queue.popleft(), 1)

        def fail_over(worker_index: int, reason: str) -> None:
            """A worker died or timed out: respawn it, retry or record."""
            item_index, _, attempt = inflight.pop(worker_index)
            self._respawn(worker_index)
            if attempt <= self.retries:
                dispatch(worker_index, item_index, attempt + 1)
            else:
                failures[item_index] = reason
                dispatch_next(worker_index)

        for worker_index in range(active):
            dispatch_next(worker_index)

        while inflight:
            now = time.monotonic()
            conn_to_worker = {
                self._workers[w].conn: w for w in inflight
            }
            deadlines = [d for _, d, _ in inflight.values() if d is not None]
            wait_timeout = (
                max(0.0, min(deadlines) - now) if deadlines else None
            )
            ready = multiprocessing.connection.wait(
                list(conn_to_worker), timeout=wait_timeout
            )
            for conn in ready:
                worker_index = conn_to_worker[conn]
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    fail_over(
                        worker_index,
                        "worker process died "
                        f"(pid {self._workers[worker_index].process.pid})",
                    )
                    continue
                item_index, _, _ = inflight.pop(worker_index)
                if status == "ok":
                    results[item_index] = payload
                else:
                    # An application exception: the worker is healthy.
                    failures[item_index] = payload
                dispatch_next(worker_index)
            # Sweep deadlines every round: a hung worker must not starve
            # behind busy siblings whose replies keep `ready` non-empty.
            # (Re-dispatched workers carry fresh, future deadlines.)
            now = time.monotonic()
            for worker_index in list(inflight):
                _, deadline, _ = inflight[worker_index]
                if deadline is not None and deadline <= now:
                    fail_over(
                        worker_index,
                        f"worker timed out after {self.timeout_s}s",
                    )

        if failures:
            raise ExecutorError(
                self.kind,
                len(items),
                [
                    (index, _item_repr(items[index]), message)
                    for index, message in sorted(failures.items())
                ],
            )
        return results

    def close(self) -> None:
        workers, self._workers = self._workers, {}
        for worker in workers.values():
            worker.stop()


def build_executor(
    kind: str,
    workers: int,
    *,
    timeout_s: float | None = None,
    initializer: Callable | None = None,
    init_args: tuple = (),
) -> ExecutorBackend:
    """Instantiate an executor backend by kind (``EXECUTOR_KINDS``).

    ``timeout_s``/``initializer``/``init_args`` only apply to the
    ``process`` backend: threads cannot be killed mid-task and in-process
    backends share the caller's state, so neither needs them.
    """
    if kind == "serial":
        return SerialExecutor(workers)
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(
            workers,
            initializer=initializer,
            init_args=init_args,
            timeout_s=timeout_s,
        )
    known = ", ".join(EXECUTOR_KINDS)
    raise ValueError(f"unknown executor backend {kind!r}; known: {known}")

"""The layered-adapter API: app-over-transport SUL composition.

The first three workloads (TCP, QUIC, HTTP/2) each hand-rolled a
monolithic adapter wiring a client/server pair straight onto the
simulated network.  HTTP/3 -- an application protocol *defined* as
riding another protocol's streams -- makes that shape untenable, so this
module splits the adapter into two declaratively composed layers:

* a :class:`Transport` carries ``(stream, bytes, fin, reset)`` traffic
  between a client edge and a server handler -- either a single ordered
  byte pipe with ARQ (:class:`ReliableByteTransport`, the TCP-like
  substrate HTTP/2 expects) or independent QUIC-style streams
  (:class:`QuicStreamTransport`, with connection-ID routing, migration
  and 0-RTT session resumption);
* an *app layer* owns the protocol logic: the abstract alphabet, the
  concretization of input symbols onto transport streams, and the
  abstraction of transport events back into output symbols.

:func:`compose` glues a transport factory and an app factory into a
single SUL factory that registers like any other target, so
``http2``-over-reliable-pipe and ``http3``-over-QUIC-streams share one
composition code path and every learner/executor/store layer above.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar, Mapping, Sequence

from ..core.alphabet import AbstractSymbol, Alphabet
from ..netsim import LinkConfig, PERFECT_LINK, SimulatedNetwork
from ..quic.flowcontrol import ReceiveFlowController, SendFlowController
from ..quic.frames import (
    AckFrame,
    AckRange,
    CryptoFrame,
    Frame,
    NewTokenFrame,
    ResetStreamFrame,
    StreamFrame,
    decode_frames,
    encode_frames,
)
from ..quic.streams import ReceiveStream, SendStream
from ..quic.varint import Buffer
from ..registry import supported_kwargs
from .sul import SUL


class TransportError(RuntimeError):
    """Misuse of a transport (wrong stream, FIN on a pipe, ...)."""


@dataclass(frozen=True)
class StreamEvent:
    """One unit of transport traffic, in either direction.

    ``kind`` is ``"data"`` (``data`` plus the stream's FIN bit) or
    ``"reset"`` (abrupt termination carrying ``error_code``).  Apps both
    receive these (inbound traffic) and return them from server handlers
    (outbound responses).
    """

    stream_id: int
    kind: str = "data"
    data: bytes = b""
    fin: bool = False
    error_code: int = 0


#: A server app entry point: one inbound event -> outbound events.
ServerHandler = Callable[[StreamEvent], Sequence[StreamEvent]]


class Transport(ABC):
    """A bidirectional stream carrier between a client edge and a server.

    The client edge queues traffic with :meth:`send` / :meth:`reset_stream`
    and pumps the network with :meth:`exchange`, which returns every
    event the server's responses produced.  The server app registers a
    handler with :meth:`set_server`; the transport feeds it reassembled
    inbound events and carries its response events back.

    Feature flags describe what scenarios the transport supports; apps
    and probes consult them instead of type-checking.
    """

    #: Streams deliver independently (loss on one does not stall others).
    independent_streams: ClassVar[bool] = False
    #: The client edge can change its network address mid-connection.
    supports_migration: ClassVar[bool] = False
    #: Connections can resume with a session ticket (0-RTT).
    supports_resumption: ClassVar[bool] = False

    def __init__(self) -> None:
        self._server_handler: ServerHandler | None = None

    def set_server(self, handler: ServerHandler) -> None:
        """Attach the server app's event handler."""
        self._server_handler = handler

    def _serve(self, event: StreamEvent) -> Sequence[StreamEvent]:
        if self._server_handler is None:
            return ()
        return self._server_handler(event)

    @abstractmethod
    def reset(self) -> None:
        """Start a fresh logical connection (between membership queries)."""

    @abstractmethod
    def send(self, stream_id: int, data: bytes, fin: bool = False) -> None:
        """Queue bytes on a stream; flushed by the next :meth:`exchange`."""

    def reset_stream(self, stream_id: int, error_code: int = 0) -> None:
        raise TransportError(f"{type(self).__name__} cannot reset streams")

    @abstractmethod
    def exchange(self, max_rounds: int = 8) -> list[StreamEvent]:
        """Flush queued traffic, run the network, return inbound events.

        One call performs up to ``max_rounds`` request/ack rounds so
        retransmissions triggered within the call still land; under a
        perfect link a single round suffices.
        """

    def migrate(self) -> None:
        raise TransportError(f"{type(self).__name__} cannot migrate")

    def close(self) -> None:  # pragma: no cover - overridden where needed
        """Release network resources."""


# ---------------------------------------------------------------------------
# Reliable ordered byte pipe (the HTTP/2 substrate)
# ---------------------------------------------------------------------------

class _ArqEnd:
    """One direction of the reliable pipe: cumulative-ack ARQ state."""

    def __init__(self) -> None:
        self.send_offset = 0
        self.unacked: dict[int, bytes] = {}
        self.pending: list[bytes] = []
        self.recv_segments: dict[int, bytes] = {}
        self.delivered = 0

    def queue(self, data: bytes) -> None:
        if data:
            self.pending.append(data)

    def outgoing(self, retransmit: bool) -> list[tuple[int, bytes]]:
        """Segments to put on the wire; new pending always, old on demand."""
        for data in self.pending:
            self.unacked[self.send_offset] = data
            self.send_offset += len(data)
        new_from = self.send_offset - sum(len(d) for d in self.pending)
        self.pending = []
        if retransmit:
            return sorted(self.unacked.items())
        return sorted(
            (off, data) for off, data in self.unacked.items() if off >= new_from
        )

    def on_ack(self, ack: int) -> None:
        self.unacked = {
            off: data for off, data in self.unacked.items() if off + len(data) > ack
        }

    def on_segment(self, offset: int, data: bytes) -> bool:
        """Store a segment; True when it was a duplicate/stale copy."""
        if offset + len(data) <= self.delivered:
            return True
        duplicate = offset in self.recv_segments or offset < self.delivered
        self.recv_segments.setdefault(offset, data)
        return duplicate

    def take_contiguous(self) -> bytes:
        out = bytearray()
        while self.delivered in self.recv_segments:
            segment = self.recv_segments.pop(self.delivered)
            out.extend(segment)
            self.delivered += len(segment)
        return bytes(out)


def _encode_segment(ack: int, segments: Sequence[tuple[int, bytes]]) -> bytes:
    buf = Buffer()
    buf.push_varint(ack)
    buf.push_varint(len(segments))
    for offset, data in segments:
        buf.push_varint(offset)
        buf.push_varint_bytes(data)
    return buf.getvalue()


def _decode_segment(payload: bytes) -> tuple[int, list[tuple[int, bytes]]]:
    buf = Buffer(payload)
    ack = buf.pull_varint()
    count = buf.pull_varint()
    segments = [(buf.pull_varint(), buf.pull_varint_bytes()) for _ in range(count)]
    return ack, segments


class ReliableByteTransport(Transport):
    """A single ordered byte pipe over the lossy datagram network.

    TCP-in-miniature: one segment per datagram, cumulative acks,
    retransmission of unacked segments, and -- the property the HTTP/3
    comparison hinges on -- strictly in-order delivery: a lost segment
    blocks everything queued behind it (head-of-line blocking).  All
    traffic rides stream 0; FIN and per-stream resets are meaningless on
    a plain pipe and raise :class:`TransportError`.
    """

    independent_streams = False

    def __init__(
        self,
        seed: int = 9,
        link: LinkConfig = PERFECT_LINK,
        network: SimulatedNetwork | None = None,
        client_host: str = "pipe-client",
        server_host: str = "pipe-server",
        port: int = 4433,
    ) -> None:
        super().__init__()
        self.network = network or SimulatedNetwork(seed=seed, config=link)
        self._server_endpoint = self.network.bind(server_host, port)
        self._server_endpoint.handler = self._on_server_datagram
        self._endpoint = self.network.bind(client_host, None)
        self._client_arq = _ArqEnd()
        self._server_arq = _ArqEnd()

    # -- client edge -----------------------------------------------------
    def reset(self) -> None:
        self._client_arq = _ArqEnd()
        self._server_arq = _ArqEnd()
        self._endpoint.receive_all()

    def send(self, stream_id: int, data: bytes, fin: bool = False) -> None:
        if stream_id != 0:
            raise TransportError("reliable pipe carries exactly one stream (0)")
        if fin:
            raise TransportError("reliable pipe has no FIN")
        self._client_arq.queue(data)

    def exchange(self, max_rounds: int = 8) -> list[StreamEvent]:
        for offset, data in self._client_arq.outgoing(retransmit=True):
            self._endpoint.send(
                _encode_segment(self._client_arq.delivered, [(offset, data)]),
                self._server_endpoint.address,
            )
        self.network.run()
        collected = bytearray()
        for _ in range(max_rounds):
            inbound = self._endpoint.receive_all()
            if not inbound:
                break
            had_data = False
            for datagram in inbound:
                ack, segments = _decode_segment(datagram.payload)
                self._client_arq.on_ack(ack)
                for offset, data in segments:
                    had_data = True
                    self._client_arq.on_segment(offset, data)
            collected.extend(self._client_arq.take_contiguous())
            if not had_data:
                break
            # Ack what arrived so the server can drop retransmit state
            # (and retransmit anything we still miss).
            self._endpoint.send(
                _encode_segment(self._client_arq.delivered, []),
                self._server_endpoint.address,
            )
            self.network.run()
        if not collected:
            return []
        return [StreamEvent(stream_id=0, kind="data", data=bytes(collected))]

    def close(self) -> None:
        self._endpoint.close()
        self._server_endpoint.close()

    # -- server edge -----------------------------------------------------
    def _on_server_datagram(self, datagram) -> None:
        ack, segments = _decode_segment(datagram.payload)
        arq = self._server_arq
        arq.on_ack(ack)
        duplicate = False
        for offset, data in segments:
            duplicate |= arq.on_segment(offset, data)
        new_bytes = arq.take_contiguous()
        if new_bytes:
            for event in self._serve(StreamEvent(0, "data", new_bytes)):
                if event.kind != "data":
                    raise TransportError("reliable pipe cannot carry resets")
                arq.queue(event.data)
        # Retransmit when the peer is clearly missing something: it
        # re-sent old data, or its pure ack left segments outstanding.
        retransmit = bool(arq.unacked) and (duplicate or not segments)
        outgoing = arq.outgoing(retransmit=retransmit)
        if outgoing:
            for offset, data in outgoing:
                self._server_endpoint.send(
                    _encode_segment(arq.delivered, [(offset, data)]),
                    datagram.source,
                )
        elif segments:
            self._server_endpoint.send(
                _encode_segment(arq.delivered, []), datagram.source
            )


# ---------------------------------------------------------------------------
# QUIC-style stream transport (the HTTP/3 substrate)
# ---------------------------------------------------------------------------

def _recv_stream() -> ReceiveStream:
    return ReceiveStream(flow=ReceiveFlowController(limit=1 << 40))


def _send_stream() -> SendStream:
    return SendStream(flow=SendFlowController(limit=1 << 40))


class _QuicConnState:
    """Per-connection packet and stream state for one side."""

    def __init__(self, cid: bytes) -> None:
        self.cid = cid
        self.next_pn = 0
        self.received_pns: set[int] = set()
        self.unacked: dict[int, tuple[Frame, ...]] = {}
        self.recv: dict[int, ReceiveStream] = {}
        self.send: dict[int, SendStream] = {}
        self.fin_reported: set[int] = set()
        self.handshaken = False

    def recv_stream(self, stream_id: int) -> ReceiveStream:
        return self.recv.setdefault(stream_id, _recv_stream())

    def send_stream(self, stream_id: int) -> SendStream:
        return self.send.setdefault(stream_id, _send_stream())

    def ack_frame(self) -> AckFrame | None:
        if not self.received_pns:
            return None
        ranges: list[AckRange] = []
        for pn in sorted(self.received_pns):
            if ranges and pn == ranges[-1].largest + 1:
                ranges[-1] = AckRange(ranges[-1].smallest, pn)
            else:
                ranges.append(AckRange(pn, pn))
        largest = ranges[-1].largest
        return AckFrame(largest_acknowledged=largest, ranges=tuple(ranges))

    def on_ack(self, ack: AckFrame) -> None:
        self.unacked = {
            pn: frames
            for pn, frames in self.unacked.items()
            if not ack.acknowledges(pn)
        }


def _encode_packet(conn: _QuicConnState, frames: Sequence[Frame]) -> bytes:
    """Build one plaintext packet, recording retransmittable frames."""
    buf = Buffer()
    buf.push_varint(conn.next_pn)
    buf.push_varint_bytes(conn.cid)
    buf.push_bytes(encode_frames(frames))
    retransmittable = tuple(
        f
        for f in frames
        if isinstance(f, (StreamFrame, ResetStreamFrame, CryptoFrame, NewTokenFrame))
    )
    if retransmittable:
        conn.unacked[conn.next_pn] = retransmittable
    conn.next_pn += 1
    return buf.getvalue()


def _decode_packet(payload: bytes) -> tuple[int, bytes, list[Frame]]:
    buf = Buffer(payload)
    pn = buf.pull_varint()
    cid = buf.pull_varint_bytes()
    frames = decode_frames(buf.pull_bytes(buf.remaining))
    return pn, cid, frames


class QuicStreamTransport(Transport):
    """Independent QUIC-style streams over the lossy datagram network.

    Each stream's data travels in its *own* packet (one datagram per
    stream per flight), so losing one stream's packet never delays
    another's -- the no-head-of-line-blocking property HTTP/3 inherits.
    Packets are plaintext ``packet number + connection id + RFC 9000
    frames`` and the server routes on the connection id rather than the
    source address, which is what makes mid-session :meth:`migrate`
    work.  A one-round handshake (CRYPTO ping-pong) opens every fresh
    connection; the server's NEW_TOKEN ticket lets a resuming client
    skip it and send app data in its first flight (0-RTT).
    """

    independent_streams = True
    supports_migration = True
    supports_resumption = True

    def __init__(
        self,
        seed: int = 8,
        link: LinkConfig = PERFECT_LINK,
        network: SimulatedNetwork | None = None,
        client_host: str = "quic-client",
        server_host: str = "quic-server",
        port: int = 443,
        resumption: bool = False,
    ) -> None:
        super().__init__()
        import random

        self.network = network or SimulatedNetwork(seed=seed, config=link)
        self._rng = random.Random(seed ^ 0x5153)  # cid source, not the link rng
        self._server_endpoint = self.network.bind(server_host, port)
        self._server_endpoint.handler = self._on_server_datagram
        self._client_host = client_host
        self._endpoint = self.network.bind(client_host, None)
        self.resumption = resumption
        self._ticket: bytes | None = None
        self._server_ticket = bytes(self._rng.randrange(256) for _ in range(8))
        self._server_conns: dict[bytes, _QuicConnState] = {}
        self._conn = _QuicConnState(self._new_cid())
        self._pending_token: bytes | None = None
        self._reset_queue: list[ResetStreamFrame] = []
        self._pending_resets: list[ResetStreamFrame] = []
        self.stats = {"handshake_rounds": 0, "connections": 0, "migrations": 0}
        self.last_connection_rounds = 0

    def _new_cid(self) -> bytes:
        return bytes(self._rng.randrange(256) for _ in range(8))

    # -- client edge -----------------------------------------------------
    def reset(self) -> None:
        self._conn = _QuicConnState(self._new_cid())
        self._server_conns.clear()
        self._reset_queue = []
        self._pending_token = None
        self._endpoint.receive_all()
        self.stats["connections"] += 1
        self.last_connection_rounds = 0
        if self.resumption and self._ticket is not None:
            # 0-RTT: skip the handshake round; the ticket rides the
            # first flight alongside early application data.
            self._pending_token = self._ticket
            self._conn.handshaken = True
            return
        self._handshake()

    def _handshake(self) -> None:
        packet = _encode_packet(self._conn, [CryptoFrame(data=b"client-hello")])
        self._endpoint.send(packet, self._server_endpoint.address)
        self.network.run()
        for datagram in self._endpoint.receive_all():
            self._absorb_packet(datagram.payload)
        ack = self._conn.ack_frame()
        if ack is not None:
            self._endpoint.send(
                _encode_packet(self._conn, [ack]), self._server_endpoint.address
            )
            self.network.run()
        self.stats["handshake_rounds"] += 1
        self.last_connection_rounds += 1

    def send(self, stream_id: int, data: bytes, fin: bool = False) -> None:
        self._conn.send_stream(stream_id).write(data, fin=fin)

    def reset_stream(self, stream_id: int, error_code: int = 0) -> None:
        stream = self._conn.send_stream(stream_id)
        self._reset_queue.append(
            ResetStreamFrame(
                stream_id=stream_id, error_code=error_code, final_size=stream.offset
            )
        )

    def migrate(self) -> None:
        """Rebind the client edge to a new port, keeping the connection."""
        self._endpoint.close()
        self._endpoint = self.network.bind(self._client_host, None)
        self.stats["migrations"] += 1

    def exchange(self, max_rounds: int = 8) -> list[StreamEvent]:
        conn = self._conn
        packets: list[bytes] = []
        # Retransmit first: unacked frames from earlier flights go out
        # again under fresh packet numbers, one packet per old packet.
        for pn in sorted(conn.unacked):
            packets.append(_encode_packet(conn, list(conn.unacked.pop(pn))))
        for stream_id in sorted(conn.send):
            stream = conn.send[stream_id]
            if not stream.has_pending and not (
                stream.fin_queued and not stream.fin_sent
            ):
                continue
            offset, data, fin = stream.drain()
            frames: list[Frame] = [
                StreamFrame(stream_id=stream_id, offset=offset, data=data, fin=fin)
            ]
            packets.append(_encode_packet(conn, frames))
        for reset in self._reset_queue:
            packets.append(_encode_packet(conn, [reset]))
        self._reset_queue = []
        if self._pending_token is not None and packets:
            # Prepend the session ticket to the first 0-RTT flight.
            token_packet = _encode_packet(
                conn, [NewTokenFrame(token=self._pending_token)]
            )
            packets.insert(0, token_packet)
            self._pending_token = None
        for packet in packets:
            self._endpoint.send(packet, self._server_endpoint.address)
        if packets:
            self.last_connection_rounds += 1
        self.network.run()
        events: list[StreamEvent] = []
        for _ in range(max_rounds):
            inbound = self._endpoint.receive_all()
            if not inbound:
                break
            needs_ack = False
            for datagram in inbound:
                needs_ack |= self._absorb_packet(datagram.payload)
            events.extend(self._drain_events(conn))
            if not needs_ack:
                break
            ack = conn.ack_frame()
            if ack is not None:
                self._endpoint.send(
                    _encode_packet(conn, [ack]), self._server_endpoint.address
                )
                self.network.run()
        return events

    def _absorb_packet(self, payload: bytes) -> bool:
        """Process one inbound packet; True when it needs acknowledging."""
        conn = self._conn
        pn, cid, frames = _decode_packet(payload)
        if cid != conn.cid:
            return False  # a stale connection's leftovers
        conn.received_pns.add(pn)
        retransmittable = False
        for frame in frames:
            if isinstance(frame, AckFrame):
                conn.on_ack(frame)
            elif isinstance(frame, StreamFrame):
                retransmittable = True
                conn.recv_stream(frame.stream_id).on_frame(
                    frame.offset, frame.data, frame.fin
                )
            elif isinstance(frame, ResetStreamFrame):
                retransmittable = True
                conn.recv.setdefault(frame.stream_id, _recv_stream())
                conn.fin_reported.add(frame.stream_id)
                self._pending_resets.append(frame)
            elif isinstance(frame, CryptoFrame):
                retransmittable = True
                conn.handshaken = True
            elif isinstance(frame, NewTokenFrame):
                retransmittable = True
                self._ticket = frame.token
        return retransmittable

    def _drain_events(self, conn: _QuicConnState) -> list[StreamEvent]:
        events: list[StreamEvent] = []
        for reset in self._pending_resets:
            events.append(
                StreamEvent(
                    stream_id=reset.stream_id,
                    kind="reset",
                    error_code=reset.error_code,
                )
            )
        self._pending_resets = []
        for stream_id in sorted(conn.recv):
            stream = conn.recv[stream_id]
            data = stream.consume(len(stream.readable()))
            finished = stream.finished and stream_id not in conn.fin_reported
            if finished:
                conn.fin_reported.add(stream_id)
            if data or finished:
                events.append(
                    StreamEvent(
                        stream_id=stream_id, kind="data", data=data, fin=finished
                    )
                )
        return events

    def close(self) -> None:
        self._endpoint.close()
        self._server_endpoint.close()

    # -- server edge -----------------------------------------------------
    def _on_server_datagram(self, datagram) -> None:
        pn, cid, frames = _decode_packet(datagram.payload)
        conn = self._server_conns.get(cid)
        if conn is None:
            conn = self._accept(cid, pn, frames, datagram.source)
            if conn is None or any(isinstance(f, CryptoFrame) for f in frames):
                return
        conn.received_pns.add(pn)
        progressed = False
        retransmittable = False
        response_events: list[StreamEvent] = []
        for frame in frames:
            if isinstance(frame, AckFrame):
                conn.on_ack(frame)
            elif isinstance(frame, StreamFrame):
                retransmittable = True
                conn.recv_stream(frame.stream_id).on_frame(
                    frame.offset, frame.data, frame.fin
                )
            elif isinstance(frame, ResetStreamFrame):
                retransmittable = True
                conn.recv.setdefault(frame.stream_id, _recv_stream())
                if frame.stream_id not in conn.fin_reported:
                    conn.fin_reported.add(frame.stream_id)
                    progressed = True
                    response_events.extend(
                        self._serve(
                            StreamEvent(
                                stream_id=frame.stream_id,
                                kind="reset",
                                error_code=frame.error_code,
                            )
                        )
                    )
            elif isinstance(frame, CryptoFrame):
                # A retransmitted client hello: our handshake response
                # was lost; the generic retransmit path below re-sends it.
                retransmittable = True
        for stream_id in sorted(conn.recv):
            stream = conn.recv[stream_id]
            data = stream.consume(len(stream.readable()))
            finished = stream.finished and stream_id not in conn.fin_reported
            if finished:
                conn.fin_reported.add(stream_id)
            if data or finished:
                progressed = True
                response_events.extend(
                    self._serve(
                        StreamEvent(
                            stream_id=stream_id, kind="data", data=data, fin=finished
                        )
                    )
                )
        packets: list[bytes] = []
        # The peer re-sending data we already have (or a bare ack while
        # our frames are outstanding) signals our last flight was lost.
        if conn.unacked and (not progressed or not retransmittable):
            for old_pn in sorted(conn.unacked):
                packets.append(_encode_packet(conn, list(conn.unacked.pop(old_pn))))
        for event in response_events:
            if event.kind == "reset":
                packets.append(
                    _encode_packet(
                        conn,
                        [
                            ResetStreamFrame(
                                stream_id=event.stream_id,
                                error_code=event.error_code,
                                final_size=conn.send_stream(event.stream_id).offset,
                            )
                        ],
                    )
                )
            else:
                conn.send_stream(event.stream_id).write(event.data, fin=event.fin)
        for stream_id in sorted(conn.send):
            stream = conn.send[stream_id]
            if not stream.has_pending and not (
                stream.fin_queued and not stream.fin_sent
            ):
                continue
            offset, data, fin = stream.drain()
            packets.append(
                _encode_packet(
                    conn,
                    [
                        StreamFrame(
                            stream_id=stream_id, offset=offset, data=data, fin=fin
                        )
                    ],
                )
            )
        ack = conn.ack_frame() if retransmittable else None
        if packets:
            if ack is not None:
                # Piggyback the ack on the first response packet.
                first = _decode_packet(packets[0])
                packets[0] = self._repack_with_ack(conn, packets[0], ack)
                del first
        elif ack is not None:
            packets.append(_encode_packet(conn, [ack]))
        for packet in packets:
            self._server_endpoint.send(packet, datagram.source)

    def _repack_with_ack(
        self, conn: _QuicConnState, packet: bytes, ack: AckFrame
    ) -> bytes:
        buf = Buffer(packet)
        pn = buf.pull_varint()
        cid = buf.pull_varint_bytes()
        out = Buffer()
        out.push_varint(pn)
        out.push_varint_bytes(cid)
        out.push_bytes(encode_frames([ack]))
        out.push_bytes(buf.pull_bytes(buf.remaining))
        return out.getvalue()

    def _accept(
        self, cid: bytes, pn: int, frames: list[Frame], source
    ) -> _QuicConnState | None:
        """Admit a new connection: full handshake or a valid 0-RTT ticket."""
        has_hello = any(isinstance(f, CryptoFrame) for f in frames)
        has_ticket = any(
            isinstance(f, NewTokenFrame) and f.token == self._server_ticket
            for f in frames
        )
        if not has_hello and not has_ticket:
            return None  # unauthenticated stray packet: dropped
        self._server_conns.clear()  # one live connection per transport
        conn = _QuicConnState(cid)
        conn.handshaken = True
        self._server_conns[cid] = conn
        if has_hello:
            conn.received_pns.add(pn)
            response = [
                CryptoFrame(data=b"server-hello"),
                NewTokenFrame(token=self._server_ticket),
            ]
            ack = conn.ack_frame()
            if ack is not None:
                response.insert(0, ack)
            self._server_endpoint.send(_encode_packet(conn, response), source)
        return conn


# ---------------------------------------------------------------------------
# App layer and composition
# ---------------------------------------------------------------------------

class AppLayer(ABC):
    """The protocol logic riding a transport.

    An app owns the abstract ``alphabet``, concretizes each input symbol
    onto transport streams, registers the server side with
    ``transport.set_server`` at construction, and abstracts transport
    events back into an output symbol in :meth:`step`.
    """

    alphabet: Alphabet
    name: str = "app"

    @abstractmethod
    def reset(self) -> None:
        """Return client and server protocol state to a fresh connection."""

    @abstractmethod
    def step(
        self, symbol: AbstractSymbol
    ) -> tuple[AbstractSymbol, Mapping[str, int], Mapping[str, int]]:
        """Send one abstract symbol through the stack; see ``SUL._step_impl``."""

    def close(self) -> None:
        """Release app resources (most apps hold none)."""


class LayeredSUL(SUL):
    """A transport + app pair behind the standard SUL interface.

    Unknown attributes are forwarded to the app layer, so composed
    targets keep exposing their protocol objects (``sul.server``,
    ``sul.client``) exactly like the monolithic adapters did.
    """

    def __init__(
        self, transport: Transport, app: AppLayer, name: str | None = None
    ) -> None:
        super().__init__(app.alphabet, name=name or app.name)
        self.transport = transport
        self.app = app

    def _reset_impl(self) -> None:
        self.transport.reset()
        self.app.reset()

    def _step_impl(self, symbol):
        return self.app.step(symbol)

    def close(self) -> None:
        self.app.close()
        self.transport.close()

    def __getattr__(self, attribute: str):
        # Only called when normal lookup fails; delegate to the app.
        app = self.__dict__.get("app")
        if app is None or attribute.startswith("_"):
            raise AttributeError(attribute)
        return getattr(app, attribute)


def compose(
    transport_factory: Callable[..., Transport],
    app_factory: Callable[..., AppLayer],
    name: str | None = None,
) -> Callable[..., LayeredSUL]:
    """Declare an app-over-transport SUL as a registrable factory.

    The returned factory splits its keyword params between the two
    layer factories by signature (:func:`~repro.registry
    .supported_kwargs`), builds the transport, hands it to the app
    factory as the first positional argument, and wires both into a
    :class:`LayeredSUL`::

        SUL_REGISTRY.register(
            "http3",
            compose(QuicStreamTransport, build_h3_app, name="http3"),
        )

    A parameter neither layer accepts raises :class:`TypeError` so spec
    typos fail loudly instead of being dropped.
    """

    def factory(**params) -> LayeredSUL:
        transport_params = supported_kwargs(transport_factory, params)
        app_params = supported_kwargs(app_factory, params)
        unclaimed = set(params) - set(transport_params) - set(app_params)
        if unclaimed:
            raise TypeError(
                f"composed target {name or 'layered'!r} got params no layer "
                f"accepts: {sorted(unclaimed)}"
            )
        transport = transport_factory(**transport_params)
        app = app_factory(transport, **app_params)
        return LayeredSUL(transport, app, name=name)

    factory.__name__ = f"composed_{name or 'layered'}_sul"
    return factory

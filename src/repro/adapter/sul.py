"""The System Under Learning interface (paper section 3).

A :class:`SUL` packages an implementation and its adapter behind the two
operations active learning needs: *reset* and *step*.  The base class adds
query bookkeeping, Oracle-Table recording (adapter property 4) and
statistics that the benchmarks report (membership queries, resets, symbols
sent).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.oracle_table import OracleTable
from ..core.trace import Word


@dataclass
class SULStats:
    """Counters the paper reports for each learning run."""

    queries: int = 0
    steps: int = 0
    resets: int = 0

    def snapshot(self) -> dict[str, int]:
        return {"queries": self.queries, "steps": self.steps, "resets": self.resets}


class SUL(ABC):
    """An implementation + adapter pair, queryable with abstract words."""

    def __init__(self, input_alphabet: Alphabet, name: str = "sul") -> None:
        self.input_alphabet = input_alphabet
        self.name = name
        self.oracle_table = OracleTable()
        self.stats = SULStats()

    # -- subclass responsibilities ---------------------------------------
    @abstractmethod
    def _reset_impl(self) -> None:
        """Return the implementation and the adapter to their initial state."""

    @abstractmethod
    def _step_impl(
        self, symbol: AbstractSymbol
    ) -> tuple[AbstractSymbol, Mapping[str, int], Mapping[str, int]]:
        """Send one abstract symbol; return (abstract output, concrete input
        parameters, concrete output parameters)."""

    # -- public interface -------------------------------------------------
    def reset(self) -> None:
        self.stats.resets += 1
        self._reset_impl()

    def step(self, symbol: AbstractSymbol) -> AbstractSymbol:
        """One step without Oracle-Table recording (used by random walks)."""
        self.stats.steps += 1
        output, _, _ = self._step_impl(symbol)
        return output

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        """A complete membership query: reset, run the word, record.

        The abstract trace *and* the concrete parameters of every step are
        stored in the Oracle Table for later synthesis (section 4.3).
        """
        self.stats.queries += 1
        self.reset()
        outputs: list[AbstractSymbol] = []
        input_params: list[Mapping[str, int]] = []
        output_params: list[Mapping[str, int]] = []
        for symbol in word:
            self.stats.steps += 1
            output, in_params, out_params = self._step_impl(symbol)
            outputs.append(output)
            input_params.append(in_params)
            output_params.append(out_params)
        self.oracle_table.record(tuple(word), tuple(outputs), input_params, output_params)
        return tuple(outputs)

    def query_batch(self, words: Sequence[Sequence[AbstractSymbol]]) -> list[Word]:
        """Answer several membership queries; results are index-aligned.

        The base implementation runs the words serially on this instance;
        parallel backends (:class:`repro.adapter.pool.SULPool`) override it.
        """
        return [self.query(word) for word in words]

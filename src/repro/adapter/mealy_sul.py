"""A SUL backed directly by a Mealy machine.

Useful for testing learners against known ground truth, for model-based
mutation experiments, and for replaying learned models as simulated
implementations (model-based test generation, paper section 5).
"""

from __future__ import annotations

from typing import Mapping

from ..core.alphabet import AbstractSymbol
from ..core.mealy import MealyMachine
from .sul import SUL


class MealySUL(SUL):
    """Wraps a machine behind the reset/step SUL interface."""

    def __init__(self, machine: MealyMachine, name: str | None = None) -> None:
        super().__init__(machine.input_alphabet, name=name or machine.name)
        self.machine = machine
        self._state = machine.initial_state

    def _reset_impl(self) -> None:
        self._state = self.machine.initial_state

    def _step_impl(
        self, symbol: AbstractSymbol
    ) -> tuple[AbstractSymbol, Mapping[str, int], Mapping[str, int]]:
        self._state, output = self.machine.step(self._state, symbol)
        return output, {}, {}

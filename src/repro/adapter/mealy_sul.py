"""A SUL backed directly by a Mealy machine.

Useful for testing learners against known ground truth, for model-based
mutation experiments, and for replaying learned models as simulated
implementations (model-based test generation, paper section 5).
"""

from __future__ import annotations

from typing import Mapping

from ..core.alphabet import AbstractSymbol, Alphabet, parse_tcp_symbol
from ..core.mealy import MealyMachine, mealy_from_table
from ..registry import SUL_REGISTRY
from .sul import SUL


class MealySUL(SUL):
    """Wraps a machine behind the reset/step SUL interface."""

    def __init__(self, machine: MealyMachine, name: str | None = None) -> None:
        super().__init__(machine.input_alphabet, name=name or machine.name)
        self.machine = machine
        self._state = machine.initial_state

    def _reset_impl(self) -> None:
        self._state = self.machine.initial_state

    def _step_impl(
        self, symbol: AbstractSymbol
    ) -> tuple[AbstractSymbol, Mapping[str, int], Mapping[str, int]]:
        self._state, output = self.machine.step(self._state, symbol)
        return output, {}, {}


def toy_machine() -> MealyMachine:
    """A 3-state SYN/ACK lock: listening, established (RSTs a SYN), closed.

    Small enough that any learner converges in well under a second, which
    is what the ``toy`` registry target exists for: CLI smoke tests,
    campaign plumbing tests and quick demos that should not pay for a full
    protocol simulation.
    """
    syn = parse_tcp_symbol("SYN(?,?,0)")
    ack = parse_tcp_symbol("ACK(?,?,0)")
    synack = parse_tcp_symbol("ACK+SYN(?,?,0)")
    rst = parse_tcp_symbol("RST(?,?,0)")
    nil = parse_tcp_symbol("NIL")
    table = [
        ("s0", syn, synack, "s1"),
        ("s0", ack, nil, "s0"),
        ("s1", syn, rst, "s1"),
        ("s1", ack, nil, "s2"),
        ("s2", syn, nil, "s2"),
        ("s2", ack, nil, "s2"),
    ]
    return mealy_from_table("s0", Alphabet.of([syn, ack]), table, name="toy")


@SUL_REGISTRY.register("toy")
def build_toy_sul() -> MealySUL:
    """The built-in toy target (fast; used by CLI smoke tests)."""
    return MealySUL(toy_machine(), name="toy")

"""Adapter layer: SUL interface, pooling, packet queue, protocol adapters."""

from .pool import BatchExecutor, SULPool
from .queue import PacketQueue, QueuedPacket
from .quic_adapter import QUICAdapterSUL, abstract_packet, abstract_response
from .sul import SUL, SULStats
from .tcp_adapter import TCPAdapterSUL, abstract_segment, segment_params

__all__ = [
    "BatchExecutor",
    "PacketQueue",
    "QUICAdapterSUL",
    "QueuedPacket",
    "SUL",
    "SULPool",
    "SULStats",
    "TCPAdapterSUL",
    "abstract_packet",
    "abstract_response",
    "abstract_segment",
    "segment_params",
]

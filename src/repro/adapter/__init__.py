"""Adapter layer: SUL interface, pooling, packet queue, protocol adapters."""

from .executor import (
    BatchExecutor,
    ExecutorBackend,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    build_executor,
)
from .http2_adapter import (
    HTTP2AdapterSUL,
    abstract_frame,
    abstract_frames,
    frame_params,
)
from .pool import SULPool
from .queue import PacketQueue, QueuedPacket
from .quic_adapter import QUICAdapterSUL, abstract_packet, abstract_response
from .remote import (
    RemoteDisconnectError,
    RemoteProtocolError,
    RemoteSULError,
    SocketSUL,
    SubprocessSUL,
    SULTimeoutError,
)
from .sul import SUL, SULStats
from .tcp_adapter import TCPAdapterSUL, abstract_segment, segment_params

__all__ = [
    "BatchExecutor",
    "ExecutorBackend",
    "ExecutorError",
    "HTTP2AdapterSUL",
    "PacketQueue",
    "ProcessExecutor",
    "QUICAdapterSUL",
    "QueuedPacket",
    "RemoteDisconnectError",
    "RemoteProtocolError",
    "RemoteSULError",
    "SerialExecutor",
    "SocketSUL",
    "SubprocessSUL",
    "SUL",
    "SULPool",
    "SULStats",
    "SULTimeoutError",
    "TCPAdapterSUL",
    "ThreadExecutor",
    "abstract_frame",
    "abstract_frames",
    "abstract_packet",
    "abstract_response",
    "abstract_segment",
    "build_executor",
    "frame_params",
    "segment_params",
]

"""Adapter layer: SUL interface, packet queue, protocol adapters."""

from .queue import PacketQueue, QueuedPacket
from .quic_adapter import QUICAdapterSUL, abstract_packet, abstract_response
from .sul import SUL, SULStats
from .tcp_adapter import TCPAdapterSUL, abstract_segment, segment_params

__all__ = [
    "PacketQueue",
    "QUICAdapterSUL",
    "QueuedPacket",
    "SUL",
    "SULStats",
    "TCPAdapterSUL",
    "abstract_packet",
    "abstract_response",
    "abstract_segment",
    "segment_params",
]

"""Adapter layer: SUL interface, pooling, packet queue, protocol adapters."""

from .executor import (
    BatchExecutor,
    ExecutorBackend,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    build_executor,
)
from .h3_adapter import H3AppLayer, build_h3_app, build_http3_sul
from .http2_adapter import (
    HTTP2AdapterSUL,
    HTTP2AppLayer,
    TransportHTTP2Client,
    abstract_frame,
    abstract_frames,
    build_http2_app,
    build_http2_sul,
    frame_params,
)
from .layered import (
    AppLayer,
    LayeredSUL,
    QuicStreamTransport,
    ReliableByteTransport,
    StreamEvent,
    Transport,
    TransportError,
    compose,
)
from .pool import SULPool
from .queue import PacketQueue, QueuedPacket
from .quic_adapter import QUICAdapterSUL, abstract_packet, abstract_response
from .remote import (
    RemoteDisconnectError,
    RemoteProtocolError,
    RemoteSULError,
    SocketSUL,
    SubprocessSUL,
    SULTimeoutError,
)
from .sul import SUL, SULStats
from .tcp_adapter import TCPAdapterSUL, abstract_segment, segment_params

__all__ = [
    "AppLayer",
    "BatchExecutor",
    "ExecutorBackend",
    "ExecutorError",
    "H3AppLayer",
    "HTTP2AdapterSUL",
    "HTTP2AppLayer",
    "LayeredSUL",
    "PacketQueue",
    "ProcessExecutor",
    "QUICAdapterSUL",
    "QueuedPacket",
    "QuicStreamTransport",
    "ReliableByteTransport",
    "RemoteDisconnectError",
    "RemoteProtocolError",
    "RemoteSULError",
    "SerialExecutor",
    "SocketSUL",
    "StreamEvent",
    "SubprocessSUL",
    "SUL",
    "SULPool",
    "SULStats",
    "SULTimeoutError",
    "TCPAdapterSUL",
    "ThreadExecutor",
    "Transport",
    "TransportError",
    "TransportHTTP2Client",
    "abstract_frame",
    "abstract_frames",
    "abstract_packet",
    "abstract_response",
    "abstract_segment",
    "build_executor",
    "build_h3_app",
    "build_http2_app",
    "build_http2_sul",
    "build_http3_sul",
    "compose",
    "frame_params",
    "segment_params",
]

"""Adapter layer: SUL interface, pooling, packet queue, protocol adapters."""

from .http2_adapter import (
    HTTP2AdapterSUL,
    abstract_frame,
    abstract_frames,
    frame_params,
)
from .pool import BatchExecutor, SULPool
from .queue import PacketQueue, QueuedPacket
from .quic_adapter import QUICAdapterSUL, abstract_packet, abstract_response
from .sul import SUL, SULStats
from .tcp_adapter import TCPAdapterSUL, abstract_segment, segment_params

__all__ = [
    "BatchExecutor",
    "HTTP2AdapterSUL",
    "PacketQueue",
    "QUICAdapterSUL",
    "QueuedPacket",
    "SUL",
    "SULPool",
    "SULStats",
    "TCPAdapterSUL",
    "abstract_frame",
    "abstract_frames",
    "abstract_packet",
    "abstract_response",
    "abstract_segment",
    "frame_params",
    "segment_params",
]

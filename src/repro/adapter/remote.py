"""Real-boundary SULs: membership queries over a socket to a server process.

Every other adapter in this repo runs in-process; this module is the
closed-box boundary the paper actually operates at.  A
:class:`SocketSUL` speaks a tiny length-prefixed JSON protocol to a SUL
server (:mod:`repro.adapter.sul_server`) and a :class:`SubprocessSUL`
additionally owns the server's lifecycle: it spawns the process, detects
when it dies or stops answering, respawns it and retries the interrupted
query -- the operational loop a learner needs against a real
implementation that can hang, crash or misbehave.

Wire protocol (one frame per message, both directions)::

    +--------------------+---------------------------------------+
    | 4-byte big-endian  | UTF-8 JSON object, newline-terminated |
    | payload length     | (the newline is part of the length)   |
    +--------------------+---------------------------------------+

Requests are ``{"op": ...}`` objects -- ``hello`` (returns the target's
name and serialized input alphabet), ``reset``, ``step`` (carries a
:func:`~repro.core.alphabet.serialize_symbol` payload; returns the
abstract output plus concrete input/output parameters so the Oracle
Table keeps recording across the boundary) and ``bye``.  Replies carry
``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``.

Failure taxonomy:

* :class:`SULTimeoutError` -- the server did not answer within
  ``timeout_s``.  Recoverable: the worker is killed/abandoned, respawned
  and the whole query retried (``retries`` times, default once).
* :class:`RemoteDisconnectError` -- the connection dropped (server
  crashed mid-word).  Recoverable the same way.
* :class:`RemoteProtocolError` -- the server answered with something
  that is not the protocol (garbage bytes, malformed frame).  *Not*
  retried: a confused peer must surface as a clean diagnostic, not be
  hammered until it accidentally parses.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import subprocess
import sys
import time
from pathlib import Path
from typing import Mapping, Sequence

from ..core.alphabet import (
    AbstractSymbol,
    Alphabet,
    SymbolError,
    deserialize_symbol,
    serialize_symbol,
)
from ..core.trace import Word
from ..registry import SUL_REGISTRY
from .sul import SUL

#: Startup banner the server prints on stdout once it is listening.
SERVER_BANNER = "PROGNOSIS-SUL-SERVER"
_HEADER = struct.Struct(">I")
#: Upper bound on a single frame; anything larger is a framing error,
#: not a legitimate protocol message.
MAX_FRAME = 1 << 20


class RemoteSULError(RuntimeError):
    """Base class for failures at the socket boundary."""


class SULTimeoutError(RemoteSULError):
    """The server did not answer a request within ``timeout_s``."""


class RemoteDisconnectError(RemoteSULError):
    """The connection to the server dropped (crash, kill, network)."""


class RemoteProtocolError(RemoteSULError):
    """The peer sent bytes that are not the wire protocol."""


# -- framing ---------------------------------------------------------------
def send_frame(sock: socket.socket, payload: Mapping) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exactly(sock: socket.socket, size: int) -> bytes:
    buf = bytearray()
    while len(buf) < size:
        chunk = sock.recv(size - len(buf))
        if not chunk:
            raise RemoteDisconnectError("connection closed by peer")
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock: socket.socket) -> dict:
    (length,) = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
    if not 0 < length <= MAX_FRAME:
        raise RemoteProtocolError(f"implausible frame length {length}")
    body = _recv_exactly(sock, length)
    if not body.endswith(b"\n"):
        raise RemoteProtocolError(f"frame not newline-terminated: {body[:64]!r}")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise RemoteProtocolError(f"frame is not JSON: {body[:64]!r}") from None
    if not isinstance(message, dict):
        raise RemoteProtocolError(f"frame is not an object: {message!r}")
    return message


class SocketSUL(SUL):
    """A SUL whose reset/step run on a server across a TCP socket.

    The constructor connects, performs the ``hello`` exchange and adopts
    the server's input alphabet, so a remote target drops into the
    learner stack exactly like an in-process adapter.  A query
    interrupted by a timeout or disconnect is retried ``retries`` times
    (whole-word retry after :meth:`_recover`, so the extra resets land in
    ``stats.resets`` like any other reset the boundary cost us).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float | None = 5.0,
        retries: int = 1,
        name: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        #: Times a dead/hung server was replaced (reconnect or respawn).
        self.respawns = 0
        self._sock: socket.socket | None = None
        self._connect()
        hello = self._rpc({"op": "hello"})
        alphabet = Alphabet.of(
            [deserialize_symbol(entry) for entry in hello["alphabet"]]
        )
        super().__init__(
            alphabet, name=name or f"socket-{hello.get('name', 'sul')}"
        )

    # -- connection management --------------------------------------------
    def _connect(self, attempts: int = 40, backoff_s: float = 0.05) -> None:
        last: Exception | None = None
        for _ in range(attempts):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
                sock.settimeout(self.timeout_s)
                self._sock = sock
                return
            except OSError as exc:  # server still starting / just died
                last = exc
                time.sleep(backoff_s)
        raise RemoteDisconnectError(
            f"cannot connect to SUL server at {self.host}:{self.port}: {last}"
        ) from last

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None

    def _respawn_server(self) -> None:
        """Replace the dead/hung server.  The plain socket client cannot
        restart a process it does not own; it reconnects and lets the
        server's accept loop hand the fresh connection to a live handler."""

    def _recover(self) -> None:
        self.respawns += 1
        self._drop_connection()
        self._respawn_server()
        self._connect()
        self._rpc({"op": "hello"})  # re-handshake proves the worker is live

    # -- request/reply -----------------------------------------------------
    def _rpc(self, payload: Mapping) -> dict:
        if self._sock is None:
            raise RemoteDisconnectError("not connected")
        try:
            send_frame(self._sock, payload)
            reply = recv_frame(self._sock)
        except TimeoutError as exc:  # socket.timeout
            raise SULTimeoutError(
                f"no reply to {payload.get('op')!r} within {self.timeout_s}s"
            ) from exc
        except RemoteSULError:
            raise
        except OSError as exc:
            raise RemoteDisconnectError(f"connection lost: {exc}") from exc
        if not reply.get("ok", False):
            raise RemoteSULError(
                f"server rejected {payload.get('op')!r}: {reply.get('error')}"
            )
        return reply

    # -- SUL interface ------------------------------------------------------
    def _reset_impl(self) -> None:
        self._rpc({"op": "reset"})

    def _step_impl(
        self, symbol: AbstractSymbol
    ) -> tuple[AbstractSymbol, Mapping[str, int], Mapping[str, int]]:
        reply = self._rpc({"op": "step", "symbol": serialize_symbol(symbol)})
        try:
            output = deserialize_symbol(reply["output"])
        except (KeyError, SymbolError) as exc:
            raise RemoteProtocolError(f"bad step reply: {reply!r}") from exc
        return output, reply.get("in_params", {}), reply.get("out_params", {})

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        for attempt in range(self.retries + 1):
            try:
                return super().query(word)
            except (SULTimeoutError, RemoteDisconnectError):
                if attempt == self.retries:
                    raise
                # The failed attempt's reset/steps stay counted -- they
                # happened on the wire -- but the retry re-runs this same
                # membership query, so it is not counted twice.
                self.stats.queries -= 1
                self._recover()
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        if self._sock is not None:
            try:
                send_frame(self._sock, {"op": "bye"})
            except OSError:  # pragma: no cover - bye is best-effort
                pass
        self._drop_connection()


class SubprocessSUL(SocketSUL):
    """A :class:`SocketSUL` that owns its server process.

    Spawns ``python -m repro.adapter.sul_server`` wrapping a registry
    target, reads the listening port from the startup banner, and on
    timeout/disconnect kills the worker, starts a fresh one and retries
    the query -- dead-worker detection and automatic respawn in one
    place.  The server watches its stdin and exits when this parent dies,
    so no orphan processes outlive a crashed run.
    """

    def __init__(
        self,
        target: str = "tcp",
        params: Mapping | None = None,
        *,
        timeout_s: float | None = 5.0,
        retries: int = 1,
        server_args: Sequence[str] = (),
        name: str | None = None,
    ) -> None:
        self.target = target
        self.params = dict(params or {})
        self.server_args = tuple(server_args)
        self._proc: subprocess.Popen | None = None
        port = self._spawn()
        super().__init__(
            "127.0.0.1",
            port,
            timeout_s=timeout_s,
            retries=retries,
            name=name or f"remote-{target}",
        )

    def _spawn(self) -> int:
        env = os.environ.copy()
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        cmd = [
            sys.executable,
            "-m",
            "repro.adapter.sul_server",
            "--target",
            self.target,
            "--params",
            json.dumps(self.params),
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            *self.server_args,
        ]
        self._proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env
        )
        banner = self._proc.stdout.readline().decode("utf-8", "replace").strip()
        if not banner.startswith(SERVER_BANNER):
            code = self._proc.poll()
            raise RemoteDisconnectError(
                f"SUL server failed to start (exit={code}): {banner!r}"
            )
        self.port = int(banner.rsplit("port=", 1)[1])
        return self.port

    def _kill_server(self) -> None:
        proc, self._proc = self._proc, None
        if proc is None:
            return
        proc.terminate()
        try:
            proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
            proc.kill()
            proc.wait()

    def _respawn_server(self) -> None:
        self._kill_server()
        self._spawn()

    def close(self) -> None:
        super().close()
        self._kill_server()


# -- registry targets ------------------------------------------------------
@SUL_REGISTRY.register("remote")
def build_remote_sul(
    target: str = "tcp",
    seed: int = 3,
    timeout_s: float = 5.0,
    step_delay: float = 0.0,
) -> SubprocessSUL:
    """Any registry target served over the real process/socket boundary.

    ``remote`` with ``target="tcp"`` is the reference external
    implementation the ISSUE asks for: the TCP simulator running in its
    own process, reached only through the wire protocol.
    """
    args: list[str] = []
    if step_delay:
        args += ["--step-delay", str(step_delay)]
    return SubprocessSUL(
        target, {"seed": seed}, timeout_s=timeout_s, server_args=args
    )


@SUL_REGISTRY.register("remote-tcp")
def build_remote_tcp_sul(
    seed: int = 3, timeout_s: float = 5.0, step_delay: float = 0.0
) -> SubprocessSUL:
    """The TCP simulator behind the socket boundary (family ``remote``)."""
    return build_remote_sul(
        target="tcp", seed=seed, timeout_s=timeout_s, step_delay=step_delay
    )

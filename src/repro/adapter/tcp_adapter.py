"""The TCP adapter: translation pair (alpha, gamma) for TCP.

The abstraction function ``alpha`` maps concrete segments to flag-level
symbols (``SYN(?,?,0)``); the concretization ``gamma`` is delegated to the
instrumented reference client (:class:`repro.tcp.client.TCPClient`), which
owns the sequence-number logic -- the paper's ~300-line instrumentation
versus the 2,700-line hand-written mapper of prior work.
"""

from __future__ import annotations

from typing import Mapping

from ..core.alphabet import Alphabet, TCP_NIL, TCPSymbol, tcp_alphabet, tcp_handshake_alphabet
from ..netsim import LinkConfig, PERFECT_LINK, SimulatedNetwork
from ..registry import SUL_REGISTRY
from ..tcp.client import TCPClient
from ..tcp.segment import TCPSegment
from ..tcp.server import TCPServer, TCPServerConfig
from .sul import SUL


def abstract_segment(segment: TCPSegment) -> TCPSymbol:
    """The abstraction function alpha for one segment."""
    return TCPSymbol.make(
        sorted(segment.flags), payload_len=min(len(segment.payload), 1)
    )


def segment_params(segment: TCPSegment) -> dict[str, int]:
    """Concrete numeric view of a segment for the Oracle Table.

    ``sn``/``an`` follow the paper's naming in section 4.3.
    """
    return {
        "sn": segment.seq_number,
        "an": segment.ack_number,
        "plen": len(segment.payload),
    }


class TCPAdapterSUL(SUL):
    """SUL wiring a Linux-like TCP server to the reference client."""

    def __init__(
        self,
        alphabet: Alphabet | None = None,
        link: LinkConfig = PERFECT_LINK,
        seed: int = 3,
        server_config: TCPServerConfig | None = None,
        relative_numbers: bool = True,
    ) -> None:
        super().__init__(alphabet or tcp_alphabet(), name="tcp")
        self.network = SimulatedNetwork(seed=seed, config=link)
        self.server = TCPServer(self.network, config=server_config, seed=seed + 1)
        self.client = TCPClient(
            self.network,
            self.server.endpoint.address,
            seed=seed + 2,
        )
        #: When True, sequence/ack numbers in the Oracle Table are rebased
        #: to the client ISS so synthesized terms stay in small integers.
        self.relative_numbers = relative_numbers
        self._base = 0
        self._server_base: int | None = None

    def _reset_impl(self) -> None:
        self.server.reset()
        self.client.reset()
        self._base = self.client.iss
        self._server_base = None

    def _step_impl(self, symbol):
        if not isinstance(symbol, TCPSymbol):
            raise TypeError(f"TCP adapter got non-TCP symbol: {symbol}")
        sent, responses = self.client.exchange(symbol.flags, symbol.payload_len)
        in_params = self._rebase(segment_params(sent), is_client=True)
        if not responses:
            return TCP_NIL, in_params, {}
        first = responses[0]
        if self._server_base is None and "SYN" in first.flags:
            self._server_base = first.seq_number
        out_params = self._rebase(segment_params(first), is_client=False)
        return abstract_segment(first), in_params, out_params

    def _rebase(self, params: Mapping[str, int], is_client: bool) -> dict[str, int]:
        if not self.relative_numbers:
            return dict(params)
        rebased = dict(params)
        seq_base = self._base if is_client else (self._server_base or 0)
        ack_base = (self._server_base or 0) if is_client else self._base
        rebased["sn"] = params["sn"] - seq_base
        if params["an"]:
            rebased["an"] = params["an"] - ack_base
        return rebased

    def close(self) -> None:
        self.client.close()
        self.server.close()


@SUL_REGISTRY.register("tcp")
def build_tcp_sul(
    seed: int = 3,
    relative_numbers: bool = True,
    challenge_ack_rate_limit: bool = True,
) -> TCPAdapterSUL:
    """The full 7-symbol Linux-like TCP target (paper section 6.1).

    ``challenge_ack_rate_limit=False`` disables the Linux challenge-ACK
    rate limiter (the ablation of :class:`~repro.tcp.server
    .TCPServerConfig`), collapsing the learned model -- a variant the
    differential campaigns compare against the default.
    """
    return TCPAdapterSUL(
        seed=seed,
        relative_numbers=relative_numbers,
        server_config=TCPServerConfig(
            challenge_ack_rate_limit=challenge_ack_rate_limit
        ),
    )


@SUL_REGISTRY.register("tcp-no-challenge-ack")
def build_tcp_no_challenge_ack_sul(
    seed: int = 3, relative_numbers: bool = True
) -> TCPAdapterSUL:
    """The ``tcp`` target with the challenge-ACK rate limiter disabled.

    Registered in its own right so the ablation is reachable by name from
    the CLI (``repro difftest tcp`` compares it against the default stack).
    """
    return build_tcp_sul(
        seed=seed,
        relative_numbers=relative_numbers,
        challenge_ack_rate_limit=False,
    )


@SUL_REGISTRY.register("tcp-handshake")
def build_tcp_handshake_sul(seed: int = 3) -> TCPAdapterSUL:
    """The 2-symbol handshake fragment of Fig. 3."""
    return TCPAdapterSUL(alphabet=tcp_handshake_alphabet(), seed=seed)

"""The HTTP/2 adapter: translation pair (alpha, gamma) for HTTP/2.

The abstraction function ``alpha`` maps a concrete frame to its type and
flag set (``HEADERS[END_HEADERS,END_STREAM]``) and a whole response -- the
ordered frame sequence the server wrote to the byte stream -- to an
:class:`~repro.core.alphabet.HTTP2Output`.  The concretization ``gamma``
is delegated to the reference client
(:class:`repro.http2.client.HTTP2Client`), which owns the connection
preface, stream-id allocation and HPACK logic -- the third instance of the
paper's ~300-line-adapter claim, sharing every learner/oracle layer with
the TCP and QUIC targets.
"""

from __future__ import annotations

from ..core.alphabet import (
    AbstractSymbol,
    Alphabet,
    HTTP2_EMPTY_OUTPUT,
    HTTP2Output,
    HTTP2Symbol,
    http2_alphabet,
)
from ..http2.client import HTTP2Client, HTTP2ClientConfig
from ..http2.frames import Frame, FrameType, parse_goaway, parse_rst_stream
from ..http2.server import HTTP2Server, HTTP2ServerConfig
from ..netsim import LinkConfig, PERFECT_LINK, SimulatedNetwork
from ..registry import SUL_REGISTRY
from .layered import (
    AppLayer,
    LayeredSUL,
    ReliableByteTransport,
    StreamEvent,
    Transport,
    compose,
)
from .sul import SUL


def abstract_frame(frame: Frame) -> HTTP2Symbol:
    """The abstraction function alpha for one frame."""
    return HTTP2Symbol.make(FrameType(frame.frame_type).name, frame.flag_names())


def abstract_frames(frames: list[Frame]) -> HTTP2Output:
    """alpha lifted to a whole response (an ordered frame sequence).

    Named distinctly from :func:`repro.adapter.quic_adapter
    .abstract_response` (which expects QUIC packets) so both can be
    exported from :mod:`repro.adapter` without shadowing.
    """
    if not frames:
        return HTTP2_EMPTY_OUTPUT
    return HTTP2Output.make(abstract_frame(f) for f in frames)


def frame_params(frame: Frame) -> dict[str, int]:
    """Concrete numeric view of a frame for the Oracle Table.

    ``sid`` feeds the stream-id monotonicity check; ``err`` carries the
    RST_STREAM/GOAWAY error code the abstraction drops.
    """
    params = {"sid": frame.stream_id, "plen": len(frame.payload)}
    if frame.frame_type == FrameType.RST_STREAM:
        params["err"] = parse_rst_stream(frame)
    elif frame.frame_type == FrameType.GOAWAY:
        last_stream_id, error_code = parse_goaway(frame)
        params["err"] = error_code
        params["last_sid"] = last_stream_id
    return params


class HTTP2AdapterSUL(SUL):
    """SUL wiring the in-process HTTP/2 server to the reference client."""

    def __init__(
        self,
        alphabet: Alphabet | None = None,
        link: LinkConfig = PERFECT_LINK,
        seed: int = 9,
        server_config: HTTP2ServerConfig | None = None,
    ) -> None:
        super().__init__(alphabet or http2_alphabet(), name="http2")
        self.network = SimulatedNetwork(seed=seed, config=link)
        self.server = HTTP2Server(self.network, config=server_config, seed=seed + 1)
        self.client = HTTP2Client(
            self.network,
            self.server.endpoint.address,
            seed=seed + 2,
        )

    def _reset_impl(self) -> None:
        self.server.reset()
        self.client.reset()

    def _step_impl(self, symbol):
        if not isinstance(symbol, HTTP2Symbol):
            raise TypeError(f"HTTP/2 adapter got non-HTTP/2 symbol: {symbol}")
        sent, responses = self.client.exchange(symbol.kind, symbol.flags)
        in_params = frame_params(sent)
        out_params: dict[str, int] = {}
        for frame in responses:
            # Later frames override earlier ones only for fields they
            # actually carry (the GOAWAY error code is what the property
            # checks consume).
            out_params.update(frame_params(frame))
        return abstract_frames(responses), in_params, out_params

    def close(self) -> None:
        self.client.close()
        self.server.close()


class TransportHTTP2Client(HTTP2Client):
    """The reference client with its bytes routed over a composed transport.

    Identical protocol logic; only ``_transmit`` differs -- request bytes
    ride stream 0 of the transport instead of a network endpoint, and the
    response chunks come back as transport events.
    """

    def __init__(
        self,
        transport: Transport,
        config: HTTP2ClientConfig | None = None,
        seed: int = 11,
    ) -> None:
        self._transport = transport
        super().__init__(config=config, seed=seed)

    def _transmit(self, payload: bytes) -> list[bytes]:
        self._transport.send(0, payload)
        return [
            event.data
            for event in self._transport.exchange()
            if event.kind == "data"
        ]


class HTTP2AppLayer(AppLayer):
    """HTTP/2 protocol logic riding a reliable byte transport.

    The same server/client pair as :class:`HTTP2AdapterSUL`, but wired
    through the layered-adapter API: the server consumes stream-0 events
    via :meth:`~repro.http2.server.HTTP2Server.process_bytes` and the
    client transmits through the transport.  Under a perfect link the
    learned model is byte-identical to the monolithic adapter's.
    """

    name = "http2"

    def __init__(
        self,
        transport: Transport,
        seed: int = 9,
        server_config: HTTP2ServerConfig | None = None,
    ) -> None:
        self.alphabet = http2_alphabet()
        self.transport = transport
        self.server = HTTP2Server(config=server_config, seed=seed + 1)
        self.client = TransportHTTP2Client(transport, seed=seed + 2)
        transport.set_server(self._serve)

    def _serve(self, event: StreamEvent) -> list[StreamEvent]:
        if event.kind != "data":
            return []
        response = self.server.process_bytes(event.data)
        if not response:
            return []
        return [StreamEvent(stream_id=0, kind="data", data=response)]

    def reset(self) -> None:
        self.server.reset()
        self.client.reset()

    def step(self, symbol: AbstractSymbol):
        if not isinstance(symbol, HTTP2Symbol):
            raise TypeError(f"HTTP/2 adapter got non-HTTP/2 symbol: {symbol}")
        sent, responses = self.client.exchange(symbol.kind, symbol.flags)
        in_params = frame_params(sent)
        out_params: dict[str, int] = {}
        for frame in responses:
            out_params.update(frame_params(frame))
        return abstract_frames(responses), in_params, out_params

    def close(self) -> None:
        self.client.close()
        self.server.close()


def build_http2_app(
    transport: Transport,
    seed: int = 9,
    rst_on_closed_bug: bool = False,
    server_config: HTTP2ServerConfig | dict | None = None,
) -> HTTP2AppLayer:
    """The HTTP/2 app layer for :func:`~repro.adapter.layered.compose`.

    ``server_config`` accepts either an :class:`HTTP2ServerConfig` or a
    plain dict of its fields, so JSON experiment specs can configure the
    server (``{"rst_on_closed_bug": true}``); the ``rst_on_closed_bug``
    shorthand toggles the quirk without spelling out a config.
    """
    if isinstance(server_config, dict):
        server_config = HTTP2ServerConfig(**server_config)
    if server_config is None:
        server_config = HTTP2ServerConfig(rst_on_closed_bug=rst_on_closed_bug)
    elif rst_on_closed_bug:
        server_config.rst_on_closed_bug = True
    return HTTP2AppLayer(transport, seed=seed, server_config=server_config)


#: ``http2``: the HTTP/2 app composed over the reliable byte pipe.  Same
#: learned model as :class:`HTTP2AdapterSUL` (regression-tested), but the
#: stack is now declared with the layered-adapter API.
build_http2_sul = compose(ReliableByteTransport, build_http2_app, name="http2")
SUL_REGISTRY.register("http2", build_http2_sul)


@SUL_REGISTRY.register("http2-buggy")
def build_http2_buggy_sul(seed: int = 9) -> LayeredSUL:
    """The HTTP/2 target with the seeded RST_STREAM-on-closed-stream bug."""
    return build_http2_sul(seed=seed, rst_on_closed_bug=True)

"""The QUIC adapter: translation pair (alpha, gamma) for QUIC.

``alpha`` abstracts a concrete packet to its type and frame-kind set
(``INITIAL(?,?)[CRYPTO]``); a response -- possibly several packets -- maps
to a :class:`~repro.core.alphabet.QUICOutput` multiset, rendered exactly
like the appendix figures.  ``gamma`` is delegated to the instrumented
QUIC-Tracker-like reference client, which owns key derivation, packet
numbering, stream offsets and flow-control values (the logic the paper
argues is "close to impossible" to hand-write for QUIC).
"""

from __future__ import annotations

from typing import Callable

from ..core.alphabet import (
    Alphabet,
    QUICOutput,
    QUICSymbol,
    QUIC_EMPTY_OUTPUT,
    quic_alphabet,
)
from ..netsim import LinkConfig, PERFECT_LINK, SimulatedNetwork
from ..quic.connection import QUICServer
from ..quic.impls.google import google_server
from ..quic.impls.mvfst import mvfst_server
from ..quic.impls.quiche import quiche_server
from ..quic.impls.tracker import ConcretePacket, TrackerClient, TrackerConfig
from ..registry import SUL_REGISTRY
from .sul import SUL

ServerFactory = Callable[[SimulatedNetwork], QUICServer]

#: Named server implementations a spec can target (``quic-<name>``).
SERVER_FACTORIES: dict[str, Callable[..., QUICServer]] = {
    "google": google_server,
    "quiche": quiche_server,
    "mvfst": mvfst_server,
}


def abstract_packet(packet: ConcretePacket) -> QUICSymbol:
    """The abstraction function alpha for one packet."""
    return QUICSymbol.make(packet.packet_type, packet.kinds())


def abstract_response(packets: list[ConcretePacket]) -> QUICOutput:
    """alpha lifted to a whole response (a multiset of packets)."""
    if not packets:
        return QUIC_EMPTY_OUTPUT
    return QUICOutput.make(abstract_packet(p) for p in packets)


class QUICAdapterSUL(SUL):
    """SUL wiring a simulated QUIC server to the reference client."""

    def __init__(
        self,
        server_factory: ServerFactory,
        alphabet: Alphabet | None = None,
        link: LinkConfig = PERFECT_LINK,
        seed: int = 5,
        tracker_config: TrackerConfig | None = None,
    ) -> None:
        super().__init__(alphabet or quic_alphabet(), name="quic")
        self.network = SimulatedNetwork(seed=seed, config=link)
        self.server = server_factory(self.network)
        self.client = TrackerClient(
            self.network,
            self.server.endpoint.address,
            config=tracker_config,
            seed=seed + 2,
        )

    def _reset_impl(self) -> None:
        self.server.reset()
        self.client.reset()

    def _step_impl(self, symbol):
        if not isinstance(symbol, QUICSymbol):
            raise TypeError(f"QUIC adapter got non-QUIC symbol: {symbol}")
        sent, responses = self.client.exchange(symbol.packet_type, symbol.frames)
        in_params = TrackerClient.packet_params(sent)
        out_params: dict[str, int] = {}
        for packet in responses:
            # Later packets override earlier ones only for fields they
            # actually carry; STREAM_DATA_BLOCKED's value (Issue 4) and
            # packet numbers are what the synthesizer consumes.
            out_params.update(TrackerClient.packet_params(packet))
        return abstract_response(responses), in_params, out_params

    def close(self) -> None:
        self.client.close()
        self.server.close()


def build_quic_sul(
    implementation: str,
    seed: int = 5,
    retry_enabled: bool = False,
    tracker_config: TrackerConfig | dict | None = None,
) -> QUICAdapterSUL:
    """Build the SUL for one named QUIC server implementation.

    ``tracker_config`` accepts either a :class:`TrackerConfig` or a plain
    dict of its fields, so JSON experiment specs can configure the
    reference client (``{"retry_port_bug": true}``).
    """
    try:
        factory = SERVER_FACTORIES[implementation]
    except KeyError:
        known = ", ".join(sorted(SERVER_FACTORIES))
        raise ValueError(
            f"unknown QUIC implementation {implementation!r}; known: {known}"
        ) from None
    if isinstance(tracker_config, dict):
        tracker_config = TrackerConfig(**tracker_config)

    def build(network: SimulatedNetwork) -> QUICServer:
        return factory(network, retry_enabled=retry_enabled, seed=seed + 11)

    return QUICAdapterSUL(build, seed=seed, tracker_config=tracker_config)


def _register_quic_targets() -> None:
    for implementation in SERVER_FACTORIES:

        def build(
            seed: int = 5,
            retry_enabled: bool = False,
            tracker_config: TrackerConfig | dict | None = None,
            _implementation: str = implementation,
        ) -> QUICAdapterSUL:
            return build_quic_sul(
                _implementation,
                seed=seed,
                retry_enabled=retry_enabled,
                tracker_config=tracker_config,
            )

        build.__doc__ = f"The simulated {implementation} QUIC server target."
        SUL_REGISTRY.register(f"quic-{implementation}", build)


_register_quic_targets()

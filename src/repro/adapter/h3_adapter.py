"""The HTTP/3-over-QUIC-streams SUL: the first *composed* target.

Unlike the three monolithic adapters before it, the HTTP/3 target is
declared with :func:`~repro.adapter.layered.compose`: a
:class:`~repro.adapter.layered.QuicStreamTransport` carries the streams,
and :class:`H3AppLayer` holds the protocol logic -- concretizing abstract
symbols through :class:`~repro.h3.H3Client`, serving them with
:class:`~repro.h3.H3Server`, and abstracting the per-stream responses
into :class:`~repro.core.alphabet.H3Output` multisets.

Registered targets:

* ``http3`` -- the conformant server;
* ``http3-buggy`` -- the seeded ``goaway_teardown_bug`` quirk (the
  server answers a client GOAWAY correctly but then tears the
  connection down instead of draining).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from ..core.alphabet import (
    AbstractSymbol,
    H3_EMPTY_OUTPUT,
    H3Output,
    H3Symbol,
    h3_alphabet,
)
from ..h3 import (
    H3Action,
    H3Client,
    H3ClientConfig,
    H3Server,
    H3ServerConfig,
)
from ..registry import SUL_REGISTRY
from .layered import (
    AppLayer,
    LayeredSUL,
    QuicStreamTransport,
    StreamEvent,
    Transport,
    compose,
)


def _action_to_event(action: H3Action) -> StreamEvent:
    if action.reset:
        return StreamEvent(
            stream_id=action.stream_id, kind="reset", error_code=action.error_code
        )
    return StreamEvent(
        stream_id=action.stream_id, kind="data", data=action.data, fin=action.fin
    )


class H3AppLayer(AppLayer):
    """HTTP/3 protocol logic riding any stream-capable transport."""

    name = "http3"

    def __init__(
        self,
        transport: Transport,
        seed: int = 8,
        server_config: H3ServerConfig | None = None,
        client_config: H3ClientConfig | None = None,
    ) -> None:
        self.alphabet = h3_alphabet()
        self.transport = transport
        self.server = H3Server(config=server_config, seed=seed + 1)
        self.client = H3Client(config=client_config, seed=seed + 2)
        transport.set_server(self._serve)

    # -- server side -----------------------------------------------------
    def _serve(self, event: StreamEvent) -> list[StreamEvent]:
        if event.kind == "reset":
            actions = self.server.handle_reset(event.stream_id, event.error_code)
        else:
            actions = self.server.handle_data(event.stream_id, event.data, event.fin)
        return [_action_to_event(action) for action in actions]

    # -- SUL protocol ----------------------------------------------------
    def reset(self) -> None:
        self.server.reset()
        self.client.reset()

    def step(self, symbol: AbstractSymbol):
        if not isinstance(symbol, H3Symbol):
            raise TypeError(f"HTTP/3 adapter got non-HTTP/3 symbol: {symbol}")
        actions, in_params = self.client.build(
            symbol.kind, getattr(symbol, "fin", False)
        )
        for action in actions:
            if action.reset:
                self.transport.reset_stream(action.stream_id, action.error_code)
            else:
                self.transport.send(action.stream_id, action.data, fin=action.fin)
        events = self.transport.exchange()
        output = self.abstract_events(events)
        out_params = {"err": self.server.last_error}
        return output, in_params, out_params

    # -- abstraction -----------------------------------------------------
    def abstract_events(self, events: list[StreamEvent]) -> H3Output:
        """Render transport events as the per-stream frame multiset."""
        sequences: dict[int, list[H3Symbol]] = {}
        finished: set[int] = set()
        for event in events:
            sequence = sequences.setdefault(event.stream_id, [])
            if event.kind == "reset":
                sequence.append(H3Symbol.make("RST"))
                continue
            frames = self.client.decode_stream_data(event.stream_id, event.data)
            sequence.extend(H3Symbol.make(frame.kind) for frame in frames)
            if event.fin:
                finished.add(event.stream_id)
        streams = []
        for stream_id in sorted(sequences):
            sequence = sequences[stream_id]
            if not sequence:
                continue  # type-only or still-buffered partial data
            if stream_id in finished:
                sequence[-1] = H3Symbol.make(sequence[-1].kind, fin=True)
            streams.append(sequence)
        if not streams:
            return H3_EMPTY_OUTPUT
        return H3Output.make(streams)


def build_h3_app(
    transport: Transport,
    seed: int = 8,
    goaway_teardown_bug: bool = False,
    server_config: H3ServerConfig | Mapping | None = None,
) -> H3AppLayer:
    """The HTTP/3 app layer for :func:`compose`.

    ``server_config`` accepts an :class:`H3ServerConfig` or a plain dict
    of its fields (JSON specs); ``goaway_teardown_bug`` toggles the
    seeded quirk without spelling out a config.
    """
    if isinstance(server_config, Mapping):
        server_config = H3ServerConfig(**server_config)
    if server_config is None:
        server_config = H3ServerConfig(goaway_teardown_bug=goaway_teardown_bug)
    elif goaway_teardown_bug:
        server_config = replace(server_config, goaway_teardown_bug=True)
    return H3AppLayer(transport, seed=seed, server_config=server_config)


#: ``http3``: H3 app composed over QUIC-style independent streams.
build_http3_sul = compose(QuicStreamTransport, build_h3_app, name="http3")
SUL_REGISTRY.register("http3", build_http3_sul)


@SUL_REGISTRY.register("http3-buggy")
def build_http3_buggy_sul(**params) -> LayeredSUL:
    """The HTTP/3 target with the seeded GOAWAY-teardown bug."""
    return build_http3_sul(goaway_teardown_bug=True, **params)

"""Parallel SUL execution: a pool of identical SUL instances.

Membership queries are independent of each other (each starts with a
reset), so a batch of words can be fanned out across several SUL instances
and executed concurrently.  :class:`SULPool` looks like a single
:class:`~repro.adapter.sul.SUL` to the oracle stack but answers
``query_batch`` by dispatching onto N workers built by a ``sul_factory``.

Results are always returned in submission order, worker Oracle Tables are
merged into the pool's table after every batch, and the pool's
:class:`~repro.adapter.sul.SULStats` is the sum over all workers -- so the
accounting the paper tables report (queries, steps, resets) is identical
whether a run was serial or pooled.

The speedup comes from queries that wait on the implementation (network
round-trips, subprocess turnarounds): those release the GIL, so a thread
pool scales with worker count.  Pure in-process simulations stay correct
but gain little -- exactly the trade a closed-box tool wants, since real
SULs are always I/O bound.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping, Sequence

from ..core.alphabet import AbstractSymbol
from ..core.oracle_table import OracleEntry
from ..core.trace import Word
from .sul import SUL


class BatchExecutor:
    """Order-preserving fan-out of callables over a bounded thread pool.

    A thin wrapper so the pool (and tests) have one place that owns thread
    lifecycle; ``workers == 1`` short-circuits to a plain loop with no
    threads at all, making the serial path byte-identical to pre-pool code.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item; results in submission order."""
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="sul-pool"
            )
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class SULPool(SUL):
    """N identical SULs behind the single-SUL interface.

    A batch is sharded deterministically: word ``i`` always runs on worker
    ``i mod n`` (``n`` = active workers for the batch), each worker's shard
    on its own thread.  Deterministic assignment matters beyond taste --
    for SULs whose RNG state persists across resets (mvfst's stateless
    resets), a timing-dependent assignment would make the observed
    response distribution vary between identically-seeded runs.  Every
    worker is built by the same ``sul_factory`` and must behave
    identically, so for deterministic SULs the pool's answers do not
    depend on the assignment at all.
    """

    def __init__(
        self,
        sul_factory: Callable[[], SUL],
        workers: int = 4,
        name: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        suls = [sul_factory() for _ in range(workers)]
        super().__init__(suls[0].input_alphabet, name=name or f"{suls[0].name}-pool")
        self.workers = workers
        self._suls = suls
        self._executor = BatchExecutor(workers)

    # -- batched execution -------------------------------------------------
    def query_batch(self, words: Sequence[Sequence[AbstractSymbol]]) -> list[Word]:
        words = [tuple(word) for word in words]
        if not words:
            return []
        shards = min(self.workers, len(words))

        def run_shard(index: int) -> list[tuple[Word, OracleEntry | None]]:
            sul = self._suls[index]
            return [
                (sul.query(word), sul.oracle_table.lookup(word))
                for word in words[index::shards]
            ]

        results: list[tuple[Word, OracleEntry | None] | None] = [None] * len(words)
        for index, shard in enumerate(
            self._executor.map(run_shard, list(range(shards)))
        ):
            for position, outcome in zip(range(index, len(words), shards), shard):
                results[position] = outcome
        answers: list[Word] = []
        for outputs, entry in results:  # type: ignore[misc]
            if entry is not None:
                self.oracle_table.merge(entry)
            answers.append(outputs)
        self._refresh_stats()
        return answers

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        return self.query_batch([word])[0]

    # -- single-instance interface (random walks, distribution sampling) --
    def reset(self) -> None:
        self._suls[0].reset()
        self._refresh_stats()

    def step(self, symbol: AbstractSymbol) -> AbstractSymbol:
        output = self._suls[0].step(symbol)
        self._refresh_stats()
        return output

    def _reset_impl(self) -> None:  # pragma: no cover - routed via reset()
        self._suls[0]._reset_impl()

    def _step_impl(
        self, symbol: AbstractSymbol
    ) -> tuple[AbstractSymbol, Mapping[str, int], Mapping[str, int]]:  # pragma: no cover
        return self._suls[0]._step_impl(symbol)

    # -- accounting --------------------------------------------------------
    def _refresh_stats(self) -> None:
        """The pool's stats are the sum over its workers."""
        self.stats.queries = sum(sul.stats.queries for sul in self._suls)
        self.stats.steps = sum(sul.stats.steps for sul in self._suls)
        self.stats.resets = sum(sul.stats.resets for sul in self._suls)

    def per_worker_queries(self) -> list[int]:
        """Query count per worker (load-balance visibility for benchmarks)."""
        return [sul.stats.queries for sul in self._suls]

    def close(self) -> None:
        self._executor.close()
        for sul in self._suls:
            close = getattr(sul, "close", None)
            if callable(close):
                close()

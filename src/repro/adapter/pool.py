"""Parallel SUL execution: a pool of identical SUL instances.

Membership queries are independent of each other (each starts with a
reset), so a batch of words can be fanned out across several SUL instances
and executed concurrently.  :class:`SULPool` looks like a single
:class:`~repro.adapter.sul.SUL` to the oracle stack but answers
``query_batch`` by dispatching onto N workers built by a ``sul_factory``.

The pool runs on a pluggable :class:`~repro.adapter.executor
.ExecutorBackend`:

* ``thread`` (default) -- N SUL instances in-process, one shard per pool
  thread.  Scales for queries that wait on I/O (network round-trips,
  subprocess turnarounds, the :class:`~repro.adapter.remote.SocketSUL`
  boundary); pure-Python simulators stay correct but gain little, because
  the GIL serializes them.
* ``process`` -- N worker *processes*, each building its own SUL from the
  (picklable) ``sul_factory`` in the child.  Shard results -- outputs,
  Oracle-Table entries and an :class:`~repro.adapter.sul.SULStats` delta
  -- are shipped back per batch and merged, so the accounting is identical
  to a serial run while the work truly runs on all cores.
* ``serial`` -- a plain loop over the same sharding; the debugging
  reference.

Results are always returned in submission order, worker Oracle Tables are
merged into the pool's table after every batch, and the pool's stats are
the sum over all workers -- so the accounting the paper tables report
(queries, steps, resets) is identical whether a run was serial, threaded
or process-parallel, and so is the learned model.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..core.alphabet import AbstractSymbol
from ..core.oracle_table import OracleEntry
from ..core.trace import Word
from .executor import (  # noqa: F401  (BatchExecutor re-exported for compat)
    BatchExecutor,
    ExecutorError,
    ProcessExecutor,
    build_executor,
)
from .sul import SUL, SULStats


def _run_shard_in_child(sul: SUL, words: Sequence[Word]) -> tuple[list, dict]:
    """Run one shard on a worker process's private SUL.

    Module-level (hence picklable) task function for the ``process``
    backend: returns the per-word ``(outputs, oracle entry)`` pairs plus
    the stats delta this shard cost, so the parent can keep serial-
    identical accounting.
    """
    before = sul.stats.snapshot()
    outcomes = [(sul.query(word), sul.oracle_table.lookup(word)) for word in words]
    after = sul.stats.snapshot()
    delta = {key: after[key] - before[key] for key in after}
    return outcomes, delta


class SULPool(SUL):
    """N identical SULs behind the single-SUL interface.

    A batch is sharded deterministically: word ``i`` always runs on worker
    ``i mod n`` (``n`` = active workers for the batch), each worker's shard
    on its own thread or process.  Deterministic assignment matters beyond
    taste -- for SULs whose RNG state persists across resets (mvfst's
    stateless resets), a timing-dependent assignment would make the
    observed response distribution vary between identically-seeded runs.
    Every worker is built by the same ``sul_factory`` and must behave
    identically, so for deterministic SULs the pool's answers do not
    depend on the assignment at all.

    ``backend`` picks the executor (``"thread"``, ``"process"`` or
    ``"serial"``).  The ``process`` backend builds each worker's SUL
    *inside* the worker process (the factory must be picklable -- a
    module-level function, :class:`functools.partial` over one, or a
    :class:`~repro.registry.RegistryFactory`; under the default ``fork``
    start method closures work too) and supports ``timeout_s``: a shard
    exceeding it gets its worker killed, respawned and retried once.
    """

    def __init__(
        self,
        sul_factory: Callable[[], SUL],
        workers: int = 4,
        name: str | None = None,
        backend: str = "thread",
        timeout_s: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.backend = backend
        if backend == "process":
            # One parent-side instance serves the single-SUL interface
            # (alphabet, reset/step for random walks); the N query-serving
            # instances live in the worker processes.
            suls = [sul_factory()]
            self._executor = ProcessExecutor(
                workers, initializer=sul_factory, timeout_s=timeout_s
            )
        else:
            suls = [sul_factory() for _ in range(workers)]
            self._executor = build_executor(backend, workers)
        super().__init__(suls[0].input_alphabet, name=name or f"{suls[0].name}-pool")
        self._suls = suls
        self._worker_stats = [SULStats() for _ in range(workers)]

    # -- batched execution -------------------------------------------------
    def query_batch(self, words: Sequence[Sequence[AbstractSymbol]]) -> list[Word]:
        words = [tuple(word) for word in words]
        if not words:
            return []
        shards = min(self.workers, len(words))
        results: list[tuple[Word, OracleEntry | None] | None] = [None] * len(words)

        if self.backend == "process":
            payloads = self._executor.map(
                _run_shard_in_child, [words[index::shards] for index in range(shards)]
            )
            for index, (shard, delta) in enumerate(payloads):
                stats = self._worker_stats[index]
                stats.queries += delta["queries"]
                stats.steps += delta["steps"]
                stats.resets += delta["resets"]
                for position, outcome in zip(
                    range(index, len(words), shards), shard
                ):
                    results[position] = outcome
        else:
            def run_shard(index: int) -> list[tuple[Word, OracleEntry | None]]:
                sul = self._suls[index]
                return [
                    (sul.query(word), sul.oracle_table.lookup(word))
                    for word in words[index::shards]
                ]

            for index, shard in enumerate(
                self._executor.map(run_shard, list(range(shards)))
            ):
                for position, outcome in zip(
                    range(index, len(words), shards), shard
                ):
                    results[position] = outcome

        answers: list[Word] = []
        for outputs, entry in results:  # type: ignore[misc]
            if entry is not None:
                self.oracle_table.merge(entry)
            answers.append(outputs)
        self._refresh_stats()
        return answers

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        return self.query_batch([word])[0]

    # -- single-instance interface (random walks, distribution sampling) --
    def reset(self) -> None:
        self._suls[0].reset()
        self._refresh_stats()

    def step(self, symbol: AbstractSymbol) -> AbstractSymbol:
        output = self._suls[0].step(symbol)
        self._refresh_stats()
        return output

    def _reset_impl(self) -> None:  # pragma: no cover - routed via reset()
        self._suls[0]._reset_impl()

    def _step_impl(
        self, symbol: AbstractSymbol
    ) -> tuple[AbstractSymbol, Mapping[str, int], Mapping[str, int]]:  # pragma: no cover
        return self._suls[0]._step_impl(symbol)

    # -- accounting --------------------------------------------------------
    def _refresh_stats(self) -> None:
        """The pool's stats are the sum over its workers.

        On the ``process`` backend, worker stats are the accumulated
        deltas shipped back with each batch plus whatever the parent-side
        instance did through the single-SUL interface.
        """
        if self.backend == "process":
            parent = self._suls[0].stats
            self.stats.queries = parent.queries + sum(
                s.queries for s in self._worker_stats
            )
            self.stats.steps = parent.steps + sum(
                s.steps for s in self._worker_stats
            )
            self.stats.resets = parent.resets + sum(
                s.resets for s in self._worker_stats
            )
        else:
            self.stats.queries = sum(sul.stats.queries for sul in self._suls)
            self.stats.steps = sum(sul.stats.steps for sul in self._suls)
            self.stats.resets = sum(sul.stats.resets for sul in self._suls)

    def per_worker_queries(self) -> list[int]:
        """Query count per worker (load-balance visibility for benchmarks)."""
        if self.backend == "process":
            return [stats.queries for stats in self._worker_stats]
        return [sul.stats.queries for sul in self._suls]

    def close(self) -> None:
        self._executor.close()
        for sul in self._suls:
            close = getattr(sul, "close", None)
            if callable(close):
                close()

"""The pending-packet queue of adapter property 1 (paper listing 1).

When the reference implementation would *react* to a received packet by
sending something (an ACK, a retransmission), that packet must not reach
the target unrequested.  Instead it is parked here; when the learner later
requests a matching abstract symbol, the queued packet is sent in
preference to building a new one from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

P = TypeVar("P")


@dataclass
class QueuedPacket(Generic[P]):
    abstract_key: Hashable
    packet: P


class PacketQueue(Generic[P]):
    """FIFO queue of concrete packets keyed by their abstract symbol."""

    def __init__(self) -> None:
        self._items: list[QueuedPacket[P]] = []
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, abstract_key: Hashable, packet: P) -> None:
        """Park a reaction packet until the learner requests it."""
        self._items.append(QueuedPacket(abstract_key, packet))

    def find(self, abstract_key: Hashable) -> P | None:
        """Pop the oldest queued packet matching the abstract request."""
        for index, item in enumerate(self._items):
            if item.abstract_key == abstract_key:
                self.hits += 1
                del self._items[index]
                return item.packet
        self.misses += 1
        return None

    def clear(self) -> None:
        self._items.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

"""Declarative experiment specifications (the serializable API surface).

An :class:`ExperimentSpec` is a complete, JSON-round-trippable description
of one learning experiment: the SUL target, the learner, the equivalence
-oracle chain, the membership-oracle middleware stack, and the execution
knobs (workers, seed, batch size).  Components are named by their
:mod:`repro.registry` keys, so a spec contains *no* code -- it can be
stored next to its artifacts, diffed, and replayed byte-identically::

    spec = ExperimentSpec(target="tcp", learner="lstar", seed=7)
    spec == ExperimentSpec.from_json(spec.to_json())   # lossless

:func:`assemble` turns a spec into the live oracle/learner pipeline; the
:class:`repro.framework.Prognosis` facade and the
:class:`repro.campaign.Campaign` runner are both built on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

from .adapter.executor import EXECUTOR_KINDS
from .adapter.pool import SULPool
from .adapter.sul import SUL
from .learn.equivalence import ChainedEquivalenceOracle
from .learn.teacher import EquivalenceOracle, MembershipOracle, SULMembershipOracle
from .registry import (
    EQ_ORACLE_REGISTRY,
    LEARNER_REGISTRY,
    MIDDLEWARE_REGISTRY,
    SUL_REGISTRY,
    RegistryFactory,
    load_builtins,
    supported_kwargs,
)


class SpecError(ValueError):
    """A malformed or unsatisfiable experiment specification."""


@dataclass
class ComponentSpec:
    """One registry-keyed component plus its constructor params.

    Used for equivalence-oracle chain entries and middleware layers.  In
    dict/JSON form a bare string is accepted as shorthand for a component
    with default params (``"cache"`` == ``{"kind": "cache", "params": {}}``).
    """

    kind: str
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: str | Mapping) -> "ComponentSpec":
        if isinstance(data, str):
            return cls(kind=data)
        if isinstance(data, ComponentSpec):
            return cls(kind=data.kind, params=dict(data.params))
        if not isinstance(data, Mapping) or "kind" not in data:
            raise SpecError(f"malformed component spec: {data!r}")
        unknown = set(data) - {"kind", "params"}
        if unknown:
            raise SpecError(f"unknown component spec keys: {sorted(unknown)}")
        return cls(kind=data["kind"], params=dict(data.get("params") or {}))

    def clone(self) -> "ComponentSpec":
        return ComponentSpec(kind=self.kind, params=dict(self.params))


_PROPERTIES_FIELDS = {"suite", "depth", "formulas", "include_probes", "minimize"}


@dataclass
class PropertiesSpec:
    """The declarative ``properties`` section of an experiment spec.

    Describes which property checks run against the learned model:
    ``suite`` names a :data:`repro.registry.PROPERTY_REGISTRY` key
    explicitly (``None`` auto-resolves the target's own suite by
    name/family stem), ``formulas`` adds ad-hoc LTLf formula strings,
    ``depth`` bounds the exhaustive model exploration,
    ``include_probes`` keeps design-decision probes in the run, and
    ``minimize`` controls ddmin witness reduction.  Like every spec
    layer it is JSON-round-trippable and contains no code.
    """

    suite: str | None = None
    depth: int = 5
    formulas: list[str] = field(default_factory=list)
    include_probes: bool = False
    minimize: bool = True

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "depth": self.depth,
            "formulas": list(self.formulas),
            "include_probes": self.include_probes,
            "minimize": self.minimize,
        }

    @classmethod
    def from_dict(cls, data: "PropertiesSpec | Mapping | None") -> "PropertiesSpec | None":
        if data is None or isinstance(data, PropertiesSpec):
            return data
        if not isinstance(data, Mapping):
            raise SpecError(f"properties spec must be a mapping, got {data!r}")
        unknown = set(data) - _PROPERTIES_FIELDS
        if unknown:
            raise SpecError(f"unknown properties spec keys: {sorted(unknown)}")
        fields = dict(data)
        fields["formulas"] = list(fields.get("formulas") or [])
        return cls(**fields)

    def clone(self) -> "PropertiesSpec":
        return PropertiesSpec(
            suite=self.suite,
            depth=self.depth,
            formulas=list(self.formulas),
            include_probes=self.include_probes,
            minimize=self.minimize,
        )

    def validate(self) -> "PropertiesSpec":
        from .registry import PROPERTY_REGISTRY

        if self.depth < 1:
            raise SpecError(f"need a positive property depth, got {self.depth}")
        if self.suite is not None:
            PROPERTY_REGISTRY.get(self.suite)  # raises RegistryError
        return self


_EXECUTOR_FIELDS = {"kind", "workers", "timeout_s"}


@dataclass
class ExecutorSpec:
    """The declarative ``executor`` section of an experiment spec.

    ``kind`` picks the :mod:`repro.adapter.executor` backend (``serial``,
    ``thread`` or ``process``), ``workers`` overrides the spec-level
    worker count (``None`` inherits it), and ``timeout_s`` bounds one
    shard's execution on backends that supervise their workers (the
    ``process`` pool and the remote-SUL boundary).  In dict/JSON form a
    bare string is shorthand for a kind with inherited knobs
    (``"process"`` == ``{"kind": "process"}``).

    The executor deliberately does not contribute to
    :meth:`ExperimentSpec.sul_fingerprint`: it changes how fast answers
    arrive, never what they are.
    """

    kind: str = "thread"
    workers: int | None = None
    timeout_s: float | None = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, data: "ExecutorSpec | str | Mapping | None") -> "ExecutorSpec | None":
        if data is None or isinstance(data, ExecutorSpec):
            return data
        if isinstance(data, str):
            return cls(kind=data)
        if not isinstance(data, Mapping):
            raise SpecError(f"executor spec must be a mapping, got {data!r}")
        unknown = set(data) - _EXECUTOR_FIELDS
        if unknown:
            raise SpecError(f"unknown executor spec keys: {sorted(unknown)}")
        return cls(**dict(data))

    def clone(self) -> "ExecutorSpec":
        return ExecutorSpec(
            kind=self.kind, workers=self.workers, timeout_s=self.timeout_s
        )


_STORE_FIELDS = {"path", "flush_every"}


@dataclass
class StoreSpec:
    """The declarative ``store`` section of an experiment spec.

    ``path`` locates the sqlite :class:`~repro.store.query_store
    .QueryStore` file; when set, :func:`assemble` swaps the spec's
    ``cache`` middleware layer for a :class:`~repro.store.middleware
    .StoreBackedCache` keyed by the spec's
    :meth:`~ExperimentSpec.sul_fingerprint`, so observations warm-start
    across processes and days.  ``flush_every`` batches appended rows
    per transaction.  In dict/JSON form a bare string is shorthand for
    a path with default knobs.

    Like the executor, the store deliberately does not contribute to
    the SUL fingerprint: it changes where answers come *from*, never
    what they are.
    """

    path: str
    flush_every: int = 256

    def to_dict(self) -> dict:
        return {"path": self.path, "flush_every": self.flush_every}

    @classmethod
    def from_dict(cls, data: "StoreSpec | str | Mapping | None") -> "StoreSpec | None":
        if data is None or isinstance(data, StoreSpec):
            return data
        if isinstance(data, str):
            return cls(path=data)
        if not isinstance(data, Mapping) or "path" not in data:
            raise SpecError(f"store spec needs a 'path', got {data!r}")
        unknown = set(data) - _STORE_FIELDS
        if unknown:
            raise SpecError(f"unknown store spec keys: {sorted(unknown)}")
        return cls(**{key: data[key] for key in data})

    def clone(self) -> "StoreSpec":
        return StoreSpec(path=self.path, flush_every=self.flush_every)

    def validate(self) -> "StoreSpec":
        if not self.path:
            raise SpecError("store spec needs a non-empty path")
        if self.flush_every < 1:
            raise SpecError(
                f"need a positive store flush_every, got {self.flush_every}"
            )
        return self


_CORPUS_FIELDS = {"path", "skip_conflicts", "max_traces"}


@dataclass
class CorpusSpec:
    """The declarative ``corpus`` section of an experiment spec.

    ``path`` locates a JSONL trace corpus (see
    :mod:`repro.learn.bulk`); when set, :func:`assemble` upgrades the
    spec's plain ``cache`` middleware layer to the corpus-seeded
    ``passive`` layer, so membership queries the corpus already answers
    never reach the live SUL -- and when the spec *also* carries a
    ``store`` section, the corpus is streamed through the store-backed
    cache instead, persisting its observations.  ``skip_conflicts``
    makes nondeterministic traces a counted finding rather than an
    error; ``max_traces`` bounds the streaming read.  In dict/JSON form
    a bare string is shorthand for a path with default knobs.

    Like the executor and the store, the corpus deliberately does not
    contribute to the SUL fingerprint: it changes where answers come
    *from*, never what they are.
    """

    path: str
    skip_conflicts: bool = True
    max_traces: int | None = None

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "skip_conflicts": self.skip_conflicts,
            "max_traces": self.max_traces,
        }

    @classmethod
    def from_dict(cls, data: "CorpusSpec | str | Mapping | None") -> "CorpusSpec | None":
        if data is None or isinstance(data, CorpusSpec):
            return data
        if isinstance(data, str):
            return cls(path=data)
        if not isinstance(data, Mapping) or "path" not in data:
            raise SpecError(f"corpus spec needs a 'path', got {data!r}")
        unknown = set(data) - _CORPUS_FIELDS
        if unknown:
            raise SpecError(f"unknown corpus spec keys: {sorted(unknown)}")
        return cls(**{key: data[key] for key in data})

    def clone(self) -> "CorpusSpec":
        return CorpusSpec(
            path=self.path,
            skip_conflicts=self.skip_conflicts,
            max_traces=self.max_traces,
        )

    def validate(self) -> "CorpusSpec":
        if not self.path:
            raise SpecError("corpus spec needs a non-empty path")
        if self.max_traces is not None and self.max_traces < 1:
            raise SpecError(
                f"need a positive corpus max_traces, got {self.max_traces}"
            )
        return self


_ATTACK_FIELDS = {
    "attacker",
    "objective",
    "budget",
    "fuzz",
    "max_suffix",
    "corpus_out",
}


@dataclass
class AttackSpec:
    """The declarative ``attack`` section of an experiment spec.

    Opting in makes a campaign run :func:`repro.attack.replay.run_attacks`
    after learning: synthesize attacker strategies offline from the
    learned model, replay them against the live SUL, and (with ``fuzz``)
    barrage the model's frontier states.  ``attacker`` pins one
    :data:`~repro.attack.automata.ATTACK_REGISTRY` key (default: every
    automaton applicable to the target); ``objective`` is an optional
    LTLf formula the attack trace must *violate*; ``budget`` and
    ``max_suffix`` bound the fuzzer; ``corpus_out`` writes confirmed
    attacks (and fuzz divergences) as a JSONL corpus.  In dict/JSON form
    a bare string is shorthand for an attacker key with default knobs.

    Like the executor, the section never contributes to the SUL
    fingerprint: attacks change what is *asked* after learning, not what
    the system answers.
    """

    attacker: str | None = None
    objective: str | None = None
    budget: int = 200
    fuzz: bool = False
    max_suffix: int = 4
    corpus_out: str | None = None

    def to_dict(self) -> dict:
        return {
            "attacker": self.attacker,
            "objective": self.objective,
            "budget": self.budget,
            "fuzz": self.fuzz,
            "max_suffix": self.max_suffix,
            "corpus_out": self.corpus_out,
        }

    @classmethod
    def from_dict(cls, data: "AttackSpec | str | Mapping | None") -> "AttackSpec | None":
        if data is None or isinstance(data, AttackSpec):
            return data
        if isinstance(data, str):
            return cls(attacker=data)
        if not isinstance(data, Mapping):
            raise SpecError(f"attack spec must be a mapping, got {data!r}")
        unknown = set(data) - _ATTACK_FIELDS
        if unknown:
            raise SpecError(f"unknown attack spec keys: {sorted(unknown)}")
        return cls(**{key: data[key] for key in data})

    def clone(self) -> "AttackSpec":
        return AttackSpec(
            attacker=self.attacker,
            objective=self.objective,
            budget=self.budget,
            fuzz=self.fuzz,
            max_suffix=self.max_suffix,
            corpus_out=self.corpus_out,
        )

    def validate(self) -> "AttackSpec":
        if self.budget < 1:
            raise SpecError(f"need a positive attack budget, got {self.budget}")
        if self.max_suffix < 1:
            raise SpecError(
                f"need a positive attack max_suffix, got {self.max_suffix}"
            )
        if self.attacker is not None:
            from .attack.automata import ATTACK_REGISTRY

            ATTACK_REGISTRY.get(self.attacker)  # raises RegistryError
        if self.objective is not None:
            from .analysis.ltl import LTLError, parse_ltl

            try:
                parse_ltl(self.objective)
            except LTLError as error:
                raise SpecError(
                    f"bad attack objective {self.objective!r}: {error}"
                ) from error
        return self


def default_equivalence() -> list[ComponentSpec]:
    """The default EQ chain: W-method with one extra state (paper setup)."""
    return [ComponentSpec("wmethod", {"extra_states": 1})]


def default_middleware() -> list[ComponentSpec]:
    """The default oracle stack: just the prefix-tree query cache."""
    return [ComponentSpec("cache")]


_SPEC_FIELDS = {
    "target",
    "target_params",
    "learner",
    "learner_params",
    "equivalence",
    "middleware",
    "workers",
    "seed",
    "batch_size",
    "name",
    "properties",
    "executor",
    "store",
    "corpus",
    "attack",
}


@dataclass
class ExperimentSpec:
    """A complete, serializable description of one learning experiment.

    ``target`` / ``learner`` name :data:`repro.registry.SUL_REGISTRY` /
    :data:`~repro.registry.LEARNER_REGISTRY` entries; ``equivalence`` is an
    ordered oracle chain (one entry runs alone, several are chained
    cheap-first); ``middleware`` is the membership-oracle stack applied
    innermost-first on top of the raw SUL oracle.  ``seed`` seeds
    randomized equivalence oracles, ``batch_size`` bounds query batches,
    and ``workers > 1`` fans batches over a pool of identically-built SUL
    instances.
    """

    target: str
    target_params: dict = field(default_factory=dict)
    learner: str = "ttt"
    learner_params: dict = field(default_factory=dict)
    equivalence: list[ComponentSpec] = field(default_factory=default_equivalence)
    middleware: list[ComponentSpec] = field(default_factory=default_middleware)
    workers: int = 1
    seed: int = 0
    batch_size: int = 64
    name: str | None = None
    properties: PropertiesSpec | None = None
    executor: ExecutorSpec | None = None
    store: StoreSpec | None = None
    corpus: CorpusSpec | None = None
    attack: AttackSpec | None = None

    def __post_init__(self) -> None:
        self.equivalence = [ComponentSpec.from_dict(e) for e in self.equivalence]
        self.middleware = [ComponentSpec.from_dict(m) for m in self.middleware]
        self.properties = PropertiesSpec.from_dict(self.properties)
        self.executor = ExecutorSpec.from_dict(self.executor)
        self.store = StoreSpec.from_dict(self.store)
        self.corpus = CorpusSpec.from_dict(self.corpus)
        self.attack = AttackSpec.from_dict(self.attack)

    # -- identity ----------------------------------------------------------
    def display_name(self) -> str:
        """The run name: explicit ``name`` or ``target-learner-s<seed>``."""
        return self.name or f"{self.target}-{self.learner}-s{self.seed}"

    def sul_fingerprint(self) -> str:
        """Behavioural identity of the SUL this spec targets.

        Two specs with equal fingerprints query *the same* system (same
        target key, same construction params), so their membership-query
        caches are interchangeable -- the sharing key campaigns use.
        Learner, equivalence chain, seed and executor deliberately do
        not contribute: they change which queries are asked or how they
        are scheduled, not the answers.
        """
        return json.dumps(
            {"target": self.target, "params": self.target_params},
            sort_keys=True,
            default=str,
        )

    def effective_executor(self) -> ExecutorSpec:
        """The fully-resolved executor this spec runs on.

        With no ``executor`` section the historical behaviour is kept:
        ``workers > 1`` means the thread pool, ``workers == 1`` a plain
        serial SUL.  An explicit section picks the backend ``kind`` and
        may override the worker count.
        """
        if self.executor is None:
            kind = "thread" if self.workers > 1 else "serial"
            return ExecutorSpec(kind=kind, workers=self.workers)
        workers = (
            self.workers if self.executor.workers is None else self.executor.workers
        )
        return ExecutorSpec(
            kind=self.executor.kind,
            workers=workers,
            timeout_s=self.executor.timeout_s,
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "target_params": dict(self.target_params),
            "learner": self.learner,
            "learner_params": dict(self.learner_params),
            "equivalence": [e.to_dict() for e in self.equivalence],
            "middleware": [m.to_dict() for m in self.middleware],
            "workers": self.workers,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "name": self.name,
            "properties": (
                None if self.properties is None else self.properties.to_dict()
            ),
            "executor": (
                None if self.executor is None else self.executor.to_dict()
            ),
            "store": (
                None if self.store is None else self.store.to_dict()
            ),
            "corpus": (
                None if self.corpus is None else self.corpus.to_dict()
            ),
            "attack": (
                None if self.attack is None else self.attack.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"experiment spec must be a mapping, got {data!r}")
        if "target" not in data:
            raise SpecError("experiment spec needs a 'target'")
        unknown = set(data) - _SPEC_FIELDS
        if unknown:
            raise SpecError(f"unknown experiment spec keys: {sorted(unknown)}")
        fields = dict(data)
        fields.setdefault("target_params", {})
        fields.setdefault("learner_params", {})
        return cls(**fields)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "ExperimentSpec":
        """Load a spec from a JSON file (the CLI ``run``/``difftest`` path)."""
        with open(path) as handle:
            return cls.from_json(handle.read())

    def clone(self, **overrides) -> "ExperimentSpec":
        """An independent copy with ``overrides`` applied (grid expansion)."""
        data = {
            "target": self.target,
            "target_params": dict(self.target_params),
            "learner": self.learner,
            "learner_params": dict(self.learner_params),
            "equivalence": [e.clone() for e in self.equivalence],
            "middleware": [m.clone() for m in self.middleware],
            "workers": self.workers,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "name": self.name,
            "properties": (
                None if self.properties is None else self.properties.clone()
            ),
            "executor": (
                None if self.executor is None else self.executor.clone()
            ),
            "store": (
                None if self.store is None else self.store.clone()
            ),
            "corpus": (
                None if self.corpus is None else self.corpus.clone()
            ),
            "attack": (
                None if self.attack is None else self.attack.clone()
            ),
        }
        unknown = set(overrides) - _SPEC_FIELDS
        if unknown:
            raise SpecError(f"unknown experiment spec keys: {sorted(unknown)}")
        data.update(overrides)
        return ExperimentSpec(**data)

    # -- validation --------------------------------------------------------
    def validate(self) -> "ExperimentSpec":
        """Check registry membership and knob ranges; returns ``self``."""
        load_builtins()
        if self.workers < 1:
            raise SpecError(f"need at least one worker, got {self.workers}")
        if self.batch_size < 1:
            raise SpecError(f"need a positive batch_size, got {self.batch_size}")
        if not self.equivalence:
            raise SpecError("spec needs at least one equivalence oracle")
        executor = self.effective_executor()
        if executor.kind not in EXECUTOR_KINDS:
            raise SpecError(
                f"unknown executor kind {executor.kind!r}; "
                f"known: {', '.join(EXECUTOR_KINDS)}"
            )
        if executor.workers < 1:
            raise SpecError(
                f"need at least one executor worker, got {executor.workers}"
            )
        if executor.kind == "serial" and executor.workers > 1:
            raise SpecError(
                "the serial executor runs one worker; "
                f"got workers={executor.workers} (use thread or process)"
            )
        if executor.timeout_s is not None and executor.timeout_s <= 0:
            raise SpecError(
                f"need a positive executor timeout_s, got {executor.timeout_s}"
            )
        if self.properties is not None:
            self.properties.validate()
        if self.store is not None:
            self.store.validate()
            if not any(
                m.kind in ("cache", "store") for m in self.middleware
            ):
                raise SpecError(
                    "a store section needs a 'cache' (or 'store') "
                    "middleware layer to back"
                )
        if self.corpus is not None:
            self.corpus.validate()
            if not any(
                m.kind in ("cache", "store", "passive") for m in self.middleware
            ):
                raise SpecError(
                    "a corpus section needs a 'cache' (or 'store'/'passive') "
                    "middleware layer to seed"
                )
        if self.attack is not None:
            self.attack.validate()
        for registry, keys in (
            (SUL_REGISTRY, [self.target]),
            (LEARNER_REGISTRY, [self.learner]),
            (EQ_ORACLE_REGISTRY, [e.kind for e in self.equivalence]),
            (MIDDLEWARE_REGISTRY, [m.kind for m in self.middleware]),
        ):
            for key in keys:
                registry.get(key)  # raises RegistryError with known names
        return self


# ---------------------------------------------------------------------------
# Spec -> live pipeline
# ---------------------------------------------------------------------------

@dataclass
class AssembledPipeline:
    """The live objects a spec describes, one per stack position."""

    sul: SUL
    base_oracle: SULMembershipOracle
    middleware: list  # instances, innermost first
    oracle: MembershipOracle  # top of the middleware stack
    equivalence_oracle: EquivalenceOracle
    learner: object


def build_sul(spec: ExperimentSpec) -> SUL:
    """Instantiate the spec's SUL target on its effective executor.

    ``process`` always builds a pool (the workers live in child
    processes, even for ``workers == 1``) and uses a picklable
    :class:`~repro.registry.RegistryFactory` so closure-registered
    targets work too; ``thread`` pools when ``workers > 1``; anything
    else is a plain in-process SUL.
    """
    load_builtins()
    factory = SUL_REGISTRY.get(spec.target)
    executor = spec.effective_executor()
    if executor.kind == "process":
        return SULPool(
            RegistryFactory(spec.target, spec.target_params),
            workers=executor.workers,
            name=spec.name,
            backend="process",
            timeout_s=executor.timeout_s,
        )
    if executor.workers > 1:
        return SULPool(
            lambda: factory(**spec.target_params),
            workers=executor.workers,
            name=spec.name,
        )
    return factory(**spec.target_params)


def build_equivalence_chain(
    spec: ExperimentSpec, oracle: MembershipOracle
) -> EquivalenceOracle:
    """The spec's EQ oracle chain over ``oracle``.

    Spec-level ``batch_size`` and ``seed`` are injected into every oracle
    whose factory accepts them; per-component params override.
    """
    oracles = []
    for component in spec.equivalence:
        factory = EQ_ORACLE_REGISTRY.get(component.kind)
        params = supported_kwargs(
            factory, {"batch_size": spec.batch_size, "seed": spec.seed}
        )
        params.update(component.params)
        oracles.append(factory(oracle, **params))
    if len(oracles) == 1:
        return oracles[0]
    return ChainedEquivalenceOracle(oracles)


def assemble(
    spec: ExperimentSpec,
    sul: SUL | None = None,
    shared_cache=None,
) -> AssembledPipeline:
    """Build the full pipeline a spec describes.

    ``sul`` substitutes a ready instance (the facade's legacy path);
    otherwise the target registry builds it.  ``shared_cache`` pre-warms
    the first ``cache`` middleware layer with an existing
    :class:`~repro.learn.cache.QueryCache` (campaign cross-run sharing).
    """
    load_builtins()
    owns_sul = sul is None
    if sul is None:
        sul = build_sul(spec)
    layers = []
    try:
        base_oracle = SULMembershipOracle(sul)
        oracle: MembershipOracle = base_oracle
        cache_warmed = False
        store_attached = False
        corpus_attached = False
        for component in spec.middleware:
            kind = component.kind
            params = dict(component.params)
            # The store section upgrades the first plain cache layer to
            # the store-backed one; an explicit "store" layer just gets
            # the spec's identity defaults filled in.  A corpus section
            # (without a store) likewise upgrades the cache layer to the
            # corpus-seeded "passive" one; with both, the store wins the
            # layer and the corpus is streamed through it below.
            if kind == "cache" and spec.store is not None and not store_attached:
                kind = "store"
            if (
                kind == "cache"
                and spec.corpus is not None
                and not corpus_attached
            ):
                kind = "passive"
            if kind == "store" and not store_attached:
                if spec.store is not None:
                    params.setdefault("path", spec.store.path)
                    params.setdefault("flush_every", spec.store.flush_every)
                params.setdefault("fingerprint", spec.sul_fingerprint())
                store_attached = True
            if kind == "passive" and not corpus_attached:
                if spec.corpus is not None:
                    params.setdefault("path", spec.corpus.path)
                    params.setdefault("skip_conflicts", spec.corpus.skip_conflicts)
                    params.setdefault("max_traces", spec.corpus.max_traces)
                corpus_attached = True
            factory = MIDDLEWARE_REGISTRY.get(kind)
            if (
                kind in ("cache", "store", "passive")
                and shared_cache is not None
                and not cache_warmed
            ):
                params.setdefault("cache", shared_cache)
                cache_warmed = True
            layer = factory(oracle, **params)
            layers.append(layer)
            oracle = layer

        if spec.corpus is not None and not corpus_attached:
            # Store-backed (or custom) stacks keep their cache layer;
            # stream the corpus through its record hook instead -- with
            # a store this persists the corpus observations
            # (seed_cache_from_traces at bulk scale).
            from .learn.bulk import seed_oracle_from_corpus
            from .learn.cache import CachedMembershipOracle

            for layer in layers:
                if isinstance(layer, CachedMembershipOracle):
                    seed_oracle_from_corpus(layer, spec.corpus)
                    corpus_attached = True
                    break

        equivalence_oracle = build_equivalence_chain(spec, oracle)

        learner_factory = LEARNER_REGISTRY.get(spec.learner)
        learner_params = supported_kwargs(
            learner_factory, {"name": spec.name or sul.name}
        )
        learner_params.update(spec.learner_params)
        learner = learner_factory(oracle, equivalence_oracle, **learner_params)
    except BaseException:
        # Release whatever was built (pool threads, simulated sockets,
        # store connections) before surfacing the misconfiguration.
        for layer in layers:
            layer_close = getattr(layer, "close", None)
            if callable(layer_close):
                layer_close()
        if owns_sul:
            close = getattr(sul, "close", None)
            if callable(close):
                close()
        raise

    return AssembledPipeline(
        sul=sul,
        base_oracle=base_oracle,
        middleware=layers,
        oracle=oracle,
        equivalence_oracle=equivalence_oracle,
        learner=learner,
    )

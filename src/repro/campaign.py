"""Concurrent experiment campaigns over declarative specs.

The paper's results are not one learning run but a *matrix* of them --
four QUIC implementations x learners x testing strategies.  A
:class:`Campaign` executes a list (or :meth:`Campaign.grid`) of
:class:`~repro.spec.ExperimentSpec` concurrently on a thread pool and
packages each run as a structured :class:`RunResult`, optionally writing
artifacts (spec echo, model JSON/DOT, report JSON) to an output
directory.

Runs targeting the *same* SUL (equal :meth:`ExperimentSpec.sul_fingerprint`)
share membership-query observations: after each run its query cache is
merged into a per-fingerprint store, and later runs start with a copy of
that store pre-warming their cache layer.  Sharing never changes learned
models (a deterministic SUL answers identically either way) -- it only
removes repeated SUL executions, which is where campaign wall-clock goes.

::

    campaign = Campaign.grid(
        targets=("tcp", "quic-google"),
        learners=("ttt", "lstar"),
        seeds=(0, 1),
        output_dir="runs/",
    )
    for result in campaign.run():
        print(result.summary())
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .adapter.pool import BatchExecutor
from .analysis.diff import ModelDiff, diff_models
from .analysis.difftest import (
    VERDICT_AGREE,
    VERDICT_DIVERGE,
    VERDICT_ERROR,
    VERDICT_INCOMPATIBLE,
    VERDICT_SELF,
    CrossVerdict,
    VerdictMatrix,
    cross_replay,
    minimize_witness,
)
from .analysis.equivalence import find_difference
from .analysis.property_api import (
    PropertyReport,
    check_properties,
    resolve_properties,
)
from .analysis.testgen import SuiteKind, generate_test_suite
from .attack.replay import AttackReport, run_attacks
from .core.mealy import MealyMachine
from .core.trace import Word
from .framework import LearningReport, Prognosis
from .learn.cache import CachedMembershipOracle, CacheInconsistencyError, QueryCache
from .learn.teacher import SULMembershipOracle
from .registry import SUL_REGISTRY, load_builtins, resolve_property_suite
from .spec import ExperimentSpec, PropertiesSpec, SpecError, build_sul


@dataclass
class RunResult:
    """One campaign run: the spec echo plus everything it produced.

    ``error`` is set when the run failed -- e.g. a
    :class:`~repro.learn.nondeterminism.NondeterminismError` for
    mvfst-like targets (``report``/``model`` are then None) or an
    artifact-write failure (learned results are kept).  A failed run
    never aborts the campaign.
    """

    spec: ExperimentSpec
    report: LearningReport | None
    model: MealyMachine | None
    error: str | None = None
    artifact_dir: str | None = None
    #: Property verdicts, when the spec carried a ``properties`` section.
    properties: PropertyReport | None = None
    #: Attack synthesis/replay results, when the spec carried an
    #: ``attack`` section.
    attacks: AttackReport | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def summary(self) -> str:
        name = self.spec.display_name()
        if not self.ok:
            return f"{name}: FAILED ({self.error})"
        report = self.report
        text = (
            f"{name}: {report.num_states} states, "
            f"{report.num_transitions} transitions, "
            f"{report.sul_queries} SUL queries, "
            f"{report.cache_hit_rate:.0%} cache hits"
        )
        if self.spec.corpus is not None:
            text += f", {report.corpus_hit_rate:.0%} corpus hits"
        if self.properties is not None:
            counts = self.properties.counts()
            text += (
                f", properties {counts['holds']}/{len(self.properties)} hold"
            )
        if self.attacks is not None:
            text += (
                f", attacks {len(self.attacks.confirmed)} confirmed"
                f"/{len(self.attacks.unreachable)} unreachable"
            )
        return text


def _safe_name(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


def evaluate_spec_properties(
    spec: ExperimentSpec,
    model: MealyMachine,
    oracle_table=None,
) -> PropertyReport:
    """Run the property checks a spec's ``properties`` section describes.

    A spec without a ``properties`` section gets the defaults (the
    target's registered suite, depth 5, minimized witnesses); individual
    check failures become ERROR verdicts, never exceptions.
    """
    pspec = spec.properties if spec.properties is not None else PropertiesSpec()
    props = resolve_properties(
        spec.target,
        suite=pspec.suite,
        formulas=pspec.formulas,
        include_probes=pspec.include_probes,
    )
    return check_properties(
        model,
        props,
        depth=pspec.depth,
        oracle_table=oracle_table,
        minimize=pspec.minimize,
        target=spec.display_name(),
    )


class Campaign:
    """Run many experiment specs, concurrently, with shared query caches.

    ``workers`` bounds how many *runs* execute at once (each run may
    additionally pool its own SUL instances via ``spec.workers``).
    ``share_cache=False`` isolates every run -- the ablation switch the
    cache-sharing benchmark flips.  ``store`` points every spec that does
    not already carry a ``store`` section at one persistent
    :class:`~repro.store.query_store.QueryStore` file, so runs warm-start
    from (and append to) it per SUL fingerprint.  Specs may be given as
    :class:`~repro.spec.ExperimentSpec` instances or plain dicts.
    """

    def __init__(
        self,
        specs: Iterable[ExperimentSpec | Mapping],
        *,
        workers: int = 1,
        output_dir: str | Path | None = None,
        share_cache: bool = True,
        store: str | Path | None = None,
    ) -> None:
        self.specs = [
            spec if isinstance(spec, ExperimentSpec) else ExperimentSpec.from_dict(spec)
            for spec in specs
        ]
        if store is not None:
            self.specs = [
                spec if spec.store is not None else spec.clone(store=str(store))
                for spec in self.specs
            ]
        if workers < 1:
            raise ValueError(f"need at least one campaign worker, got {workers}")
        self.workers = workers
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.share_cache = share_cache
        self._caches: dict[str, QueryCache] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        targets: Sequence[str],
        learners: Sequence[str] = ("ttt",),
        seeds: Sequence[int] = (0,),
        base: ExperimentSpec | None = None,
        **campaign_kwargs,
    ) -> "Campaign":
        """The cartesian product ``targets x learners x seeds`` as a campaign.

        ``base`` supplies everything the grid axes don't (equivalence
        chain, middleware, target params, per-run workers); each grid cell
        clones it.  Cells are named ``<target>-<learner>-s<seed>``.
        """
        template = base if base is not None else ExperimentSpec(target="toy")
        specs = [
            template.clone(
                target=target,
                learner=learner,
                seed=seed,
                name=f"{target}-{learner}-s{seed}",
            )
            for target in targets
            for learner in learners
            for seed in seeds
        ]
        return cls(specs, **campaign_kwargs)

    # ------------------------------------------------------------------
    def run(self) -> list[RunResult]:
        """Execute every spec; results are in spec order."""
        load_builtins()
        executor = BatchExecutor(self.workers)
        try:
            return executor.map(self._run_one, list(enumerate(self.specs)))
        finally:
            executor.close()

    # ------------------------------------------------------------------
    def _warm_cache(self, fingerprint: str) -> QueryCache:
        """A fresh cache pre-loaded with the fingerprint's shared store.

        Each run gets its own copy: concurrent same-fingerprint runs never
        mutate a common trie (no locks on the hot query path), they just
        merge what they learned back afterwards.
        """
        warm = QueryCache()
        with self._lock:
            store = self._caches.get(fingerprint)
            if store is not None:
                warm.merge_from(store)
        return warm

    def _absorb_cache(self, fingerprint: str, cache: QueryCache) -> None:
        with self._lock:
            store = self._caches.setdefault(fingerprint, QueryCache())
            try:
                store.merge_from(cache)
            except CacheInconsistencyError:
                # The SUL answered differently across runs (nondeterminism):
                # sharing would poison future runs, so drop the store.
                self._caches.pop(fingerprint, None)

    # ------------------------------------------------------------------
    def _run_one(self, item: tuple[int, ExperimentSpec]) -> RunResult:
        index, spec = item
        try:
            spec.validate()
            shared = None
            if self.share_cache and any(
                m.kind in ("cache", "store", "passive") for m in spec.middleware
            ):
                shared = self._warm_cache(spec.sul_fingerprint())
            properties_report = None
            attack_report = None
            with Prognosis.from_spec(spec, shared_cache=shared) as prognosis:
                report = prognosis.learn()
                if spec.properties is not None:
                    properties_report = evaluate_spec_properties(
                        spec,
                        report.model,
                        oracle_table=prognosis.sul.oracle_table,
                    )
                if spec.attack is not None:
                    attack_report = run_attacks(
                        spec,
                        report.model,
                        prognosis.oracle,
                        oracle_table=prognosis.sul.oracle_table,
                    )
                if shared is not None and prognosis.cache_oracle is not None:
                    self._absorb_cache(
                        spec.sul_fingerprint(), prognosis.cache_oracle.cache
                    )
            if spec.store is not None:
                # Store-backed runs also record their model lineage, so
                # a later `repro ci` has a baseline to diff against.
                from .store.model_store import ModelStore

                with ModelStore(spec.store.path) as models:
                    models.save(
                        spec.sul_fingerprint(),
                        report.model,
                        spec=spec.to_dict(),
                        stats=report.to_dict(),
                    )
        except Exception as error:  # a failed run must not sink the campaign
            return RunResult(
                spec=spec,
                report=None,
                model=None,
                error=f"{type(error).__name__}: {error}",
            )
        result = RunResult(
            spec=spec,
            report=report,
            model=report.model,
            properties=properties_report,
            attacks=attack_report,
        )
        if self.output_dir is not None:
            try:
                result.artifact_dir = str(self._write_artifacts(index, result))
            except OSError as error:
                # Keep the learned result; only the artifact write failed.
                result.error = f"artifact write failed: {error}"
        return result

    def _write_artifacts(self, index: int, result: RunResult) -> Path:
        spec, report = result.spec, result.report
        directory = self.output_dir / f"{index:03d}-{_safe_name(spec.display_name())}"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "spec.json").write_text(spec.to_json() + "\n")
        (directory / "model.json").write_text(
            json.dumps(report.model.to_dict(), indent=2) + "\n"
        )
        (directory / "model.dot").write_text(report.model.to_dot() + "\n")
        (directory / "report.json").write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        if result.properties is not None:
            (directory / "properties.json").write_text(
                json.dumps(result.properties.to_dict(), indent=2) + "\n"
            )
        if result.attacks is not None:
            (directory / "attacks.json").write_text(
                json.dumps(result.attacks.to_dict(), indent=2) + "\n"
            )
        return directory


def run_spec(
    spec: ExperimentSpec | Mapping,
    output_dir: str | Path | None = None,
    store: str | Path | None = None,
) -> RunResult:
    """Execute a single spec (the ``repro run`` CLI entry point)."""
    return Campaign(
        [spec], output_dir=output_dir, share_cache=False, store=store
    ).run()[0]


# ---------------------------------------------------------------------------
# Differential conformance campaigns
# ---------------------------------------------------------------------------

@dataclass
class DiffTestResult:
    """Everything a differential conformance campaign produced."""

    matrix: VerdictMatrix
    runs: list[RunResult]
    #: Structural model comparison per unordered comparable pair.
    diffs: dict[tuple[str, str], ModelDiff] = field(default_factory=dict)
    artifact_dir: str | None = None
    #: Set when writing artifacts failed; the computed result is kept.
    artifact_error: str | None = None

    def summary(self) -> str:
        learned = sum(1 for run in self.runs if run.model is not None)
        divergent = self.matrix.divergent_pairs()
        text = (
            f"difftest: {learned}/{len(self.runs)} models learned, "
            f"{len(divergent)} divergent pairs"
        )
        violated = sum(
            1
            for run in self.runs
            if run.properties is not None and not run.properties.ok
        )
        if violated:
            text += f", {violated} members violate properties"
        return text

    def render(self) -> str:
        lines = [run.summary() for run in self.runs]
        lines.append("")
        lines.append(self.matrix.render())
        property_lines = [
            run.properties.summary()
            for run in self.runs
            if run.properties is not None
        ]
        if property_lines:
            lines.append("")
            lines.extend(property_lines)
        return "\n".join(lines)


class DiffCampaign:
    """Cross-implementation differential testing at campaign scale.

    Learns a model for every spec concurrently (sharing membership-query
    caches per SUL fingerprint exactly like :class:`Campaign`), derives a
    test suite from each learned model, replays every suite against every
    *other* implementation in batched form through the cached oracle
    stack, and reduces each divergence to a minimized witness.  The
    diagonal replays each suite against its own SUL -- a divergence there
    is a learner bug, not a protocol finding.

    ::

        result = DiffCampaign.family("quic", workers=4).run()
        print(result.matrix.render())
    """

    def __init__(
        self,
        specs: Iterable[ExperimentSpec | Mapping],
        *,
        kinds: Sequence[SuiteKind] = ("wmethod",),
        workers: int = 1,
        output_dir: str | Path | None = None,
        share_cache: bool = True,
        max_divergences: int = 25,
        extra_states: int = 0,
        num_random: int = 100,
        max_length: int = 10,
        store: str | Path | None = None,
    ) -> None:
        self.specs = [
            spec if isinstance(spec, ExperimentSpec) else ExperimentSpec.from_dict(spec)
            for spec in specs
        ]
        if len(self.specs) < 1:
            raise SpecError("a diff campaign needs at least one spec")
        names = [spec.display_name() for spec in self.specs]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SpecError(
                f"diff campaign specs need unique names, got duplicates: "
                f"{sorted(duplicates)}"
            )
        if workers < 1:
            raise ValueError(f"need at least one campaign worker, got {workers}")
        self.kinds = tuple(kinds) or ("wmethod",)
        self.workers = workers
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.share_cache = share_cache
        self.max_divergences = max_divergences
        self.extra_states = extra_states
        self.num_random = num_random
        self.max_length = max_length
        self.store = store

    # ------------------------------------------------------------------
    @classmethod
    def family(
        cls,
        targets: str | Sequence[str],
        learner: str = "ttt",
        seed: int = 0,
        base: ExperimentSpec | None = None,
        **campaign_kwargs,
    ) -> "DiffCampaign":
        """A campaign over a registered target family (or explicit list).

        A string names a family from :meth:`repro.registry.Registry
        .families` (``"quic"`` expands to every ``quic-*`` target); a
        sequence names targets directly.  ``base`` supplies everything
        else (equivalence chain, middleware, per-run workers).
        """
        load_builtins()
        if isinstance(targets, str):
            families = SUL_REGISTRY.families()
            try:
                targets = families[targets]
            except KeyError:
                known = ", ".join(sorted(families)) or "<none>"
                raise SpecError(
                    f"unknown SUL family {targets!r}; registered families: {known}"
                ) from None
        template = base if base is not None else ExperimentSpec(target="toy")
        specs = [
            template.clone(target=target, learner=learner, seed=seed, name=target)
            for target in targets
        ]
        return cls(specs, **campaign_kwargs)

    # ------------------------------------------------------------------
    @staticmethod
    def _with_properties(spec: ExperimentSpec) -> ExperimentSpec:
        """A member spec with its registered property suite switched on.

        Differential campaigns run each family member's suite alongside
        cross-replay; a spec that already carries a ``properties``
        section keeps it, and a target with no registered suite runs
        without one.
        """
        if spec.properties is not None:
            return spec
        if resolve_property_suite(spec.target) is None:
            return spec
        return spec.clone(properties=PropertiesSpec())

    def run(self) -> DiffTestResult:
        """Learn every model, run each member's property suite,
        cross-replay every test suite, build the matrix."""
        load_builtins()
        campaign = Campaign(
            [self._with_properties(spec) for spec in self.specs],
            workers=self.workers,
            output_dir=(
                self.output_dir / "runs" if self.output_dir is not None else None
            ),
            share_cache=self.share_cache,
            store=self.store,
        )
        runs = campaign.run()
        names = [spec.display_name() for spec in self.specs]
        suites = {
            name: self._suite(run.model, spec.seed)
            for name, spec, run in zip(names, self.specs, runs)
            if run.model is not None
        }

        pairs = [(i, j) for i in range(len(names)) for j in range(len(names))]
        executor = BatchExecutor(self.workers)
        try:
            cells = executor.map(
                lambda pair: self._replay_pair(pair, runs, suites, campaign), pairs
            )
        finally:
            executor.close()
        matrix = VerdictMatrix(
            targets=names, cells={(cell.row, cell.col): cell for cell in cells}
        )

        diffs: dict[tuple[str, str], ModelDiff] = {}
        for i, first in enumerate(runs):
            for j in range(i + 1, len(runs)):
                second = runs[j]
                if first.model is None or second.model is None:
                    continue
                if tuple(first.model.input_alphabet) != tuple(
                    second.model.input_alphabet
                ):
                    continue
                diffs[(names[i], names[j])] = diff_models(
                    first.model, second.model
                )

        result = DiffTestResult(matrix=matrix, runs=runs, diffs=diffs)
        if self.output_dir is not None:
            try:
                result.artifact_dir = str(self._write_artifacts(result))
            except OSError as error:
                # Keep the computed matrix; only the artifact write failed.
                result.artifact_error = f"artifact write failed: {error}"
        return result

    # ------------------------------------------------------------------
    def _suite(self, model: MealyMachine, seed: int = 0) -> list[Word]:
        """The merged, deduplicated suite of every configured kind.

        ``seed`` (the owning spec's seed) steers the ``random`` kind so
        ``--seed`` varies random-walk coverage campaign-wide.
        """
        words: dict[Word, None] = {}
        for kind in self.kinds:
            suite = generate_test_suite(
                model,
                kind,
                extra_states=self.extra_states,
                num_random=self.num_random,
                max_length=self.max_length,
                seed=seed,
            )
            words.update(dict.fromkeys(tuple(word) for word in suite))
        return list(words)

    def _replay_oracle(
        self, spec: ExperimentSpec, campaign: Campaign
    ) -> CachedMembershipOracle:
        """A cached oracle over a fresh SUL, pre-warmed with everything the
        learning phase observed for this fingerprint (replays that hit the
        warm trie never touch the SUL)."""
        sul = build_sul(spec)
        return CachedMembershipOracle(
            SULMembershipOracle(sul),
            cache=campaign._warm_cache(spec.sul_fingerprint()),
        )

    @staticmethod
    def _close_oracle(oracle: CachedMembershipOracle | None) -> None:
        if oracle is None:
            return
        close = getattr(oracle.inner.sul, "close", None)
        if callable(close):
            close()

    def _replay_pair(
        self,
        pair: tuple[int, int],
        runs: list[RunResult],
        suites: Mapping[str, list[Word]],
        campaign: Campaign,
    ) -> CrossVerdict:
        """One matrix cell; a crashing replay becomes an ``error`` cell
        (e.g. a nondeterministic subject poisoning its replay cache) so a
        single bad pair never sinks the campaign."""
        i, j = pair
        row_run, col_run = runs[i], runs[j]
        row, col = row_run.spec.display_name(), col_run.spec.display_name()
        try:
            return self._replay_pair_inner(i, j, row, col, row_run, col_run, suites, campaign)
        except Exception as error:
            return CrossVerdict(
                row=row, col=col, verdict=VERDICT_ERROR,
                error=f"replay failed: {type(error).__name__}: {error}",
            )

    def _replay_pair_inner(
        self,
        i: int,
        j: int,
        row: str,
        col: str,
        row_run: RunResult,
        col_run: RunResult,
        suites: Mapping[str, list[Word]],
        campaign: Campaign,
    ) -> CrossVerdict:
        if row_run.model is None:
            return CrossVerdict(
                row=row, col=col, verdict=VERDICT_ERROR,
                error=f"no model for {row}: {row_run.error}",
            )
        if col_run.model is None:
            return CrossVerdict(
                row=row, col=col, verdict=VERDICT_ERROR,
                error=f"no model for {col}: {col_run.error}",
            )
        if tuple(row_run.model.input_alphabet) != tuple(
            col_run.model.input_alphabet
        ):
            return CrossVerdict(
                row=row, col=col, verdict=VERDICT_INCOMPATIBLE,
                error="different input alphabets",
            )

        suite = suites[row]
        col_oracle = self._replay_oracle(col_run.spec, campaign)
        row_oracle: CachedMembershipOracle | None = None
        try:
            divergences = cross_replay(
                row_run.model,
                col_oracle,
                suite,
                batch_size=row_run.spec.batch_size,
                max_divergences=self.max_divergences,
            )
            cell = CrossVerdict(
                row=row,
                col=col,
                verdict=(
                    (VERDICT_DIVERGE if divergences else VERDICT_SELF)
                    if i == j
                    else (VERDICT_DIVERGE if divergences else VERDICT_AGREE)
                ),
                suite_size=len(suite),
                divergence_count=len(divergences),
            )
            if not divergences:
                return cell
            if i != j:
                row_oracle = self._replay_oracle(row_run.spec, campaign)
            else:
                row_oracle = None
            self._attach_witness(
                cell, [d.word for d in divergences], row_run.model,
                col_run.model, row_oracle, col_oracle,
            )
            return cell
        finally:
            self._close_oracle(col_oracle)
            self._close_oracle(row_oracle)

    def _attach_witness(
        self,
        cell: CrossVerdict,
        words: Sequence[Word],
        row_model: MealyMachine,
        col_model: MealyMachine,
        row_oracle: CachedMembershipOracle | None,
        col_oracle: CachedMembershipOracle,
    ) -> None:
        """Minimize a divergence and record the shortest validated witness.

        Ground truth is the *implementations*: the ddmin predicate replays
        candidates against both SULs, so the reduced witness is guaranteed
        to reproduce the differing outputs.  The BFS witness over the two
        learned models (the exhaustive-search shortest difference) is also
        tried, so whenever it reproduces on the SULs -- always, for
        exactly-learned models -- the final witness is never longer than
        what exhaustive product-machine search finds.  If *no* divergence
        word survives SUL replay -- the implementations agree and the learned model was
        wrong about its own SUL -- the cell is downgraded to ``error``: a
        learner/cache artifact must not read as a protocol finding.
        """
        if row_oracle is None:
            # Diagonal cell: the model itself is the reference side, so
            # every divergence word disagrees by construction.
            def disagrees(candidate: Word) -> bool:
                return tuple(row_model.run(candidate)) != tuple(
                    col_oracle.query(candidate)
                )
        else:
            def disagrees(candidate: Word) -> bool:
                return tuple(row_oracle.query(candidate)) != tuple(
                    col_oracle.query(candidate)
                )

        word = next((w for w in words if disagrees(w)), None)
        if word is None:
            cell.verdict = VERDICT_ERROR
            cell.error = (
                f"model of {cell.row} disagrees with the {cell.col} "
                f"implementation on {len(words)} words, but the two "
                "implementations agree there: the learned model is wrong "
                "about its own SUL (learner/cache artifact)"
            )
            return
        candidates = [minimize_witness(word, disagrees)]
        shortest_model_diff = find_difference(row_model, col_model)
        if shortest_model_diff is not None and disagrees(shortest_model_diff):
            candidates.append(shortest_model_diff)
        witness = min(candidates, key=len)
        cell.witness = witness
        cell.witness_row_outputs = (
            tuple(row_model.run(witness))
            if row_oracle is None
            else tuple(row_oracle.query(witness))
        )
        cell.witness_col_outputs = tuple(col_oracle.query(witness))
        cell.witness_validated = True

    # ------------------------------------------------------------------
    def _write_artifacts(self, result: DiffTestResult) -> Path:
        directory = self.output_dir
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "matrix.txt").write_text(result.render() + "\n")
        (directory / "matrix.json").write_text(
            json.dumps(
                {
                    "matrix": result.matrix.to_dict(),
                    "runs": [run.summary() for run in result.runs],
                },
                indent=2,
            )
            + "\n"
        )
        for (first, second), diff in result.diffs.items():
            stem = f"diff-{_safe_name(first)}-vs-{_safe_name(second)}"
            (directory / f"{stem}.txt").write_text(diff.render() + "\n")
            (directory / f"{stem}.json").write_text(
                json.dumps(diff.to_dict(), indent=2) + "\n"
            )
        return directory


def run_difftest(
    targets: str | Sequence[str | ExperimentSpec | Mapping],
    **campaign_kwargs,
) -> DiffTestResult:
    """One-call differential campaign (the ``repro difftest`` entry point).

    ``targets`` is a family name, or a mixed list of target keys and
    ready :class:`~repro.spec.ExperimentSpec` objects / dicts.
    """
    if isinstance(targets, str):
        return DiffCampaign.family(targets, **campaign_kwargs).run()
    specs: list[ExperimentSpec | Mapping] = []
    family_kwargs = {
        key: campaign_kwargs.pop(key, default)
        for key, default in (("learner", "ttt"), ("seed", 0), ("base", None))
    }
    template = family_kwargs["base"] or ExperimentSpec(target="toy")
    for target in targets:
        if isinstance(target, str):
            specs.append(
                template.clone(
                    target=target,
                    learner=family_kwargs["learner"],
                    seed=family_kwargs["seed"],
                    name=target,
                )
            )
        else:
            specs.append(target)
    return DiffCampaign(specs, **campaign_kwargs).run()

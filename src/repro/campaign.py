"""Concurrent experiment campaigns over declarative specs.

The paper's results are not one learning run but a *matrix* of them --
four QUIC implementations x learners x testing strategies.  A
:class:`Campaign` executes a list (or :meth:`Campaign.grid`) of
:class:`~repro.spec.ExperimentSpec` concurrently on a thread pool and
packages each run as a structured :class:`RunResult`, optionally writing
artifacts (spec echo, model JSON/DOT, report JSON) to an output
directory.

Runs targeting the *same* SUL (equal :meth:`ExperimentSpec.sul_fingerprint`)
share membership-query observations: after each run its query cache is
merged into a per-fingerprint store, and later runs start with a copy of
that store pre-warming their cache layer.  Sharing never changes learned
models (a deterministic SUL answers identically either way) -- it only
removes repeated SUL executions, which is where campaign wall-clock goes.

::

    campaign = Campaign.grid(
        targets=("tcp", "quic-google"),
        learners=("ttt", "lstar"),
        seeds=(0, 1),
        output_dir="runs/",
    )
    for result in campaign.run():
        print(result.summary())
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .adapter.pool import BatchExecutor
from .core.mealy import MealyMachine
from .framework import LearningReport, Prognosis
from .learn.cache import CacheInconsistencyError, QueryCache
from .registry import load_builtins
from .spec import ExperimentSpec


@dataclass
class RunResult:
    """One campaign run: the spec echo plus everything it produced.

    ``error`` is set when the run failed -- e.g. a
    :class:`~repro.learn.nondeterminism.NondeterminismError` for
    mvfst-like targets (``report``/``model`` are then None) or an
    artifact-write failure (learned results are kept).  A failed run
    never aborts the campaign.
    """

    spec: ExperimentSpec
    report: LearningReport | None
    model: MealyMachine | None
    error: str | None = None
    artifact_dir: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def summary(self) -> str:
        name = self.spec.display_name()
        if not self.ok:
            return f"{name}: FAILED ({self.error})"
        report = self.report
        return (
            f"{name}: {report.num_states} states, "
            f"{report.num_transitions} transitions, "
            f"{report.sul_queries} SUL queries, "
            f"{report.cache_hit_rate:.0%} cache hits"
        )


def _safe_name(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


class Campaign:
    """Run many experiment specs, concurrently, with shared query caches.

    ``workers`` bounds how many *runs* execute at once (each run may
    additionally pool its own SUL instances via ``spec.workers``).
    ``share_cache=False`` isolates every run -- the ablation switch the
    cache-sharing benchmark flips.  Specs may be given as
    :class:`~repro.spec.ExperimentSpec` instances or plain dicts.
    """

    def __init__(
        self,
        specs: Iterable[ExperimentSpec | Mapping],
        *,
        workers: int = 1,
        output_dir: str | Path | None = None,
        share_cache: bool = True,
    ) -> None:
        self.specs = [
            spec if isinstance(spec, ExperimentSpec) else ExperimentSpec.from_dict(spec)
            for spec in specs
        ]
        if workers < 1:
            raise ValueError(f"need at least one campaign worker, got {workers}")
        self.workers = workers
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.share_cache = share_cache
        self._caches: dict[str, QueryCache] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        targets: Sequence[str],
        learners: Sequence[str] = ("ttt",),
        seeds: Sequence[int] = (0,),
        base: ExperimentSpec | None = None,
        **campaign_kwargs,
    ) -> "Campaign":
        """The cartesian product ``targets x learners x seeds`` as a campaign.

        ``base`` supplies everything the grid axes don't (equivalence
        chain, middleware, target params, per-run workers); each grid cell
        clones it.  Cells are named ``<target>-<learner>-s<seed>``.
        """
        template = base if base is not None else ExperimentSpec(target="toy")
        specs = [
            template.clone(
                target=target,
                learner=learner,
                seed=seed,
                name=f"{target}-{learner}-s{seed}",
            )
            for target in targets
            for learner in learners
            for seed in seeds
        ]
        return cls(specs, **campaign_kwargs)

    # ------------------------------------------------------------------
    def run(self) -> list[RunResult]:
        """Execute every spec; results are in spec order."""
        load_builtins()
        executor = BatchExecutor(self.workers)
        try:
            return executor.map(self._run_one, list(enumerate(self.specs)))
        finally:
            executor.close()

    # ------------------------------------------------------------------
    def _warm_cache(self, fingerprint: str) -> QueryCache:
        """A fresh cache pre-loaded with the fingerprint's shared store.

        Each run gets its own copy: concurrent same-fingerprint runs never
        mutate a common trie (no locks on the hot query path), they just
        merge what they learned back afterwards.
        """
        warm = QueryCache()
        with self._lock:
            store = self._caches.get(fingerprint)
            if store is not None:
                warm.merge_from(store)
        return warm

    def _absorb_cache(self, fingerprint: str, cache: QueryCache) -> None:
        with self._lock:
            store = self._caches.setdefault(fingerprint, QueryCache())
            try:
                store.merge_from(cache)
            except CacheInconsistencyError:
                # The SUL answered differently across runs (nondeterminism):
                # sharing would poison future runs, so drop the store.
                self._caches.pop(fingerprint, None)

    # ------------------------------------------------------------------
    def _run_one(self, item: tuple[int, ExperimentSpec]) -> RunResult:
        index, spec = item
        try:
            spec.validate()
            shared = None
            if self.share_cache and any(
                m.kind == "cache" for m in spec.middleware
            ):
                shared = self._warm_cache(spec.sul_fingerprint())
            with Prognosis.from_spec(spec, shared_cache=shared) as prognosis:
                report = prognosis.learn()
                if shared is not None and prognosis.cache_oracle is not None:
                    self._absorb_cache(
                        spec.sul_fingerprint(), prognosis.cache_oracle.cache
                    )
        except Exception as error:  # a failed run must not sink the campaign
            return RunResult(
                spec=spec,
                report=None,
                model=None,
                error=f"{type(error).__name__}: {error}",
            )
        result = RunResult(spec=spec, report=report, model=report.model)
        if self.output_dir is not None:
            try:
                result.artifact_dir = str(self._write_artifacts(index, spec, report))
            except OSError as error:
                # Keep the learned result; only the artifact write failed.
                result.error = f"artifact write failed: {error}"
        return result

    def _write_artifacts(
        self, index: int, spec: ExperimentSpec, report: LearningReport
    ) -> Path:
        directory = self.output_dir / f"{index:03d}-{_safe_name(spec.display_name())}"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "spec.json").write_text(spec.to_json() + "\n")
        (directory / "model.json").write_text(
            json.dumps(report.model.to_dict(), indent=2) + "\n"
        )
        (directory / "model.dot").write_text(report.model.to_dot() + "\n")
        (directory / "report.json").write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        return directory


def run_spec(
    spec: ExperimentSpec | Mapping,
    output_dir: str | Path | None = None,
) -> RunResult:
    """Execute a single spec (the ``repro run`` CLI entry point)."""
    return Campaign([spec], output_dir=output_dir, share_cache=False).run()[0]

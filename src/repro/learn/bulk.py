"""Bulk-trace passive learning: stream a corpus, fold, actively refine.

The production half of the passive story (ROADMAP: "millions of users
means traces arrive in bulk, not one active query at a time"):

* **Corpus IO** -- :func:`read_jsonl_corpus` / :func:`write_jsonl_corpus`
  stream ``{"inputs": [...], "outputs": [...]}`` JSONL trace files using
  the :func:`~repro.core.alphabet.serialize_symbol` codec, and
  :func:`generate_corpus` random-walks a registered (netsim-backed)
  target to produce session logs.  :func:`record_full_corpus` dumps one
  active run's entire observation set -- a *covering* corpus, the bulk
  analogue of a warm persistent store.
* **The ``passive`` middleware** -- :class:`CorpusSeededCache` is the
  prefix-tree cache layer pre-seeded from a corpus file; conflicting
  (nondeterministic) traces are skipped and counted, never fatal, and
  hit accounting attributes corpus-served answers.
* **The pipeline** -- :func:`bulk_passive_learn` folds the corpus trie
  into a :class:`~repro.learn.passive.PartialMealyMachine` (hardened
  RPNI), turns its undetermined ``(state, symbol)`` cells into targeted
  membership queries through the spec's oracle/executor stack, then runs
  the spec's active learner over the warmed cache.  Behaviour the corpus
  already determines costs zero SUL resets, mirroring ``repro ci``'s
  warm path; the refined model is byte-identical to a pure-active run
  because cache warmth never changes a deterministic SUL's answers.

Specs opt in declaratively via their ``corpus`` section
(:class:`~repro.spec.CorpusSpec`); with *both* a ``store`` and a
``corpus``, :func:`seed_oracle_from_corpus` streams the corpus through
the store-backed cache's record hook, persisting the observations.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..core.alphabet import SymbolError, deserialize_symbol, serialize_symbol
from ..core.trace import IOTrace, Word, render_word
from ..registry import MIDDLEWARE_REGISTRY, SUL_REGISTRY, load_builtins
from .cache import CachedMembershipOracle, CacheInconsistencyError, QueryCache
from .passive import (
    PartialMealyMachine,
    TraceConflictError,
    fold_prefix_tree,
    prefix_tree_from_cache,
)

class CorpusFormatError(ValueError):
    """A corpus file line that is not a well-formed serialized trace."""


@dataclass
class CorpusConflict:
    """One skipped trace: it contradicted the corpus read so far."""

    trace_index: int | None
    word: Word
    cached: object
    fresh: object

    def to_dict(self) -> dict:
        return {
            "trace_index": self.trace_index,
            "word": render_word(self.word),
            "cached": str(self.cached),
            "fresh": str(self.fresh),
        }


@dataclass
class CorpusStats:
    """Accounting for one streaming corpus pass."""

    traces: int = 0
    #: Input symbols across the accepted traces (the "trace token" unit
    #: of the states-recovered-per-trace-token benchmark).
    tokens: int = 0
    #: Distinct observations the corpus trie holds (dedup'd traces).
    words: int = 0
    skipped: list[CorpusConflict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "traces": self.traces,
            "tokens": self.tokens,
            "words": self.words,
            "skipped": [conflict.to_dict() for conflict in self.skipped],
        }


# ---------------------------------------------------------------------------
# Corpus IO
# ---------------------------------------------------------------------------

def write_jsonl_corpus(path, traces: Iterable) -> int:
    """Write traces as one-JSON-object-per-line; returns the count.

    ``traces`` is either an iterable of :class:`IOTrace` (written in
    arrival order) or of ``(index, IOTrace)`` pairs -- the form attack
    replay emits -- which are **sorted by index before writing**, so a
    corpus assembled from concurrently confirmed strategies always
    round-trips through :func:`stream_corpus` in the same trace order.
    """
    entries = list(traces)
    if entries and not isinstance(entries[0], IOTrace):
        entries = [trace for _, trace in sorted(entries, key=lambda e: e[0])]
    count = 0
    with open(path, "w") as handle:
        for trace in entries:
            handle.write(
                json.dumps(
                    {
                        "inputs": [serialize_symbol(s) for s in trace.inputs],
                        "outputs": [serialize_symbol(s) for s in trace.outputs],
                    }
                )
                + "\n"
            )
            count += 1
    return count


def read_jsonl_corpus(path) -> Iterator[IOTrace]:
    """Stream traces from a JSONL corpus file, one line at a time.

    Malformed lines raise :class:`CorpusFormatError` with the line
    number; they are *format* bugs, unlike nondeterministic traces,
    which are findings the caller may skip-and-report.
    """
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                inputs = tuple(deserialize_symbol(s) for s in data["inputs"])
                outputs = tuple(deserialize_symbol(s) for s in data["outputs"])
                trace = IOTrace(inputs, outputs)
            except (KeyError, TypeError, ValueError, SymbolError) as error:
                raise CorpusFormatError(
                    f"{path}, line {lineno}: not a serialized trace ({error})"
                ) from None
            yield trace


def iter_corpus(source) -> Iterator[IOTrace]:
    """Traces from a JSONL path or any in-memory iterable of traces."""
    if isinstance(source, (str, Path)):
        yield from read_jsonl_corpus(source)
    else:
        yield from source


def stream_corpus(source, max_traces: int | None = None) -> Iterator[IOTrace]:
    """The public streaming reader: traces in deterministic file order.

    A thin, bounded wrapper over :func:`iter_corpus`: traces come back
    exactly in corpus order (which :func:`write_jsonl_corpus` made
    index-sorted for pair-form writers), and ``max_traces`` caps the
    read without consuming the rest of the file.
    """
    for index, trace in enumerate(iter_corpus(source)):
        if max_traces is not None and index >= max_traces:
            return
        yield trace


def load_corpus_cache(
    source,
    skip_conflicts: bool = True,
    max_traces: int | None = None,
) -> tuple[QueryCache, CorpusStats]:
    """One streaming pass: corpus -> prefix-tree trie + accounting.

    The returned :class:`~repro.learn.cache.QueryCache` both seeds the
    active learner's cache and *is* the passive learner's prefix tree
    (:func:`~repro.learn.passive.prefix_tree_from_cache`).  Traces that
    contradict the corpus read so far are skipped and counted when
    ``skip_conflicts`` (nondeterministic logs are a finding, not a
    crash), or raise :class:`~repro.learn.passive.TraceConflictError`
    otherwise.
    """
    cache = QueryCache()
    stats = CorpusStats()
    for index, trace in enumerate(iter_corpus(source)):
        if max_traces is not None and stats.traces >= max_traces:
            break
        try:
            cache.check_consistent(trace.inputs, trace.outputs)
        except CacheInconsistencyError as error:
            if not skip_conflicts:
                raise TraceConflictError(
                    error.word, error.cached, error.fresh, trace_index=index
                ) from None
            stats.skipped.append(
                CorpusConflict(index, error.word, error.cached, error.fresh)
            )
            continue
        cache.insert(trace.inputs, trace.outputs)
        stats.traces += 1
        stats.tokens += len(trace)
    stats.words = cache.entries
    return cache, stats


# ---------------------------------------------------------------------------
# Corpus generation (netsim-backed session logs, covering corpora)
# ---------------------------------------------------------------------------

def log_sessions(
    sul, num_sessions: int = 200, max_len: int = 8, seed: int = 0
) -> list[IOTrace]:
    """Random-walk session logs from a live SUL (netsim traffic shapes).

    Each session resets the SUL and drives a random input word through
    it -- the closest in-process stand-in for "pcap-shaped" production
    logs arriving in bulk.
    """
    rng = random.Random(seed)
    symbols = list(sul.input_alphabet)
    traces = []
    for _ in range(num_sessions):
        word = tuple(
            rng.choice(symbols) for _ in range(rng.randint(1, max_len))
        )
        traces.append(IOTrace(word, tuple(sul.query(word))))
    return traces


def generate_corpus(
    spec, path, num_sessions: int = 200, max_len: int = 8
) -> int:
    """Random-walk a spec's registered target into a JSONL corpus file."""
    load_builtins()
    factory = SUL_REGISTRY.get(spec.target)
    sul = factory(**spec.target_params)
    try:
        traces = log_sessions(
            sul, num_sessions=num_sessions, max_len=max_len, seed=spec.seed
        )
    finally:
        close = getattr(sul, "close", None)
        if callable(close):
            close()
    return write_jsonl_corpus(path, traces)


def record_full_corpus(spec, path) -> int:
    """Dump a *covering* corpus: one active run's entire observation set.

    Re-running the same spec against this corpus pre-answers every
    membership query its learner will ask, so the passive->active
    pipeline completes with **zero SUL resets** -- the bulk-trace
    analogue of a warm persistent store.
    """
    from ..framework import Prognosis

    clean = spec.clone(corpus=None, store=None)
    with Prognosis.from_spec(clean) as prognosis:
        prognosis.learn()
        observations = list(prognosis.cache_oracle.cache.dump())
    return write_jsonl_corpus(
        path, (IOTrace(word, outputs) for word, outputs in observations)
    )


# ---------------------------------------------------------------------------
# The "passive" middleware layer
# ---------------------------------------------------------------------------

@MIDDLEWARE_REGISTRY.register("passive")
class CorpusSeededCache(CachedMembershipOracle):
    """The prefix-tree cache layer pre-seeded from a bulk trace corpus.

    :func:`repro.spec.assemble` upgrades a spec's plain ``cache`` layer
    to this when the spec carries a ``corpus`` section (and no store; a
    store-backed stack is instead seeded through its record hook so the
    corpus persists).  Hit accounting mirrors the store middleware:
    ``corpus_hits`` counts membership queries answered by observations
    that came from the corpus file rather than this run.
    """

    def __init__(
        self,
        inner,
        path,
        skip_conflicts: bool = True,
        max_traces: int | None = None,
        collapse_prefixes: bool = True,
        cache: QueryCache | None = None,
    ) -> None:
        super().__init__(inner, collapse_prefixes=collapse_prefixes, cache=cache)
        self.corpus_path = str(path)
        self.corpus_cache, self.corpus_stats = load_corpus_cache(
            path, skip_conflicts=skip_conflicts, max_traces=max_traces
        )
        # A conflict between the corpus and a pre-warmed shared cache is
        # a caller bug (or genuine nondeterminism): raise, like the store.
        self.cache.merge_from(self.corpus_cache)
        self.corpus_hits = 0

    def _note_hits(self, word: Word, count: int = 1) -> None:
        super()._note_hits(word, count)
        if self.corpus_cache.lookup(word) is not None:
            self.corpus_hits += count

    @property
    def corpus_hit_rate(self) -> float:
        """Share of membership queries served from the corpus."""
        total = self.hits + self.misses
        return self.corpus_hits / total if total else 0.0

    @property
    def corpus_words(self) -> int:
        return self.corpus_cache.entries

    @property
    def corpus_skipped(self) -> int:
        return len(self.corpus_stats.skipped)


def seed_oracle_from_corpus(layer: CachedMembershipOracle, corpus_spec) -> CorpusStats:
    """Stream a corpus into an existing cache layer via its record hook.

    :func:`~repro.learn.passive.seed_cache_from_traces` at bulk scale:
    used when a spec carries *both* a store and a corpus -- recording
    through a :class:`~repro.store.middleware.StoreBackedCache` persists
    the corpus observations into the store.  Observations conflicting
    with what the layer already knows (store rows beat corpus lines) are
    skipped and counted.  The corpus trie and stats are attached to the
    layer as ``corpus_cache`` / ``corpus_stats`` so the bulk pipeline
    and the learning report can account for them.
    """
    cache, stats = load_corpus_cache(
        corpus_spec.path,
        skip_conflicts=corpus_spec.skip_conflicts,
        max_traces=corpus_spec.max_traces,
    )
    for word, outputs in cache.dump():
        if layer.cache.lookup(word) is not None:
            continue
        try:
            layer.cache.check_consistent(word, outputs)
        except CacheInconsistencyError as error:
            if not corpus_spec.skip_conflicts:
                raise TraceConflictError(
                    error.word, error.cached, error.fresh
                ) from None
            stats.skipped.append(
                CorpusConflict(None, error.word, error.cached, error.fresh)
            )
            continue
        layer._record(word, outputs)
    layer.corpus_cache = cache
    layer.corpus_stats = stats
    layer.corpus_skipped = len(stats.skipped)
    return stats


# ---------------------------------------------------------------------------
# The passive -> active pipeline
# ---------------------------------------------------------------------------

@dataclass
class BulkLearnResult:
    """Everything one bulk passive->active run produced."""

    spec: object
    corpus_stats: CorpusStats
    passive_model: PartialMealyMachine
    #: The active-refinement learning report (None with ``refine=False``).
    refined: object | None = None
    #: Membership queries issued for the partial machine's undetermined
    #: ``(state, symbol)`` cells, and how many of them the corpus had
    #: already answered.
    targeted_queries: int = 0
    targeted_covered: int = 0

    @property
    def model(self):
        return None if self.refined is None else self.refined.model

    def summary(self) -> str:
        stats = self.corpus_stats
        lines = [
            f"corpus: {stats.traces} traces, {stats.tokens} tokens, "
            f"{stats.words} distinct words"
            + (f", {len(stats.skipped)} skipped conflicts" if stats.skipped else ""),
            f"passive: {self.passive_model.num_states} states, "
            f"{self.passive_model.completeness:.0%} complete",
        ]
        if self.refined is not None:
            lines.append(
                f"refinement: {self.targeted_queries} targeted queries "
                f"({self.targeted_covered} corpus-covered); "
                + self.refined.summary()
                + f", {self.refined.sul_resets} SUL resets"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "corpus": self.corpus_stats.to_dict(),
            "passive_model": self.passive_model.to_dict(),
            "targeted_queries": self.targeted_queries,
            "targeted_covered": self.targeted_covered,
            "refined": None if self.refined is None else self.refined.to_dict(),
        }


def bulk_passive_learn(spec, *, refine: bool = True, shared_cache=None) -> BulkLearnResult:
    """The full pipeline: stream corpus -> fold -> targeted refinement.

    Requires a spec with a ``corpus`` section.  The corpus is read once
    (by the ``passive``/store middleware the spec assembles); its trie
    seeds the active learner's cache *and* folds into the passive
    :class:`~repro.learn.passive.PartialMealyMachine`.  With ``refine``,
    each undetermined ``(state, symbol)`` cell becomes one targeted
    membership query (access word + missing symbol) batched through the
    spec's oracle/executor stack, then the spec's active learner runs
    over the warmed cache.  Cache warmth never changes a deterministic
    SUL's answers, so the refined model is byte-identical to a
    pure-active run of the same spec -- and a covering corpus
    (:func:`record_full_corpus`) completes with zero SUL resets.
    """
    from ..framework import Prognosis
    from ..spec import SpecError

    if spec.corpus is None:
        raise SpecError("bulk_passive_learn needs a spec with a corpus section")
    spec.validate()
    with Prognosis.from_spec(spec, shared_cache=shared_cache) as prognosis:
        layer = next(
            (m for m in prognosis.middleware if isinstance(m, CorpusSeededCache)),
            None,
        )
        if layer is not None:
            corpus_cache, stats = layer.corpus_cache, layer.corpus_stats
        else:
            # Store-backed stack: seed_oracle_from_corpus attached the trie.
            corpus_cache = getattr(prognosis.cache_oracle, "corpus_cache", None)
            stats = getattr(prognosis.cache_oracle, "corpus_stats", None)
            if corpus_cache is None:
                corpus_cache, stats = load_corpus_cache(
                    spec.corpus.path,
                    skip_conflicts=spec.corpus.skip_conflicts,
                    max_traces=spec.corpus.max_traces,
                )
        passive_model = fold_prefix_tree(
            prefix_tree_from_cache(corpus_cache), prognosis.oracle.input_alphabet
        )
        targeted = covered = 0
        refined = None
        if refine:
            access = passive_model.access_words()
            words = [
                access[state] + (symbol,)
                for state, symbol in passive_model.undetermined_cells()
            ]
            targeted = len(words)
            covered = sum(
                1 for word in words if corpus_cache.lookup(word) is not None
            )
            for start in range(0, len(words), spec.batch_size):
                prognosis.oracle.query_batch(words[start : start + spec.batch_size])
            refined = prognosis.learn()
    return BulkLearnResult(
        spec=spec,
        corpus_stats=stats,
        passive_model=passive_model,
        refined=refined,
        targeted_queries=targeted,
        targeted_covered=covered,
    )

"""A TTT-style discrimination-tree learner for Mealy machines.

This is the learner Prognosis runs by default (the paper uses LearnLib's
TTT).  States are leaves of a *discrimination tree*: inner nodes carry a
distinguishing suffix, edges carry the output word a state produces for
that suffix.  Sifting an access word down the tree locates its state;
counterexamples are decomposed with Rivest-Schapire binary search and
produce a single leaf split each -- the property that makes TTT's query
complexity so much better than classic L*.

(The full TTT algorithm additionally *finalizes* discriminators to keep
them short; we keep the raw RS suffixes, which preserves correctness and
the query-complexity class, and note the simplification in DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.mealy import MealyMachine
from ..core.trace import EPSILON, Word
from .counterexample import rivest_schapire
from .lstar import LearningResult
from .teacher import EquivalenceOracle, MembershipOracle, mq_suffix


@dataclass
class _Leaf:
    """A tree leaf: one discovered state, named by its access word."""

    access: Word
    parent: "_Inner | None" = None


@dataclass
class _Inner:
    """An inner node: a distinguishing suffix and output-labelled children."""

    suffix: Word
    children: dict[Word, "_Leaf | _Inner"] = field(default_factory=dict)
    parent: "_Inner | None" = None


class DiscriminationTree:
    """The tree plus sifting and splitting operations."""

    def __init__(self, oracle: MembershipOracle) -> None:
        self.oracle = oracle
        self.root: _Leaf | _Inner = _Leaf(access=EPSILON)
        self.leaves: dict[Word, _Leaf] = {EPSILON: self.root}

    def sift(self, word: Word) -> tuple[_Leaf, bool]:
        """Walk ``word`` down the tree; returns (leaf, created_new_state)."""
        node = self.root
        while isinstance(node, _Inner):
            outputs = mq_suffix(self.oracle, word, node.suffix)
            child = node.children.get(outputs)
            if child is None:
                leaf = _Leaf(access=word, parent=node)
                node.children[outputs] = leaf
                self.leaves[word] = leaf
                return leaf, True
            node = child
        return node, False

    def split(self, old_leaf: _Leaf, new_access: Word, discriminator: Word) -> _Leaf:
        """Replace ``old_leaf`` with an inner node separating it from the new
        state at ``new_access`` via ``discriminator``."""
        old_outputs = mq_suffix(self.oracle, old_leaf.access, discriminator)
        new_outputs = mq_suffix(self.oracle, new_access, discriminator)
        if old_outputs == new_outputs:
            raise ValueError(
                f"discriminator {discriminator} does not split "
                f"{old_leaf.access} from {new_access}"
            )
        inner = _Inner(suffix=discriminator, parent=old_leaf.parent)
        if old_leaf.parent is None:
            self.root = inner
        else:
            parent = old_leaf.parent
            for edge, child in parent.children.items():
                if child is old_leaf:
                    parent.children[edge] = inner
                    break
        old_leaf.parent = inner
        new_leaf = _Leaf(access=new_access, parent=inner)
        inner.children[old_outputs] = old_leaf
        inner.children[new_outputs] = new_leaf
        self.leaves[new_access] = new_leaf
        return new_leaf


class TTTLearner:
    """Discrimination-tree learner with Rivest-Schapire CE processing."""

    def __init__(
        self,
        oracle: MembershipOracle,
        equivalence_oracle: EquivalenceOracle,
        max_rounds: int = 200,
        name: str = "ttt",
    ) -> None:
        self.oracle = oracle
        self.equivalence_oracle = equivalence_oracle
        self.max_rounds = max_rounds
        self.name = name

    # ------------------------------------------------------------------
    def learn(self) -> LearningResult:
        alphabet: Alphabet = self.oracle.input_alphabet
        tree = DiscriminationTree(self.oracle)
        counterexamples: list[Word] = []
        for round_number in range(1, self.max_rounds + 1):
            hypothesis = self._build_hypothesis(tree, alphabet)
            counterexample = self.equivalence_oracle.find_counterexample(hypothesis)
            if counterexample is None:
                return LearningResult(
                    model=hypothesis.relabel(),
                    rounds=round_number,
                    counterexamples=counterexamples,
                )
            counterexamples.append(counterexample)
            self._process_counterexample(tree, hypothesis, counterexample)
        raise RuntimeError(f"TTT did not converge within {self.max_rounds} rounds")

    # ------------------------------------------------------------------
    def _build_hypothesis(
        self, tree: DiscriminationTree, alphabet: Alphabet
    ) -> MealyMachine:
        """Sift every transition; iterate until no new states appear.

        States are identified by their access words (leaf labels).
        """
        while True:
            grew = False
            transitions: dict[
                tuple[Word, AbstractSymbol], tuple[Word, AbstractSymbol]
            ] = {}
            for access in list(tree.leaves):
                for symbol in alphabet:
                    extended = access + (symbol,)
                    target, created = tree.sift(extended)
                    output = mq_suffix(self.oracle, access, (symbol,))[-1]
                    transitions[(access, symbol)] = (target.access, output)
                    if created:
                        grew = True
                        break
                if grew:
                    break
            if not grew:
                return MealyMachine(EPSILON, alphabet, transitions, self.name)

    # ------------------------------------------------------------------
    def _process_counterexample(
        self,
        tree: DiscriminationTree,
        hypothesis: MealyMachine,
        counterexample: Word,
    ) -> None:
        """One RS decomposition -> one leaf split.

        A single counterexample may expose several splits; the caller loops
        via repeated equivalence queries, but we also re-check the same word
        here until it stops being a counterexample (TTT's behaviour).
        """
        while True:
            actual = self.oracle.query(counterexample)
            if actual == hypothesis.run(counterexample):
                return
            # States of a discrimination-tree hypothesis *are* their access
            # words, so the identity map gives RS the leaf access words.
            decomposition = rivest_schapire(
                self.oracle,
                hypothesis,
                counterexample,
                access_of={state: state for state in hypothesis.states},
            )
            # The hypothesis state after u.a was represented by old_access;
            # the SUL shows u.a is actually a different state, distinguished
            # by the suffix v.
            prefix_state = hypothesis.state_after(decomposition.prefix)
            old_access = hypothesis.state_after(
                decomposition.prefix + (decomposition.symbol,)
            )
            new_access = prefix_state + (decomposition.symbol,)
            if not decomposition.suffix:
                raise RuntimeError(
                    "empty RS discriminator: transition outputs disagree "
                    "with direct queries (nondeterministic SUL?)"
                )
            old_leaf = tree.leaves[old_access]
            tree.split(old_leaf, new_access, decomposition.suffix)
            hypothesis = self._build_hypothesis(tree, self.oracle.input_alphabet)

"""A TTT-style discrimination-tree learner for Mealy machines.

This is the learner Prognosis runs by default (the paper uses LearnLib's
TTT).  States are leaves of a *discrimination tree*: inner nodes carry a
distinguishing suffix, edges carry the output word a state produces for
that suffix.  Sifting an access word down the tree locates its state;
counterexamples are decomposed with Rivest-Schapire binary search and
produce a single leaf split each -- the property that makes TTT's query
complexity so much better than classic L*.

(The full TTT algorithm additionally *finalizes* discriminators to keep
them short; we keep the raw RS suffixes, which preserves correctness and
the query-complexity class, and note the simplification in DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.mealy import MealyMachine
from ..core.trace import EPSILON, Word
from ..registry import LEARNER_REGISTRY
from .counterexample import rivest_schapire
from .lstar import LearningResult
from .teacher import EquivalenceOracle, MembershipOracle, mq_suffix, mq_suffix_batch


@dataclass
class _Leaf:
    """A tree leaf: one discovered state, named by its access word."""

    access: Word
    parent: "_Inner | None" = None


@dataclass
class _Inner:
    """An inner node: a distinguishing suffix and output-labelled children."""

    suffix: Word
    children: dict[Word, "_Leaf | _Inner"] = field(default_factory=dict)
    parent: "_Inner | None" = None


class DiscriminationTree:
    """The tree plus sifting and splitting operations."""

    def __init__(self, oracle: MembershipOracle) -> None:
        self.oracle = oracle
        self.root: _Leaf | _Inner = _Leaf(access=EPSILON)
        self.leaves: dict[Word, _Leaf] = {EPSILON: self.root}

    def sift(self, word: Word) -> tuple[_Leaf, bool]:
        """Walk ``word`` down the tree; returns (leaf, created_new_state)."""
        return self.sift_batch([word])[0]

    def sift_batch(self, words: Sequence[Word]) -> list[tuple[_Leaf, bool]]:
        """Sift many words at once, level-synchronized.

        All words still at an inner node form one membership-query batch
        per tree level, so the oracle stack below can dedup, collapse and
        parallelize.  Within a level, words are processed in submission
        order -- the first word to reach an inner node with a novel output
        becomes the new leaf, exactly as it would sifting one at a time.
        """
        words = [tuple(word) for word in words]
        results: list[tuple[_Leaf, bool] | None] = [None] * len(words)
        nodes: list[_Leaf | _Inner] = [self.root] * len(words)
        active: list[int] = []
        for index, word in enumerate(words):
            if isinstance(self.root, _Inner):
                active.append(index)
            else:
                results[index] = (self.root, False)
        while active:
            answers = mq_suffix_batch(
                self.oracle,
                [(words[index], nodes[index].suffix) for index in active],
            )
            next_active: list[int] = []
            for index, outputs in zip(active, answers):
                word = words[index]
                node = nodes[index]
                child = node.children.get(outputs)
                if child is None:
                    leaf = _Leaf(access=word, parent=node)
                    node.children[outputs] = leaf
                    self.leaves[word] = leaf
                    results[index] = (leaf, True)
                elif isinstance(child, _Leaf):
                    results[index] = (child, False)
                else:
                    nodes[index] = child
                    next_active.append(index)
            active = next_active
        return results  # type: ignore[return-value]

    def split(self, old_leaf: _Leaf, new_access: Word, discriminator: Word) -> _Leaf:
        """Replace ``old_leaf`` with an inner node separating it from the new
        state at ``new_access`` via ``discriminator``."""
        old_outputs = mq_suffix(self.oracle, old_leaf.access, discriminator)
        new_outputs = mq_suffix(self.oracle, new_access, discriminator)
        if old_outputs == new_outputs:
            raise ValueError(
                f"discriminator {discriminator} does not split "
                f"{old_leaf.access} from {new_access}"
            )
        inner = _Inner(suffix=discriminator, parent=old_leaf.parent)
        if old_leaf.parent is None:
            self.root = inner
        else:
            parent = old_leaf.parent
            for edge, child in parent.children.items():
                if child is old_leaf:
                    parent.children[edge] = inner
                    break
        old_leaf.parent = inner
        new_leaf = _Leaf(access=new_access, parent=inner)
        inner.children[old_outputs] = old_leaf
        inner.children[new_outputs] = new_leaf
        self.leaves[new_access] = new_leaf
        return new_leaf


@LEARNER_REGISTRY.register("ttt")
class TTTLearner:
    """Discrimination-tree learner with Rivest-Schapire CE processing."""

    def __init__(
        self,
        oracle: MembershipOracle,
        equivalence_oracle: EquivalenceOracle,
        max_rounds: int = 200,
        name: str = "ttt",
    ) -> None:
        self.oracle = oracle
        self.equivalence_oracle = equivalence_oracle
        self.max_rounds = max_rounds
        self.name = name

    # ------------------------------------------------------------------
    def learn(self) -> LearningResult:
        alphabet: Alphabet = self.oracle.input_alphabet
        tree = DiscriminationTree(self.oracle)
        counterexamples: list[Word] = []
        for round_number in range(1, self.max_rounds + 1):
            hypothesis = self._build_hypothesis(tree, alphabet)
            counterexample = self.equivalence_oracle.find_counterexample(hypothesis)
            if counterexample is None:
                return LearningResult(
                    model=hypothesis.relabel(),
                    rounds=round_number,
                    counterexamples=counterexamples,
                )
            counterexamples.append(counterexample)
            self._process_counterexample(tree, hypothesis, counterexample)
        raise RuntimeError(f"TTT did not converge within {self.max_rounds} rounds")

    # ------------------------------------------------------------------
    def _build_hypothesis(
        self, tree: DiscriminationTree, alphabet: Alphabet
    ) -> MealyMachine:
        """Sift every transition; iterate until no new states appear.

        States are identified by their access words (leaf labels).  All
        transitions still missing are gathered into one sift batch (and one
        transition-output batch) per iteration; transitions already sifted
        stay valid when a sift discovers a new state -- new leaves only add
        edges to the tree, they never redirect existing ones -- so only the
        new state's own transitions remain for the next iteration instead
        of restarting the whole leaf x symbol loop.
        """
        transitions: dict[
            tuple[Word, AbstractSymbol], tuple[Word, AbstractSymbol]
        ] = {}
        while True:
            pending = [
                (access, symbol)
                for access in list(tree.leaves)
                for symbol in alphabet
                if (access, symbol) not in transitions
            ]
            if not pending:
                return MealyMachine(EPSILON, alphabet, transitions, self.name)
            extended = [access + (symbol,) for access, symbol in pending]
            targets = tree.sift_batch(extended)
            # The sift queries above all start with the extended word, so
            # these transition-output lookups are trie hits (or one batch
            # of fresh runs when the root is still a single leaf).
            outputs = self.oracle.query_batch(extended)
            for (access, symbol), (target, _), word_outputs in zip(
                pending, targets, outputs
            ):
                transitions[(access, symbol)] = (target.access, word_outputs[-1])

    # ------------------------------------------------------------------
    def _process_counterexample(
        self,
        tree: DiscriminationTree,
        hypothesis: MealyMachine,
        counterexample: Word,
    ) -> None:
        """One RS decomposition -> one leaf split.

        A single counterexample may expose several splits; the caller loops
        via repeated equivalence queries, but we also re-check the same word
        here until it stops being a counterexample (TTT's behaviour).
        """
        while True:
            actual = self.oracle.query(counterexample)
            if actual == hypothesis.run(counterexample):
                return
            # States of a discrimination-tree hypothesis *are* their access
            # words, so the identity map gives RS the leaf access words.
            decomposition = rivest_schapire(
                self.oracle,
                hypothesis,
                counterexample,
                access_of={state: state for state in hypothesis.states},
            )
            # The hypothesis state after u.a was represented by old_access;
            # the SUL shows u.a is actually a different state, distinguished
            # by the suffix v.
            prefix_state = hypothesis.state_after(decomposition.prefix)
            old_access = hypothesis.state_after(
                decomposition.prefix + (decomposition.symbol,)
            )
            new_access = prefix_state + (decomposition.symbol,)
            if not decomposition.suffix:
                raise RuntimeError(
                    "empty RS discriminator: transition outputs disagree "
                    "with direct queries (nondeterministic SUL?)"
                )
            old_leaf = tree.leaves[old_access]
            tree.split(old_leaf, new_access, decomposition.suffix)
            hypothesis = self._build_hypothesis(tree, self.oracle.input_alphabet)

"""A prefix-tree query cache (the Oracle-Table optimization of section 3.2).

Active learners re-ask heavily overlapping queries; because a deterministic
SUL's responses are prefix-closed, a trie of past observations answers any
query that is a prefix of (or equal to) something already asked.  The cache
also *detects* nondeterminism for free: a cached output conflicting with a
fresh observation can only mean the SUL (or the abstraction) is not
deterministic.

:meth:`CachedMembershipOracle.query_batch` additionally acts as the batch
*planner*: it dedups repeated words within a batch, answers trie hits
without touching the SUL, and collapses words that are prefixes of other
batch members -- prefix-closure means a single SUL run of the longer word
answers both.  Only the surviving words are forwarded to the inner oracle
(majority vote, SUL pool, ...) in one batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.trace import Word
from ..registry import MIDDLEWARE_REGISTRY
from .teacher import MembershipOracle, OracleStats


class CacheInconsistencyError(Exception):
    """A fresh observation contradicts the cache: nondeterminism."""

    def __init__(self, word: Word, cached: AbstractSymbol, fresh: AbstractSymbol):
        self.word = word
        self.cached = cached
        self.fresh = fresh
        super().__init__(
            f"nondeterministic SUL: on {word} cache says {cached}, SUL says {fresh}"
        )


@dataclass
class _TrieNode:
    children: dict = field(default_factory=dict)  # symbol -> (output, _TrieNode)
    terminal: bool = False  # a stored word ends exactly here


class QueryCache:
    """The trie itself, usable standalone (also backs the EQ oracles).

    ``entries`` counts *stored words* (queries whose full observation was
    inserted); ``nodes`` counts trie nodes, i.e. the number of distinct
    (word-prefix, output) steps held.  Earlier versions conflated the two.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self.entries = 0
        self.nodes = 0

    def lookup(self, word: Sequence[AbstractSymbol]) -> Word | None:
        """Cached outputs for ``word``, or None on any cache miss."""
        node = self._root
        outputs: list[AbstractSymbol] = []
        for symbol in word:
            slot = node.children.get(symbol)
            if slot is None:
                return None
            output, node = slot
            outputs.append(output)
        return tuple(outputs)

    def longest_cached_prefix(
        self, word: Sequence[AbstractSymbol]
    ) -> tuple[Word, Word]:
        """The longest prefix of ``word`` held in the trie, with its outputs.

        Returns ``(prefix, outputs)``; both are empty when not even the
        first symbol is cached.  The batch planner uses this to see how much
        of a word an execution would re-traverse, and callers can use it to
        warm-start adapters that support checkpointing.
        """
        node = self._root
        outputs: list[AbstractSymbol] = []
        matched = 0
        for symbol in word:
            slot = node.children.get(symbol)
            if slot is None:
                break
            output, node = slot
            outputs.append(output)
            matched += 1
        return tuple(word[:matched]), tuple(outputs)

    def insert(self, word: Sequence[AbstractSymbol], outputs: Sequence[AbstractSymbol]) -> None:
        """Store an observation; raises on conflicts with cached outputs."""
        node = self._root
        for symbol, output in zip(word, outputs):
            slot = node.children.get(symbol)
            if slot is None:
                child = _TrieNode()
                node.children[symbol] = (output, child)
                node = child
                self.nodes += 1
            else:
                cached_output, child = slot
                if cached_output != output:
                    raise CacheInconsistencyError(
                        tuple(word), cached_output, output
                    )
                node = child
        if not node.terminal:
            node.terminal = True
            self.entries += 1

    def clear(self) -> None:
        self._root = _TrieNode()
        self.entries = 0
        self.nodes = 0

    def dump(self) -> Iterator[tuple[Word, Word]]:
        """All stored ``(word, outputs)`` observations, depth-first.

        Every trie path ends at a terminal node (inserts mark their end),
        so re-inserting the dumped words into an empty trie reproduces the
        full structure -- the transfer :meth:`merge_from` relies on.
        """
        stack: list[tuple[_TrieNode, Word, Word]] = [(self._root, (), ())]
        while stack:
            node, word, outputs = stack.pop()
            if node.terminal:
                yield word, outputs
            for symbol, (output, child) in node.children.items():
                stack.append((child, word + (symbol,), outputs + (output,)))

    def check_consistent(
        self, word: Sequence[AbstractSymbol], outputs: Sequence[AbstractSymbol]
    ) -> None:
        """Raise :class:`CacheInconsistencyError` if the observation
        conflicts with the trie.  Never mutates; a missing path is fine
        (only *disagreeing* outputs along a shared prefix are conflicts).
        """
        node = self._root
        for symbol, output in zip(word, outputs):
            slot = node.children.get(symbol)
            if slot is None:
                return
            cached_output, node = slot
            if cached_output != output:
                raise CacheInconsistencyError(tuple(word), cached_output, output)

    def merge_from(self, other: "QueryCache") -> None:
        """Absorb every observation stored in ``other``.

        Raises :class:`CacheInconsistencyError` if the two tries disagree
        on any output -- merging observations of *different* SULs is a
        caller bug (or genuine nondeterminism).  The merge is atomic:
        every observation is checked against this trie before any is
        inserted, so a failed merge leaves the destination untouched
        instead of half-poisoned.
        """
        observations = list(other.dump())
        for word, outputs in observations:
            self.check_consistent(word, outputs)
        for word, outputs in observations:
            self.insert(word, outputs)


def _drop_covered_prefixes(words: Sequence[Word]) -> list[Word]:
    """Words from ``words`` that are not proper prefixes of another member.

    One SUL execution of a word also answers every prefix of it, so only
    the maximal words of a (deduplicated) batch need to run.  Order of the
    survivors follows the input order.
    """
    trie: dict = {}
    for word in words:
        node = trie
        for symbol in word:
            node = node.setdefault(symbol, {})
    survivors: list[Word] = []
    for word in words:
        node = trie
        for symbol in word:
            node = node[symbol]
        if not node:  # nothing extends this word: it must run
            survivors.append(word)
    return survivors


@MIDDLEWARE_REGISTRY.register("cache")
class CachedMembershipOracle:
    """Membership oracle layer that answers from the trie when possible.

    ``collapse_prefixes`` toggles the within-batch prefix collapse (kept
    switchable for the ablation benchmark); dedup and trie answering are
    always on.  Passing ``cache`` substitutes a pre-warmed
    :class:`QueryCache` (campaigns share per-SUL-fingerprint caches across
    runs this way).
    """

    def __init__(
        self,
        inner: MembershipOracle,
        collapse_prefixes: bool = True,
        cache: QueryCache | None = None,
    ) -> None:
        self.inner = inner
        self.input_alphabet: Alphabet = inner.input_alphabet
        self.cache = cache if cache is not None else QueryCache()
        self.stats = OracleStats()
        self.collapse_prefixes = collapse_prefixes
        self.hits = 0
        self.misses = 0
        self.batch_deduped = 0
        self.prefix_collapsed = 0

    def _note_hits(self, word: Word, count: int = 1) -> None:
        """Hit accounting hook (:class:`~repro.store.middleware
        .StoreBackedCache` overrides it to attribute store-served hits)."""
        self.hits += count

    def _record(self, word: Word, outputs: Word) -> None:
        """Fresh-observation hook; the store middleware also persists."""
        self.cache.insert(word, outputs)

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        word = tuple(word)
        self.stats.note(word)
        cached = self.cache.lookup(word)
        if cached is not None:
            self._note_hits(word)
            return cached
        self.misses += 1
        outputs = self.inner.query(word)
        self._record(word, tuple(outputs))
        return outputs

    def query_batch(self, words: Sequence[Sequence[AbstractSymbol]]) -> list[Word]:
        words = [tuple(word) for word in words]
        for word in words:
            self.stats.note(word)
        results: list[Word | None] = [None] * len(words)

        # 1. Answer what the trie already knows.
        pending: dict[Word, list[int]] = {}
        for index, word in enumerate(words):
            cached = self.cache.lookup(word)
            if cached is not None:
                self._note_hits(word)
                results[index] = cached
            else:
                pending.setdefault(word, []).append(index)
        if not pending:
            return results  # type: ignore[return-value]

        # 2. Dedup within the batch, then collapse words that are prefixes
        #    of other batch members: the longer run answers both.
        unique = list(pending)
        self.batch_deduped += sum(
            len(indices) for indices in pending.values()
        ) - len(unique)
        if self.collapse_prefixes and len(unique) > 1:
            survivors = _drop_covered_prefixes(unique)
            self.prefix_collapsed += len(unique) - len(survivors)
        else:
            survivors = unique

        # 3. One inner batch for the survivors; everything else is answered
        #    from the trie the survivors just populated.
        answers = self.inner.query_batch(survivors)
        for word, outputs in zip(survivors, answers):
            self._record(word, tuple(outputs))
        executed = set(survivors)
        for word, indices in pending.items():
            outputs = self.cache.lookup(word)
            assert outputs is not None  # survivors cover every pending word
            if word in executed:
                self.misses += 1
                self._note_hits(word, len(indices) - 1)
            else:
                self._note_hits(word, len(indices))
            for index in indices:
                results[index] = outputs
        return results  # type: ignore[return-value]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

"""A prefix-tree query cache (the Oracle-Table optimization of section 3.2).

Active learners re-ask heavily overlapping queries; because a deterministic
SUL's responses are prefix-closed, a trie of past observations answers any
query that is a prefix of (or equal to) something already asked.  The cache
also *detects* nondeterminism for free: a cached output conflicting with a
fresh observation can only mean the SUL (or the abstraction) is not
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.trace import Word
from .teacher import MembershipOracle, OracleStats


class CacheInconsistencyError(Exception):
    """A fresh observation contradicts the cache: nondeterminism."""

    def __init__(self, word: Word, cached: AbstractSymbol, fresh: AbstractSymbol):
        self.word = word
        self.cached = cached
        self.fresh = fresh
        super().__init__(
            f"nondeterministic SUL: on {word} cache says {cached}, SUL says {fresh}"
        )


@dataclass
class _TrieNode:
    children: dict = field(default_factory=dict)  # symbol -> (output, _TrieNode)


class QueryCache:
    """The trie itself, usable standalone (also backs the EQ oracles)."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self.entries = 0

    def lookup(self, word: Sequence[AbstractSymbol]) -> Word | None:
        """Cached outputs for ``word``, or None on any cache miss."""
        node = self._root
        outputs: list[AbstractSymbol] = []
        for symbol in word:
            slot = node.children.get(symbol)
            if slot is None:
                return None
            output, node = slot
            outputs.append(output)
        return tuple(outputs)

    def insert(self, word: Sequence[AbstractSymbol], outputs: Sequence[AbstractSymbol]) -> None:
        """Store an observation; raises on conflicts with cached outputs."""
        node = self._root
        for symbol, output in zip(word, outputs):
            slot = node.children.get(symbol)
            if slot is None:
                child = _TrieNode()
                node.children[symbol] = (output, child)
                node = child
                self.entries += 1
            else:
                cached_output, child = slot
                if cached_output != output:
                    raise CacheInconsistencyError(
                        tuple(word), cached_output, output
                    )
                node = child

    def clear(self) -> None:
        self._root = _TrieNode()
        self.entries = 0


class CachedMembershipOracle:
    """Membership oracle layer that answers from the trie when possible."""

    def __init__(self, inner: MembershipOracle) -> None:
        self.inner = inner
        self.input_alphabet: Alphabet = inner.input_alphabet
        self.cache = QueryCache()
        self.stats = OracleStats()
        self.hits = 0
        self.misses = 0

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        self.stats.note(word)
        cached = self.cache.lookup(word)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        outputs = self.inner.query(word)
        self.cache.insert(word, outputs)
        return outputs

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

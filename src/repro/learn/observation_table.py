"""The L* observation table for Mealy machines.

Rows are prefixes (access words), columns are distinguishing suffixes; cell
``(s, e)`` holds the output word the SUL produces for the ``e`` part of the
query ``s . e``.  The table must be *closed* (every one-step extension of a
short prefix behaves like some short prefix) and *consistent* (equal rows
stay equal after every symbol) before a hypothesis can be conjectured.
"""

from __future__ import annotations

from typing import Sequence

from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.mealy import MealyMachine
from ..core.trace import EPSILON, Word
from .teacher import MembershipOracle, mq_suffix, mq_suffix_batch


class ObservationTable:
    """Mutable observation table driven by a membership oracle."""

    def __init__(self, alphabet: Alphabet, oracle: MembershipOracle) -> None:
        self.alphabet = alphabet
        self.oracle = oracle
        self.short_prefixes: list[Word] = [EPSILON]
        self.suffixes: list[Word] = [(symbol,) for symbol in alphabet]
        self._cells: dict[tuple[Word, Word], Word] = {}

    # ------------------------------------------------------------------
    # Cells and rows
    # ------------------------------------------------------------------
    def cell(self, prefix: Word, suffix: Word) -> Word:
        key = (prefix, suffix)
        if key not in self._cells:
            self._cells[key] = mq_suffix(self.oracle, prefix, suffix)
        return self._cells[key]

    def row(self, prefix: Word) -> tuple[Word, ...]:
        return tuple(self.cell(prefix, suffix) for suffix in self.suffixes)

    def extended_prefixes(self) -> list[Word]:
        return [s + (a,) for s in self.short_prefixes for a in self.alphabet]

    def fill(self) -> None:
        """Batch-fill every missing cell of the table in one query batch.

        Collects the (prefix, suffix) cells not yet observed -- over all
        short prefixes and their one-step extensions -- and submits them as
        a single batch, so the layers below can dedup, prefix-collapse and
        parallelize instead of seeing one ``cell()`` query at a time.
        """
        missing = [
            (prefix, suffix)
            for prefix in self.short_prefixes + self.extended_prefixes()
            for suffix in self.suffixes
            if (prefix, suffix) not in self._cells
        ]
        if not missing:
            return
        answers = mq_suffix_batch(self.oracle, missing)
        for key, outputs in zip(missing, answers):
            self._cells[key] = outputs

    # ------------------------------------------------------------------
    # Closedness and consistency
    # ------------------------------------------------------------------
    def find_unclosed(self) -> Word | None:
        """An extension whose row matches no short prefix, or None."""
        self.fill()
        short_rows = {self.row(s) for s in self.short_prefixes}
        for extension in self.extended_prefixes():
            if self.row(extension) not in short_rows:
                return extension
        return None

    def find_inconsistency(self) -> Word | None:
        """A new suffix exposing an inconsistency, or None.

        If two short prefixes have equal rows but diverge after appending a
        symbol, the distinguishing suffix (symbol + old suffix) is returned
        so the caller can add it as a new column.
        """
        self.fill()
        by_row: dict[tuple[Word, ...], list[Word]] = {}
        for prefix in self.short_prefixes:
            by_row.setdefault(self.row(prefix), []).append(prefix)
        for group in by_row.values():
            if len(group) < 2:
                continue
            for i, first in enumerate(group):
                for second in group[i + 1 :]:
                    for symbol in self.alphabet:
                        for suffix in self.suffixes:
                            extended = (symbol,) + suffix
                            if self.cell(first, extended) != self.cell(
                                second, extended
                            ):
                                return extended
        return None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_short_prefix(self, prefix: Word) -> None:
        if prefix not in self.short_prefixes:
            self.short_prefixes.append(prefix)

    def add_suffix(self, suffix: Word) -> None:
        if suffix not in self.suffixes:
            self.suffixes.append(suffix)

    def add_counterexample(self, counterexample: Sequence[AbstractSymbol]) -> None:
        """Classic L*: add every prefix of the counterexample as short."""
        word = tuple(counterexample)
        for length in range(1, len(word) + 1):
            self.add_short_prefix(word[:length])

    # ------------------------------------------------------------------
    # Hypothesis construction
    # ------------------------------------------------------------------
    def to_hypothesis(self, name: str = "hypothesis") -> MealyMachine:
        """Build the conjectured Mealy machine from a closed, consistent table."""
        representative: dict[tuple[Word, ...], Word] = {}
        for prefix in self.short_prefixes:
            representative.setdefault(self.row(prefix), prefix)
        transitions: dict[tuple[Word, AbstractSymbol], tuple[Word, AbstractSymbol]] = {}
        for prefix in representative.values():
            for symbol in self.alphabet:
                extension = prefix + (symbol,)
                target_row = self.row(extension)
                if target_row not in representative:
                    raise ValueError("table is not closed")
                output = self.cell(prefix, (symbol,))[-1]
                transitions[(prefix, symbol)] = (representative[target_row], output)
        machine = MealyMachine(
            representative[self.row(EPSILON)], self.alphabet, transitions, name
        )
        return machine.relabel()

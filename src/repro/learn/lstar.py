"""Angluin's L* for Mealy machines.

The baseline MAT learner: refine an observation table until closed and
consistent, conjecture, ask the equivalence oracle, fold the counterexample
back in, repeat.  Kept alongside the TTT-style learner as the ablation
baseline (bench A1) -- it asks noticeably more membership queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.mealy import MealyMachine
from ..core.trace import Word
from ..registry import LEARNER_REGISTRY
from .observation_table import ObservationTable
from .teacher import EquivalenceOracle, MembershipOracle


@dataclass
class LearningResult:
    """A learned model plus the run's accounting."""

    model: MealyMachine
    rounds: int
    counterexamples: list[Word] = field(default_factory=list)

    @property
    def num_states(self) -> int:
        return self.model.num_states

    @property
    def num_transitions(self) -> int:
        return self.model.num_transitions


@LEARNER_REGISTRY.register("lstar")
class LStarLearner:
    """Classic observation-table learner."""

    def __init__(
        self,
        oracle: MembershipOracle,
        equivalence_oracle: EquivalenceOracle,
        max_rounds: int = 100,
        name: str = "lstar",
    ) -> None:
        self.oracle = oracle
        self.equivalence_oracle = equivalence_oracle
        self.max_rounds = max_rounds
        self.name = name

    def learn(self) -> LearningResult:
        table = ObservationTable(self.oracle.input_alphabet, self.oracle)
        counterexamples: list[Word] = []
        for round_number in range(1, self.max_rounds + 1):
            self._stabilize(table)
            hypothesis = table.to_hypothesis(name=self.name)
            counterexample = self.equivalence_oracle.find_counterexample(hypothesis)
            if counterexample is None:
                return LearningResult(
                    model=hypothesis,
                    rounds=round_number,
                    counterexamples=counterexamples,
                )
            counterexamples.append(counterexample)
            table.add_counterexample(counterexample)
        raise RuntimeError(
            f"L* did not converge within {self.max_rounds} rounds"
        )

    @staticmethod
    def _stabilize(table: ObservationTable) -> None:
        """Make the table closed and consistent."""
        while True:
            unclosed = table.find_unclosed()
            if unclosed is not None:
                table.add_short_prefix(unclosed)
                continue
            new_suffix = table.find_inconsistency()
            if new_suffix is not None:
                table.add_suffix(new_suffix)
                continue
            return

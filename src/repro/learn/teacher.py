"""The Minimally Adequate Teacher interface (paper section 4.1).

Learners interact with the SUL exclusively through two oracle protocols:

* a :class:`MembershipOracle` answers "what does the SUL output for this
  input word?";
* an :class:`EquivalenceOracle` answers "is this hypothesis correct?" with
  either ``None`` or a counterexample input word.

:class:`SULMembershipOracle` adapts a :class:`repro.adapter.sul.SUL` to the
membership protocol and keeps the statistics the paper reports (e.g. the
4,726 membership queries of section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from ..adapter.sul import SUL
from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.mealy import MealyMachine
from ..core.trace import Word


class MembershipOracle(Protocol):
    """Answers membership queries over abstract words."""

    input_alphabet: Alphabet

    def query(self, word: Sequence[AbstractSymbol]) -> Word:  # pragma: no cover
        ...


class EquivalenceOracle(Protocol):
    """Searches for counterexamples to a hypothesis."""

    def find_counterexample(
        self, hypothesis: MealyMachine
    ) -> Word | None:  # pragma: no cover
        ...


@dataclass
class OracleStats:
    """Query accounting for one oracle layer."""

    queries: int = 0
    symbols: int = 0

    def note(self, word: Sequence[AbstractSymbol]) -> None:
        self.queries += 1
        self.symbols += len(word)


class SULMembershipOracle:
    """The base oracle: every query reaches the actual SUL."""

    def __init__(self, sul: SUL) -> None:
        self.sul = sul
        self.input_alphabet = sul.input_alphabet
        self.stats = OracleStats()

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        self.stats.note(word)
        return self.sul.query(word)


class CountingOracle:
    """A transparent pass-through layer that only counts (for ablations)."""

    def __init__(self, inner: MembershipOracle) -> None:
        self.inner = inner
        self.input_alphabet = inner.input_alphabet
        self.stats = OracleStats()

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        self.stats.note(word)
        return self.inner.query(word)


def mq_suffix(
    oracle: MembershipOracle, prefix: Word, suffix: Word
) -> Word:
    """Outputs for ``suffix`` after driving the SUL through ``prefix``."""
    outputs = oracle.query(prefix + suffix)
    return outputs[len(prefix):]

"""The Minimally Adequate Teacher interface (paper section 4.1).

Learners interact with the SUL exclusively through two oracle protocols:

* a :class:`MembershipOracle` answers "what does the SUL output for this
  input word?";
* an :class:`EquivalenceOracle` answers "is this hypothesis correct?" with
  either ``None`` or a counterexample input word.

:class:`SULMembershipOracle` adapts a :class:`repro.adapter.sul.SUL` to the
membership protocol and keeps the statistics the paper reports (e.g. the
4,726 membership queries of section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..adapter.sul import SUL
from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.mealy import MealyMachine
from ..core.trace import Word


class MembershipOracle(Protocol):
    """Answers membership queries over abstract words.

    Both entry points must agree: ``query_batch(words)[i]`` equals
    ``query(words[i])`` for a deterministic SUL.  The batch form is the
    primary one -- learners and equivalence oracles emit batches so the
    layers below (cache planning, majority voting, SUL pooling) can dedup,
    collapse and parallelize; ``query`` remains for inherently sequential
    probing such as Rivest-Schapire binary search.
    """

    input_alphabet: Alphabet

    def query(self, word: Sequence[AbstractSymbol]) -> Word:  # pragma: no cover
        ...

    def query_batch(
        self, words: Sequence[Sequence[AbstractSymbol]]
    ) -> list[Word]:  # pragma: no cover
        ...


class EquivalenceOracle(Protocol):
    """Searches for counterexamples to a hypothesis."""

    def find_counterexample(
        self, hypothesis: MealyMachine
    ) -> Word | None:  # pragma: no cover
        ...

    def attribution(self) -> dict[str, dict[str, int]]:  # pragma: no cover
        """Per-strategy accounting: ``{name: {words_submitted,
        counterexamples_found}}`` (chained oracles report one entry per
        sub-oracle)."""
        ...


@dataclass
class OracleStats:
    """Query accounting for one oracle layer."""

    queries: int = 0
    symbols: int = 0

    def note(self, word: Sequence[AbstractSymbol]) -> None:
        self.queries += 1
        self.symbols += len(word)


class SULMembershipOracle:
    """The base oracle: every query reaches the actual SUL."""

    def __init__(self, sul: SUL) -> None:
        self.sul = sul
        self.input_alphabet = sul.input_alphabet
        self.stats = OracleStats()

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        self.stats.note(word)
        return self.sul.query(word)

    def query_batch(self, words: Sequence[Sequence[AbstractSymbol]]) -> list[Word]:
        words = [tuple(word) for word in words]
        for word in words:
            self.stats.note(word)
        return list(self.sul.query_batch(words))


class CountingOracle:
    """A transparent pass-through layer that only counts (for ablations)."""

    def __init__(self, inner: MembershipOracle) -> None:
        self.inner = inner
        self.input_alphabet = inner.input_alphabet
        self.stats = OracleStats()

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        self.stats.note(word)
        return self.inner.query(word)

    def query_batch(self, words: Sequence[Sequence[AbstractSymbol]]) -> list[Word]:
        words = [tuple(word) for word in words]
        for word in words:
            self.stats.note(word)
        return self.inner.query_batch(words)


def mq_suffix(
    oracle: MembershipOracle, prefix: Word, suffix: Word
) -> Word:
    """Outputs for ``suffix`` after driving the SUL through ``prefix``."""
    outputs = oracle.query(prefix + suffix)
    return outputs[len(prefix):]


def mq_suffix_batch(
    oracle: MembershipOracle, pairs: Sequence[tuple[Word, Word]]
) -> list[Word]:
    """Batched :func:`mq_suffix`: one query batch, suffix outputs per pair."""
    pairs = [(tuple(prefix), tuple(suffix)) for prefix, suffix in pairs]
    answers = oracle.query_batch([prefix + suffix for prefix, suffix in pairs])
    return [
        tuple(outputs[len(prefix):]) for (prefix, _), outputs in zip(pairs, answers)
    ]

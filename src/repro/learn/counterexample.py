"""Rivest-Schapire counterexample decomposition.

Instead of folding every prefix of a counterexample into the data structure
(the classic L* move, quadratic in counterexample length), binary-search for
the single position where the hypothesis's prediction goes wrong.  The
result is a decomposition ``u . a . v`` such that the hypothesis state
reached by ``u . a`` and the SUL state reached the same way disagree on the
suffix ``v`` -- exactly the split a discrimination tree needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.alphabet import AbstractSymbol
from ..core.mealy import MealyMachine
from ..core.trace import Word
from .teacher import MembershipOracle, mq_suffix


@dataclass(frozen=True)
class Decomposition:
    """The split point of a counterexample."""

    prefix: Word  # u
    symbol: AbstractSymbol  # a
    suffix: Word  # v (may be empty)


def _suffix_matches(
    oracle: MembershipOracle,
    hypothesis: MealyMachine,
    access_of: dict,
    word: Word,
    split: int,
) -> bool:
    """Does the SUL agree with the hypothesis on ``word[split:]`` when the
    prefix ``word[:split]`` is replaced by its hypothesis access sequence?"""
    state = hypothesis.state_after(word[:split])
    access = access_of[state]
    suffix = word[split:]
    if not suffix:
        return True
    actual = mq_suffix(oracle, access, suffix)
    predicted = hypothesis.run(suffix, start=state)
    return actual == predicted


def rivest_schapire(
    oracle: MembershipOracle,
    hypothesis: MealyMachine,
    counterexample: Word,
    access_of: dict | None = None,
) -> Decomposition:
    """Binary-search the flip point of a (true) counterexample.

    Precondition: ``oracle.query(cex) != hypothesis.run(cex)``.  Maintains
    ``lo`` with a failing suffix check and ``hi`` with a passing one; the
    returned decomposition has ``prefix = cex[:lo]``, ``symbol = cex[lo]``
    and ``suffix = cex[lo+1:]``.

    ``access_of`` maps hypothesis states to access words.  Discrimination
    -tree learners must pass the *leaf* access words here (for them the
    states are those words); using BFS-shortest words would be unsound,
    because a conflated hypothesis state can be reached by two words that
    lead to *different* SUL states.
    """
    if access_of is None:
        access_of = hypothesis.access_sequences()
    lo, hi = 0, len(counterexample)
    if _suffix_matches(oracle, hypothesis, access_of, counterexample, lo):
        raise ValueError("not a counterexample: suffix check passes at 0")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _suffix_matches(oracle, hypothesis, access_of, counterexample, mid):
            hi = mid
        else:
            lo = mid
    return Decomposition(
        prefix=counterexample[:lo],
        symbol=counterexample[lo],
        suffix=counterexample[lo + 1 :],
    )

"""Equivalence oracles (paper section 4.1).

A perfect equivalence oracle would require omniscience of the SUL, so
Prognosis approximates it heuristically: returned counterexamples are
always real, but "no counterexample" only gives probabilistic confidence.
Three strategies are provided:

* :class:`RandomWordEquivalenceOracle` -- cheap randomized testing;
* :class:`WMethodEquivalenceOracle` -- the classical Chow/Vasilevskii test
  suite, exhaustive w.r.t. an assumed state-count bound (and the source of
  the "traces we need to check" figures of section 6.2.2);
* :class:`ChainedEquivalenceOracle` -- run cheap oracles first.

Every counterexample is shrunk to its shortest failing prefix before being
handed to the learner.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.mealy import MealyMachine
from ..core.trace import Word
from .teacher import MembershipOracle


def _shrink(word: Word, actual: Word, predicted: Word) -> Word:
    """Trim a counterexample at the first output divergence."""
    for index, (a, p) in enumerate(zip(actual, predicted)):
        if a != p:
            return word[: index + 1]
    return word


class RandomWordEquivalenceOracle:
    """Sample random input words and compare outputs."""

    def __init__(
        self,
        oracle: MembershipOracle,
        num_words: int = 300,
        min_length: int = 2,
        max_length: int = 12,
        seed: int = 0,
    ) -> None:
        self.oracle = oracle
        self.num_words = num_words
        self.min_length = min_length
        self.max_length = max_length
        self.rng = random.Random(seed)

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        symbols = list(self.oracle.input_alphabet)
        for _ in range(self.num_words):
            length = self.rng.randint(self.min_length, self.max_length)
            word = tuple(self.rng.choice(symbols) for _ in range(length))
            actual = self.oracle.query(word)
            predicted = hypothesis.run(word)
            if actual != predicted:
                return _shrink(word, actual, predicted)
        return None


class WMethodEquivalenceOracle:
    """The W-method: transition cover x middles x characterization set.

    With ``extra_states = k`` the suite is exhaustive against any SUL whose
    minimal machine has at most ``hypothesis.num_states + k`` states.
    """

    def __init__(self, oracle: MembershipOracle, extra_states: int = 1) -> None:
        self.oracle = oracle
        self.extra_states = extra_states
        self.last_suite_size = 0

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        suite = hypothesis.w_method_suite(self.extra_states)
        self.last_suite_size = len(suite)
        for word in suite:
            actual = self.oracle.query(word)
            predicted = hypothesis.run(word)
            if actual != predicted:
                return _shrink(word, actual, predicted)
        return None


class ChainedEquivalenceOracle:
    """Try a sequence of oracles; first counterexample wins."""

    def __init__(self, oracles: Sequence) -> None:
        self.oracles = list(oracles)

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        for oracle in self.oracles:
            counterexample = oracle.find_counterexample(hypothesis)
            if counterexample is not None:
                return counterexample
        return None


class FixedWordsEquivalenceOracle:
    """Check a fixed word list (useful in tests and regression suites)."""

    def __init__(self, oracle: MembershipOracle, words: Sequence[Word]) -> None:
        self.oracle = oracle
        self.words = list(words)

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        for word in self.words:
            actual = self.oracle.query(word)
            predicted = hypothesis.run(word)
            if actual != predicted:
                return _shrink(word, actual, predicted)
        return None


class PerfectEquivalenceOracle:
    """Compare against a known reference machine (tests / ablations only).

    This is the omniscient oracle the paper notes cannot exist for a real
    SUL; we can afford it in tests because our SULs are simulations whose
    ground-truth models we constructed.
    """

    def __init__(self, reference: MealyMachine) -> None:
        self.reference = reference

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        from ..analysis.equivalence import find_difference

        difference = find_difference(self.reference, hypothesis)
        return difference if difference is None else tuple(difference)

"""Equivalence oracles (paper section 4.1).

A perfect equivalence oracle would require omniscience of the SUL, so
Prognosis approximates it heuristically: returned counterexamples are
always real, but "no counterexample" only gives probabilistic confidence.
Three strategies are provided:

* :class:`RandomWordEquivalenceOracle` -- cheap randomized testing;
* :class:`WMethodEquivalenceOracle` -- the classical Chow/Vasilevskii test
  suite, exhaustive w.r.t. an assumed state-count bound (and the source of
  the "traces we need to check" figures of section 6.2.2);
* :class:`ChainedEquivalenceOracle` -- run cheap oracles first.

Suites are submitted to the membership oracle in *batches* (``batch_size``
words at a time) rather than word-by-word, so the cache layer can dedup and
prefix-collapse them and a SUL pool can execute them in parallel.  Words
within a batch are still checked against the hypothesis in submission
order, so the first counterexample found is the same one the serial loop
would have returned.  Every counterexample is shrunk to its shortest
failing prefix before being handed to the learner.

Each oracle keeps ``words_submitted`` / ``counterexamples_found`` counters
and exposes them uniformly through ``attribution()``;
:class:`ChainedEquivalenceOracle` aggregates per sub-oracle so a
:class:`~repro.framework.LearningReport` can attribute counterexamples to
the strategy that found them.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from ..core.mealy import MealyMachine
from ..core.trace import Word
from ..registry import EQ_ORACLE_REGISTRY
from .teacher import MembershipOracle


def _shrink(word: Word, actual: Word, predicted: Word) -> Word:
    """Trim a counterexample at the first output divergence."""
    for index, (a, p) in enumerate(zip(actual, predicted)):
        if a != p:
            return word[: index + 1]
    return word


def _chunks(words: Sequence[Word], size: int) -> Iterator[Sequence[Word]]:
    for start in range(0, len(words), size):
        yield words[start : start + size]


class AttributionMixin:
    """The per-oracle accounting every equivalence oracle exposes.

    Subclasses set ``name`` and maintain ``words_submitted`` /
    ``counterexamples_found``; :meth:`attribution` packages them in the
    shape :class:`~repro.framework.LearningReport.eq_attribution` reports,
    replacing the ``getattr`` duck-typing the framework used to do.
    """

    name: str = "eq"
    words_submitted: int = 0
    counterexamples_found: int = 0

    def attribution(self) -> dict[str, dict[str, int]]:
        return {
            self.name: {
                "words_submitted": self.words_submitted,
                "counterexamples_found": self.counterexamples_found,
            }
        }


@EQ_ORACLE_REGISTRY.register("random")
class RandomWordEquivalenceOracle(AttributionMixin):
    """Sample random input words and compare outputs."""

    def __init__(
        self,
        oracle: MembershipOracle,
        num_words: int = 300,
        min_length: int = 2,
        max_length: int = 12,
        seed: int = 0,
        batch_size: int = 32,
        name: str = "random",
    ) -> None:
        self.oracle = oracle
        self.num_words = num_words
        self.min_length = min_length
        self.max_length = max_length
        self.rng = random.Random(seed)
        self.batch_size = max(1, batch_size)
        self.name = name
        self.words_submitted = 0
        self.counterexamples_found = 0

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        symbols = list(self.oracle.input_alphabet)
        remaining = self.num_words
        while remaining > 0:
            count = min(self.batch_size, remaining)
            remaining -= count
            batch: list[Word] = []
            for _ in range(count):
                length = self.rng.randint(self.min_length, self.max_length)
                batch.append(tuple(self.rng.choice(symbols) for _ in range(length)))
            actuals = self.oracle.query_batch(batch)
            self.words_submitted += count
            for word, actual in zip(batch, actuals):
                predicted = hypothesis.run(word)
                if actual != predicted:
                    self.counterexamples_found += 1
                    return _shrink(word, actual, predicted)
        return None


@EQ_ORACLE_REGISTRY.register("wmethod")
class WMethodEquivalenceOracle(AttributionMixin):
    """The W-method: transition cover x middles x characterization set.

    With ``extra_states = k`` the suite is exhaustive against any SUL whose
    minimal machine has at most ``hypothesis.num_states + k`` states.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        extra_states: int = 1,
        batch_size: int = 64,
        name: str = "wmethod",
    ) -> None:
        self.oracle = oracle
        self.extra_states = extra_states
        self.batch_size = max(1, batch_size)
        self.name = name
        self.last_suite_size = 0
        self.words_submitted = 0
        self.counterexamples_found = 0

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        suite = hypothesis.w_method_suite(self.extra_states)
        self.last_suite_size = len(suite)
        for batch in _chunks(suite, self.batch_size):
            actuals = self.oracle.query_batch(batch)
            self.words_submitted += len(batch)
            for word, actual in zip(batch, actuals):
                predicted = hypothesis.run(word)
                if actual != predicted:
                    self.counterexamples_found += 1
                    return _shrink(word, actual, predicted)
        return None


class ChainedEquivalenceOracle:
    """Try a sequence of oracles; first counterexample wins.

    :meth:`attribution` reports, per sub-oracle, how many words it
    submitted and how many counterexamples it found across all rounds of a
    learning run -- the accounting the paper tables break down by testing
    strategy.  ``last_found_by`` names the sub-oracle that produced the
    most recent counterexample.
    """

    def __init__(self, oracles: Sequence, name: str = "chained") -> None:
        self.oracles = list(oracles)
        self.name = name
        self._names: list[str] = []
        for index, oracle in enumerate(self.oracles):
            sub_name = getattr(oracle, "name", None) or type(oracle).__name__
            if sub_name in self._names:
                sub_name = f"{sub_name}#{index}"
            self._names.append(sub_name)
        self._stats: dict[str, dict[str, int]] = {
            sub_name: {"words_submitted": 0, "counterexamples_found": 0}
            for sub_name in self._names
        }
        self.last_found_by: str | None = None

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        for name, oracle in zip(self._names, self.oracles):
            words_before = getattr(oracle, "words_submitted", 0)
            counterexample = oracle.find_counterexample(hypothesis)
            stats = self._stats[name]
            stats["words_submitted"] += (
                getattr(oracle, "words_submitted", 0) - words_before
            )
            if counterexample is not None:
                stats["counterexamples_found"] += 1
                self.last_found_by = name
                return counterexample
        return None

    def attribution(self) -> dict[str, dict[str, int]]:
        """Per-sub-oracle accounting, aggregated across all rounds."""
        return {name: dict(stats) for name, stats in self._stats.items()}


class FixedWordsEquivalenceOracle(AttributionMixin):
    """Check a fixed word list (useful in tests and regression suites)."""

    def __init__(
        self,
        oracle: MembershipOracle,
        words: Sequence[Word],
        batch_size: int = 64,
        name: str = "fixed",
    ) -> None:
        self.oracle = oracle
        self.words = list(words)
        self.batch_size = max(1, batch_size)
        self.name = name
        self.words_submitted = 0
        self.counterexamples_found = 0

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        for batch in _chunks(self.words, self.batch_size):
            actuals = self.oracle.query_batch(batch)
            self.words_submitted += len(batch)
            for word, actual in zip(batch, actuals):
                predicted = hypothesis.run(word)
                if actual != predicted:
                    self.counterexamples_found += 1
                    return _shrink(word, actual, predicted)
        return None


class PerfectEquivalenceOracle(AttributionMixin):
    """Compare against a known reference machine (tests / ablations only).

    This is the omniscient oracle the paper notes cannot exist for a real
    SUL; we can afford it in tests because our SULs are simulations whose
    ground-truth models we constructed.
    """

    def __init__(self, reference: MealyMachine) -> None:
        self.reference = reference
        self.name = "perfect"
        self.words_submitted = 0
        self.counterexamples_found = 0

    def find_counterexample(self, hypothesis: MealyMachine) -> Word | None:
        from ..analysis.equivalence import find_difference

        difference = find_difference(self.reference, hypothesis)
        if difference is None:
            return None
        self.counterexamples_found += 1
        return tuple(difference)

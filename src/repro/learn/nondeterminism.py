"""The nondeterminism check (paper section 5).

Prognosis expects every learner query to have a deterministic answer.  Two
things can break that: an abstraction too coarse (distinct behaviours
collapse onto one input trace) or the implementation itself misbehaving --
like mvfst's post-close stateless resets (Issue 2).  Environmental noise
(latency, loss) is a third, benign source.

:class:`MajorityVoteOracle` re-executes each query a configurable minimum
number of times; if the answers disagree it keeps sampling until one answer
reaches the required certainty or the attempt budget is exhausted, at which
point learning pauses with a :class:`NondeterminismError` carrying the
observed response distribution -- which is exactly the evidence the paper
shows the developers (82% RESET / 18% silence).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.trace import Word
from ..registry import MIDDLEWARE_REGISTRY
from .teacher import MembershipOracle, OracleStats


class NondeterminismError(Exception):
    """Raised when a query has no sufficiently certain answer."""

    def __init__(self, word: Word, observations: Counter):
        self.word = word
        self.observations = observations
        total = sum(observations.values())
        rendered = ", ".join(
            f"{count}/{total} -> {self._render(outputs)}"
            for outputs, count in observations.most_common()
        )
        super().__init__(f"nondeterministic responses for query: {rendered}")

    @staticmethod
    def _render(outputs: Word) -> str:
        return " ".join(str(o) for o in outputs)

    def frequency_of_most_common(self) -> float:
        total = sum(self.observations.values())
        if not total:
            return 0.0
        return self.observations.most_common(1)[0][1] / total


@dataclass
class NondeterminismPolicy:
    """Retry budget and certainty threshold for the check."""

    min_repeats: int = 1
    max_repeats: int = 10
    certainty: float = 0.9

    def __post_init__(self) -> None:
        if self.min_repeats < 1 or self.max_repeats < self.min_repeats:
            raise ValueError("need 1 <= min_repeats <= max_repeats")
        if not 0.5 < self.certainty <= 1.0:
            raise ValueError("certainty must be in (0.5, 1.0]")


class MajorityVoteOracle:
    """Membership oracle enforcing deterministic answers by re-execution."""

    def __init__(
        self, inner: MembershipOracle, policy: NondeterminismPolicy | None = None
    ) -> None:
        self.inner = inner
        self.input_alphabet: Alphabet = inner.input_alphabet
        self.policy = policy or NondeterminismPolicy()
        self.stats = OracleStats()
        self.nondeterministic_queries = 0

    def query(self, word: Sequence[AbstractSymbol]) -> Word:
        self.stats.note(word)
        policy = self.policy
        observations: Counter = Counter()
        for attempt in range(1, policy.max_repeats + 1):
            observations[self.inner.query(word)] += 1
            if attempt < policy.min_repeats:
                continue
            if len(observations) == 1:
                return next(iter(observations))
            top_outputs, top_count = observations.most_common(1)[0]
            if top_count / attempt >= policy.certainty and attempt >= 3:
                return top_outputs
        self.nondeterministic_queries += 1
        raise NondeterminismError(tuple(word), observations)

    def query_batch(self, words: Sequence[Sequence[AbstractSymbol]]) -> list[Word]:
        """Batched voting: re-execution happens in rounds over the batch.

        Every round submits all still-undecided words to the inner oracle
        as one batch (so a SUL pool keeps its workers busy even while some
        words need extra repeats), then applies the same per-word decision
        rule as :meth:`query`.
        """
        words = [tuple(word) for word in words]
        for word in words:
            self.stats.note(word)
        policy = self.policy
        observations: list[Counter] = [Counter() for _ in words]
        resolved: dict[int, Word] = {}
        active = list(range(len(words)))
        attempt = 0
        while active:
            attempt += 1
            answers = self.inner.query_batch([words[i] for i in active])
            still_active: list[int] = []
            for index, answer in zip(active, answers):
                votes = observations[index]
                votes[answer] += 1
                if attempt < policy.min_repeats:
                    still_active.append(index)
                    continue
                if len(votes) == 1:
                    resolved[index] = answer
                    continue
                top_outputs, top_count = votes.most_common(1)[0]
                if top_count / attempt >= policy.certainty and attempt >= 3:
                    resolved[index] = top_outputs
                    continue
                if attempt >= policy.max_repeats:
                    self.nondeterministic_queries += 1
                    raise NondeterminismError(words[index], votes)
                still_active.append(index)
            active = still_active
        return [resolved[index] for index in range(len(words))]


@MIDDLEWARE_REGISTRY.register("majority-vote")
def majority_vote_middleware(
    inner: MembershipOracle,
    min_repeats: int = 1,
    max_repeats: int = 10,
    certainty: float = 0.9,
) -> MajorityVoteOracle:
    """Spec-friendly builder: flat params instead of a policy object."""
    return MajorityVoteOracle(
        inner,
        NondeterminismPolicy(
            min_repeats=min_repeats, max_repeats=max_repeats, certainty=certainty
        ),
    )


def estimate_response_distribution(
    oracle: MembershipOracle,
    word: Sequence[AbstractSymbol],
    samples: int,
) -> Counter:
    """Empirical response distribution for one query (Issue-2 analysis).

    Runs the query ``samples`` times and tallies the full output words --
    the tool used to measure mvfst's 82% RESET rate.
    """
    counts: Counter = Counter()
    for _ in range(samples):
        counts[oracle.query(word)] += 1
    return counts

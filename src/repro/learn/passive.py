"""Passive model learning from logged traces (paper section 8).

The paper's future-work section notes that "in cases where access to logs
is possible ... the learning process could be sped up using a combination
of passive and active learning".  This module provides both halves:

* :func:`rpni_mealy` -- a state-merging passive learner (RPNI adapted to
  Mealy semantics): build the prefix-tree transducer of the logged traces,
  then greedily fold compatible states in canonical order.  The result is a
  :class:`PartialMealyMachine` that predicts outputs for input words whose
  behaviour the log determines.
* :func:`seed_cache_from_traces` -- bootstrap an active learner's query
  cache from logs, so membership queries already covered by the log never
  reach the live SUL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.alphabet import AbstractSymbol, Alphabet
from ..core.mealy import MealyMachine
from ..core.trace import IOTrace, Word
from .cache import QueryCache


@dataclass
class PartialMealyMachine:
    """A possibly-incomplete Mealy machine learned from logs.

    ``transitions`` maps ``(state, input)`` to ``(target, output)``;
    missing entries mean the log never determined that behaviour.
    """

    initial_state: int
    input_alphabet: Alphabet
    transitions: dict[tuple[int, AbstractSymbol], tuple[int, AbstractSymbol]]

    @property
    def states(self) -> set[int]:
        found = {self.initial_state}
        for (source, _), (target, _) in self.transitions.items():
            found.add(source)
            found.add(target)
        return found

    @property
    def num_states(self) -> int:
        return len(self.states)

    def predict(self, word: Sequence[AbstractSymbol]) -> Word | None:
        """Outputs for ``word``, or None where the log is silent."""
        state = self.initial_state
        outputs: list[AbstractSymbol] = []
        for symbol in word:
            slot = self.transitions.get((state, symbol))
            if slot is None:
                return None
            state, output = slot
            outputs.append(output)
        return tuple(outputs)

    def accuracy(self, reference: MealyMachine, words: Iterable[Word]) -> float:
        """Fraction of ``words`` predicted fully and correctly."""
        total = 0
        correct = 0
        for word in words:
            total += 1
            predicted = self.predict(word)
            if predicted is not None and predicted == reference.run(word):
                correct += 1
        return correct / total if total else 0.0

    def to_complete(self, sink_output: AbstractSymbol) -> MealyMachine:
        """An input-complete machine: missing edges loop with a sink output."""
        transitions = dict(self.transitions)
        for state in self.states:
            for symbol in self.input_alphabet:
                transitions.setdefault((state, symbol), (state, sink_output))
        return MealyMachine(
            self.initial_state, self.input_alphabet, transitions, "passive"
        )


class _PrefixTree:
    """The prefix-tree transducer (PTT) of a trace set."""

    def __init__(self) -> None:
        self.edges: dict[int, dict[AbstractSymbol, tuple[int, AbstractSymbol]]] = {0: {}}
        self._next_id = 1

    def add(self, trace: IOTrace) -> None:
        state = 0
        for symbol, output in trace:
            children = self.edges.setdefault(state, {})
            slot = children.get(symbol)
            if slot is None:
                child = self._next_id
                self._next_id += 1
                self.edges[child] = {}
                children[symbol] = (child, output)
                state = child
                continue
            target, existing = slot
            if existing != output:
                raise ValueError(
                    f"nondeterministic log: two outputs for the same prefix "
                    f"({existing} vs {output})"
                )
            state = target


class ConflictError(Exception):
    """Raised internally when a merge would create an output conflict."""


def rpni_mealy(
    traces: Sequence[IOTrace], alphabet: Alphabet
) -> PartialMealyMachine:
    """State-merging passive learning over deterministic logged traces.

    Classic RPNI folding adapted to Mealy machines: states are considered
    in BFS order; each *blue* state is merged into the first *red* state it
    is output-compatible with, otherwise it is promoted to red.
    """
    tree = _PrefixTree()
    for trace in traces:
        tree.add(trace)
    edges = {state: dict(children) for state, children in tree.edges.items()}

    def try_fold(
        into: int, from_: int, snapshot: dict
    ) -> None:
        """Fold ``from_``'s subtree into ``into`` (mutates snapshot)."""
        for symbol, (target, output) in list(snapshot.get(from_, {}).items()):
            existing = snapshot.setdefault(into, {}).get(symbol)
            if existing is None:
                snapshot[into][symbol] = (target, output)
                continue
            existing_target, existing_output = existing
            if existing_output != output:
                raise ConflictError()
            if existing_target != target:
                try_fold(existing_target, target, snapshot)

    def redirect(snapshot: dict, old: int, new: int) -> None:
        for children in snapshot.values():
            for symbol, (target, output) in list(children.items()):
                if target == old:
                    children[symbol] = (new, output)

    red: list[int] = [0]
    frontier = [
        target for _, (target, _) in sorted(edges[0].items(), key=lambda kv: str(kv[0]))
    ]
    while frontier:
        blue = frontier.pop(0)
        if blue in red:
            continue
        merged = False
        for candidate in red:
            snapshot = {s: dict(c) for s, c in edges.items()}
            redirect(snapshot, blue, candidate)
            try:
                try_fold(candidate, blue, snapshot)
            except (ConflictError, RecursionError):
                continue
            snapshot.pop(blue, None)
            edges = snapshot
            merged = True
            break
        if not merged:
            red.append(blue)
        reachable_children = [
            target
            for state in red
            for _, (target, _) in sorted(
                edges.get(state, {}).items(), key=lambda kv: str(kv[0])
            )
            if target not in red
        ]
        frontier = list(dict.fromkeys(reachable_children))

    transitions = {
        (state, symbol): (target, output)
        for state in red
        for symbol, (target, output) in edges.get(state, {}).items()
        if target in red or target in edges
    }
    return PartialMealyMachine(
        initial_state=0, input_alphabet=alphabet, transitions=transitions
    )


def seed_cache_from_traces(cache: QueryCache, traces: Iterable[IOTrace]) -> int:
    """Pre-populate an active learner's cache from logged traces.

    Returns the number of traces inserted.  Conflicting logs raise the
    cache's inconsistency error -- which is itself a finding (the log
    witnesses nondeterminism).
    """
    count = 0
    for trace in traces:
        cache.insert(trace.inputs, trace.outputs)
        count += 1
    return count

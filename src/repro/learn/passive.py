"""Passive model learning from logged traces (paper section 8).

The paper's future-work section notes that "in cases where access to logs
is possible ... the learning process could be sped up using a combination
of passive and active learning".  This module provides the passive half
and the bootstrap glue (:mod:`repro.learn.bulk` builds the streaming
corpus pipeline on top of it):

* :func:`rpni_mealy` -- a state-merging passive learner (RPNI adapted to
  Mealy semantics): build the prefix-tree transducer of the logged traces,
  then greedily fold compatible states in canonical order.  The result is a
  :class:`PartialMealyMachine` that predicts outputs for input words whose
  behaviour the log determines.
* :func:`fold_prefix_tree` / :func:`prefix_tree_from_cache` -- the two
  halves of :func:`rpni_mealy` exposed separately, so a bulk reader can
  stream traces into one trie and fold it once.
* :func:`seed_cache_from_traces` -- bootstrap an active learner's query
  cache from logs, so membership queries already covered by the log never
  reach the live SUL.

Nondeterministic logs raise :class:`TraceConflictError` (a ``ValueError``)
carrying the offending prefix and trace index -- a *finding* the bulk
reader can skip-and-report instead of aborting the whole corpus.
"""

from __future__ import annotations

import sys
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.alphabet import AbstractSymbol, Alphabet, serialize_symbol
from ..core.mealy import MealyMachine
from ..core.trace import IOTrace, Word
from .cache import QueryCache


class TraceConflictError(ValueError):
    """Two logged traces disagree on the output of a shared prefix.

    Carries everything a bulk-corpus report needs: the input ``prefix``
    up to and including the conflicting symbol, the two disagreeing
    outputs, and (when the caller numbers its traces) the index of the
    trace that collided with the tree.
    """

    def __init__(
        self,
        prefix: Sequence[AbstractSymbol],
        cached: AbstractSymbol,
        fresh: AbstractSymbol,
        trace_index: int | None = None,
    ) -> None:
        self.prefix: Word = tuple(prefix)
        self.cached = cached
        self.fresh = fresh
        self.trace_index = trace_index
        where = "" if trace_index is None else f" (trace #{trace_index})"
        rendered = " ".join(str(symbol) for symbol in self.prefix)
        super().__init__(
            f"nondeterministic log{where}: two outputs after "
            f"[{rendered}]: {cached} vs {fresh}"
        )


@dataclass
class PartialMealyMachine:
    """A possibly-incomplete Mealy machine learned from logs.

    ``transitions`` maps ``(state, input)`` to ``(target, output)``;
    missing entries mean the log never determined that behaviour.
    """

    initial_state: int
    input_alphabet: Alphabet
    transitions: dict[tuple[int, AbstractSymbol], tuple[int, AbstractSymbol]]

    @property
    def states(self) -> set[int]:
        found = {self.initial_state}
        for (source, _), (target, _) in self.transitions.items():
            found.add(source)
            found.add(target)
        return found

    @property
    def num_states(self) -> int:
        return len(self.states)

    def predict(self, word: Sequence[AbstractSymbol]) -> Word | None:
        """Outputs for ``word``, or None where the log is silent."""
        state = self.initial_state
        outputs: list[AbstractSymbol] = []
        for symbol in word:
            slot = self.transitions.get((state, symbol))
            if slot is None:
                return None
            state, output = slot
            outputs.append(output)
        return tuple(outputs)

    def accuracy(self, reference: MealyMachine, words: Iterable[Word]) -> float:
        """Fraction of ``words`` predicted fully and correctly."""
        total = 0
        correct = 0
        for word in words:
            total += 1
            predicted = self.predict(word)
            if predicted is not None and predicted == reference.run(word):
                correct += 1
        return correct / total if total else 0.0

    def access_words(self) -> dict[int, Word]:
        """A shortest input word reaching each reachable state (BFS)."""
        by_source: dict[int, list[tuple[str, AbstractSymbol, int]]] = {}
        for (source, symbol), (target, _) in self.transitions.items():
            by_source.setdefault(source, []).append((str(symbol), symbol, target))
        words: dict[int, Word] = {self.initial_state: ()}
        queue = deque([self.initial_state])
        while queue:
            state = queue.popleft()
            for _, symbol, target in sorted(
                by_source.get(state, ()), key=lambda edge: edge[0]
            ):
                if target not in words:
                    words[target] = words[state] + (symbol,)
                    queue.append(target)
        return words

    def undetermined_cells(self) -> list[tuple[int, AbstractSymbol]]:
        """Reachable ``(state, input)`` pairs the log never determined.

        These are exactly the holes the bulk pipeline's active-refinement
        phase turns into targeted membership queries (access word plus the
        missing symbol).
        """
        cells: list[tuple[int, AbstractSymbol]] = []
        for state in self.access_words():
            for symbol in self.input_alphabet:
                if (state, symbol) not in self.transitions:
                    cells.append((state, symbol))
        return cells

    @property
    def completeness(self) -> float:
        """Determined share of the reachable ``state x input`` grid."""
        total = len(self.access_words()) * len(self.input_alphabet)
        if not total:
            return 0.0
        return 1.0 - len(self.undetermined_cells()) / total

    def to_complete(self, sink_output: AbstractSymbol) -> MealyMachine:
        """An input-complete machine: missing edges loop with a sink output."""
        transitions = dict(self.transitions)
        for state in self.states:
            for symbol in self.input_alphabet:
                transitions.setdefault((state, symbol), (state, sink_output))
        return MealyMachine(
            self.initial_state, self.input_alphabet, transitions, "passive"
        )

    def to_dict(self) -> dict:
        """A JSON-able rendering (the bulk pipeline's artifact format)."""
        return {
            "initial_state": self.initial_state,
            "num_states": self.num_states,
            "completeness": self.completeness,
            "transitions": [
                {
                    "source": source,
                    "input": serialize_symbol(symbol),
                    "target": target,
                    "output": serialize_symbol(output),
                }
                for (source, symbol), (target, output) in sorted(
                    self.transitions.items(),
                    key=lambda item: (item[0][0], str(item[0][1])),
                )
            ],
        }


class _PrefixTree:
    """The prefix-tree transducer (PTT) of a trace set."""

    def __init__(self) -> None:
        self.edges: dict[int, dict[AbstractSymbol, tuple[int, AbstractSymbol]]] = {0: {}}
        self._next_id = 1

    def add(self, trace: IOTrace, index: int | None = None) -> None:
        state = 0
        prefix: list[AbstractSymbol] = []
        for symbol, output in trace:
            prefix.append(symbol)
            children = self.edges.setdefault(state, {})
            slot = children.get(symbol)
            if slot is None:
                child = self._next_id
                self._next_id += 1
                self.edges[child] = {}
                children[symbol] = (child, output)
                state = child
                continue
            target, existing = slot
            if existing != output:
                raise TraceConflictError(
                    prefix, existing, output, trace_index=index
                )
            state = target


def prefix_tree_from_cache(cache: QueryCache) -> _PrefixTree:
    """The prefix-tree transducer of every observation a trie holds.

    A :class:`~repro.learn.cache.QueryCache` *is* a PTT already -- same
    structure, different bookkeeping -- so the bulk pipeline can seed an
    active learner's cache and fold a passive model from a single corpus
    pass.  States are numbered in BFS order from the trie root (the trie
    layout is an intra-package contract of the ``learn`` package).
    """
    tree = _PrefixTree()
    queue = deque([(cache._root, 0)])
    while queue:
        node, state = queue.popleft()
        children = tree.edges.setdefault(state, {})
        for symbol, (output, child_node) in node.children.items():
            child = tree._next_id
            tree._next_id += 1
            tree.edges[child] = {}
            children[symbol] = (child, output)
            queue.append((child_node, child))
    return tree


def fold_prefix_tree(tree: _PrefixTree, alphabet: Alphabet) -> PartialMealyMachine:
    """Fold a prefix tree into a partial machine (RPNI state merging).

    Classic RPNI adapted to Mealy semantics: states are considered in BFS
    order; each *blue* state (a child of the red core) is merged into the
    first *red* state it is output-compatible with, otherwise it is
    promoted to red.  A merge unifies the two states' entire subtrees with
    an explicit worklist over a union-find overlay -- iteratively, so
    arbitrarily deep folds (the bulk-corpus case) neither recurse out of
    stack nor get misreported as conflicts, and merged-away states are
    removed rather than left dangling in the transition graph.
    """
    edges = {state: dict(children) for state, children in tree.edges.items()}
    merged_into: dict[int, int] = {}
    rank: dict[int, int] = {0: 0}  # promotion order; unranked = never red

    def find(state: int) -> int:
        while state in merged_into:
            state = merged_into[state]
        return state

    def attempt(into: int, from_: int):
        """Try to unify ``from_`` with ``into`` without committing.

        Works on a copy-on-write overlay (``touched`` children dicts, a
        ``local`` union map stacked on ``merged_into``); the explicit
        ``pending`` worklist replaces the old recursion, and the
        union-find itself is the cycle guard -- every pop either no-ops
        or shrinks the live state count, so deep and cyclic folds
        terminate.  Returns ``(touched, local)`` to apply, or ``None``
        on an output conflict (the overlay is simply discarded).
        """
        local: dict[int, int] = {}
        touched: dict[int, dict] = {}

        def resolve(state: int) -> int:
            while True:
                parent = local.get(state)
                if parent is None:
                    parent = merged_into.get(state)
                if parent is None:
                    return state
                state = parent

        def children(state: int) -> dict:
            if state not in touched:
                touched[state] = dict(edges.get(state, ()))
            return touched[state]

        pending: list[tuple[int, int]] = [(into, from_)]
        while pending:
            a, b = pending.pop()
            a, b = resolve(a), resolve(b)
            if a == b:
                continue
            # The earlier-promoted state survives (red beats blue, older
            # red beats younger); among never-red states the smaller id
            # wins, keeping the fold deterministic.
            if (rank.get(b, sys.maxsize), b) < (rank.get(a, sys.maxsize), a):
                a, b = b, a
            absorbing = children(a)
            for symbol, (target, output) in list(children(b).items()):
                slot = absorbing.get(symbol)
                if slot is None:
                    absorbing[symbol] = (target, output)
                    continue
                existing_target, existing_output = slot
                if existing_output != output:
                    return None
                pending.append((existing_target, target))
            local[b] = a
            touched.pop(b, None)
        return touched, local

    def apply(touched: dict[int, dict], local: dict[int, int]) -> None:
        for state, children in touched.items():
            edges[state] = children
        for state in local:
            edges.pop(state, None)
        merged_into.update(local)

    red: list[int] = [0]
    while True:
        reds = list(dict.fromkeys(find(state) for state in red))
        red_set = set(reds)
        frontier: dict[int, None] = {}
        for state in reds:
            for _, (target, _) in sorted(
                edges.get(state, {}).items(), key=lambda item: str(item[0])
            ):
                child = find(target)
                if child not in red_set:
                    frontier.setdefault(child)
        if not frontier:
            break
        blue = next(iter(frontier))
        merged = False
        for candidate in reds:
            overlay = attempt(candidate, blue)
            if overlay is not None:
                apply(*overlay)
                merged = True
                break
        if not merged:
            red.append(blue)
            rank[blue] = len(rank)

    reds = list(dict.fromkeys(find(state) for state in red))
    red_set = set(reds)
    transitions: dict[tuple[int, AbstractSymbol], tuple[int, AbstractSymbol]] = {}
    for state in reds:
        for symbol, (target, output) in edges.get(state, {}).items():
            canonical = find(target)
            if canonical not in red_set:
                # Never promoted: admitting the edge would let predict()
                # walk states outside the merged machine.  The fold's
                # invariant keeps this unreachable, but the old vacuous
                # `target in red or target in edges` filter is exactly
                # the leak this guard closes.
                continue
            transitions[(state, symbol)] = (canonical, output)
    return PartialMealyMachine(
        initial_state=0, input_alphabet=alphabet, transitions=transitions
    )


def rpni_mealy(
    traces: Sequence[IOTrace], alphabet: Alphabet
) -> PartialMealyMachine:
    """State-merging passive learning over deterministic logged traces."""
    tree = _PrefixTree()
    for index, trace in enumerate(traces):
        tree.add(trace, index=index)
    return fold_prefix_tree(tree, alphabet)


def seed_cache_from_traces(cache: QueryCache, traces: Iterable[IOTrace]) -> int:
    """Pre-populate an active learner's cache from logged traces.

    Returns the number of traces inserted.  Conflicting logs raise the
    cache's inconsistency error -- which is itself a finding (the log
    witnesses nondeterminism).
    """
    count = 0
    for trace in traces:
        cache.insert(trace.inputs, trace.outputs)
        count += 1
    return count

"""The learning module: MAT oracles, caches, L*, TTT, equivalence testing."""

from .bulk import (
    BulkLearnResult,
    CorpusConflict,
    CorpusFormatError,
    CorpusSeededCache,
    CorpusStats,
    bulk_passive_learn,
    generate_corpus,
    load_corpus_cache,
    log_sessions,
    read_jsonl_corpus,
    record_full_corpus,
    seed_oracle_from_corpus,
    write_jsonl_corpus,
)
from .cache import CacheInconsistencyError, CachedMembershipOracle, QueryCache
from .counterexample import Decomposition, rivest_schapire
from .equivalence import (
    ChainedEquivalenceOracle,
    FixedWordsEquivalenceOracle,
    PerfectEquivalenceOracle,
    RandomWordEquivalenceOracle,
    WMethodEquivalenceOracle,
)
from .lstar import LearningResult, LStarLearner
from .nondeterminism import (
    MajorityVoteOracle,
    NondeterminismError,
    NondeterminismPolicy,
    estimate_response_distribution,
)
from .observation_table import ObservationTable
from .passive import (
    PartialMealyMachine,
    TraceConflictError,
    fold_prefix_tree,
    prefix_tree_from_cache,
    rpni_mealy,
    seed_cache_from_traces,
)
from .teacher import (
    CountingOracle,
    EquivalenceOracle,
    MembershipOracle,
    OracleStats,
    SULMembershipOracle,
    mq_suffix,
    mq_suffix_batch,
)
from .ttt import DiscriminationTree, TTTLearner

__all__ = [
    "BulkLearnResult",
    "CacheInconsistencyError",
    "CachedMembershipOracle",
    "ChainedEquivalenceOracle",
    "CorpusConflict",
    "CorpusFormatError",
    "CorpusSeededCache",
    "CorpusStats",
    "CountingOracle",
    "Decomposition",
    "DiscriminationTree",
    "EquivalenceOracle",
    "FixedWordsEquivalenceOracle",
    "LStarLearner",
    "LearningResult",
    "MajorityVoteOracle",
    "MembershipOracle",
    "NondeterminismError",
    "NondeterminismPolicy",
    "ObservationTable",
    "OracleStats",
    "PartialMealyMachine",
    "PerfectEquivalenceOracle",
    "QueryCache",
    "RandomWordEquivalenceOracle",
    "SULMembershipOracle",
    "TTTLearner",
    "TraceConflictError",
    "WMethodEquivalenceOracle",
    "bulk_passive_learn",
    "estimate_response_distribution",
    "fold_prefix_tree",
    "generate_corpus",
    "load_corpus_cache",
    "log_sessions",
    "mq_suffix",
    "mq_suffix_batch",
    "prefix_tree_from_cache",
    "read_jsonl_corpus",
    "record_full_corpus",
    "rivest_schapire",
    "rpni_mealy",
    "seed_cache_from_traces",
    "seed_oracle_from_corpus",
    "write_jsonl_corpus",
]

"""The learning module: MAT oracles, caches, L*, TTT, equivalence testing."""

from .cache import CacheInconsistencyError, CachedMembershipOracle, QueryCache
from .counterexample import Decomposition, rivest_schapire
from .equivalence import (
    ChainedEquivalenceOracle,
    FixedWordsEquivalenceOracle,
    PerfectEquivalenceOracle,
    RandomWordEquivalenceOracle,
    WMethodEquivalenceOracle,
)
from .lstar import LearningResult, LStarLearner
from .nondeterminism import (
    MajorityVoteOracle,
    NondeterminismError,
    NondeterminismPolicy,
    estimate_response_distribution,
)
from .observation_table import ObservationTable
from .passive import PartialMealyMachine, rpni_mealy, seed_cache_from_traces
from .teacher import (
    CountingOracle,
    EquivalenceOracle,
    MembershipOracle,
    OracleStats,
    SULMembershipOracle,
    mq_suffix,
    mq_suffix_batch,
)
from .ttt import DiscriminationTree, TTTLearner

__all__ = [
    "CacheInconsistencyError",
    "CachedMembershipOracle",
    "ChainedEquivalenceOracle",
    "CountingOracle",
    "Decomposition",
    "DiscriminationTree",
    "EquivalenceOracle",
    "FixedWordsEquivalenceOracle",
    "LStarLearner",
    "LearningResult",
    "MajorityVoteOracle",
    "MembershipOracle",
    "NondeterminismError",
    "NondeterminismPolicy",
    "ObservationTable",
    "OracleStats",
    "PartialMealyMachine",
    "PerfectEquivalenceOracle",
    "QueryCache",
    "RandomWordEquivalenceOracle",
    "SULMembershipOracle",
    "TTTLearner",
    "WMethodEquivalenceOracle",
    "estimate_response_distribution",
    "mq_suffix",
    "mq_suffix_batch",
    "rivest_schapire",
    "rpni_mealy",
    "seed_cache_from_traces",
]

"""Extended Mealy machines with integer registers (paper section 4.3).

An extended machine decorates every transition of a plain Mealy machine with

* an *update* term per register: how the register vector ``x`` changes as a
  function of the previous registers and the concrete input parameters, and
* an *output* term per output parameter: what concrete value the output
  packet carries, as a function of the updated registers.

Terms are deliberately abstract here: anything with an
``evaluate(registers, inputs)`` method works.  The concrete grammar the
synthesizer searches over (``r``, ``r + 1``, ``pr``, ``pi + 1``, input
fields, constants) lives in :mod:`repro.synth.terms` so that ``core`` stays
dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

from .alphabet import AbstractSymbol
from .mealy import MealyMachine, State


class Term(Protocol):
    """A synthesizable term over register values and input parameters."""

    def evaluate(
        self, registers: Mapping[str, int], inputs: Mapping[str, int]
    ) -> int:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class TransitionAnnotation:
    """Register updates and output parameters for one Mealy transition.

    ``updates`` maps register name -> term evaluated over the *previous*
    register valuation and the current concrete input parameters.  All
    updates happen simultaneously.  ``outputs`` maps output-parameter name ->
    term evaluated over the *updated* registers (matching the paper, where
    the output function ``o`` reads the registers after ``u`` applied).
    """

    updates: Mapping[str, Term] = field(default_factory=dict)
    outputs: Mapping[str, Term] = field(default_factory=dict)


@dataclass
class ConcreteStep:
    """One step of a concrete trace: input params and observed output params.

    ``input_params``/``output_params`` carry the numeric packet fields the
    abstraction dropped -- e.g. ``{"sn": 2, "an": 5}`` for TCP sequence and
    acknowledgement numbers.
    """

    input_symbol: AbstractSymbol
    output_symbol: AbstractSymbol
    input_params: Mapping[str, int]
    output_params: Mapping[str, int]


class ExtendedMealyMachine:
    """A Mealy machine whose transitions update registers and emit values."""

    def __init__(
        self,
        skeleton: MealyMachine,
        register_names: Sequence[str],
        initial_registers: Mapping[str, int],
        annotations: Mapping[tuple[State, AbstractSymbol], TransitionAnnotation],
        name: str = "extended",
    ) -> None:
        self.skeleton = skeleton
        self.register_names = tuple(register_names)
        self.initial_registers = dict(initial_registers)
        self.annotations = dict(annotations)
        self.name = name
        missing = [
            (state, sym)
            for state in skeleton.states
            for sym in skeleton.input_alphabet
            if (state, sym) not in self.annotations
        ]
        if missing:
            raise ValueError(
                f"extended machine {name!r} lacks annotations for "
                f"{len(missing)} transitions, e.g. {missing[0]}"
            )

    def execute(
        self, steps: Sequence[ConcreteStep]
    ) -> list[dict[str, int]]:
        """Run a concrete trace; return predicted output params per step.

        Raises :class:`KeyError` if a term references an unknown register or
        input field -- callers treat that as an inconsistent model.
        """
        state = self.skeleton.initial_state
        registers = dict(self.initial_registers)
        predictions: list[dict[str, int]] = []
        for step in steps:
            annotation = self.annotations[(state, step.input_symbol)]
            updated = dict(registers)
            for reg, term in annotation.updates.items():
                updated[reg] = term.evaluate(registers, step.input_params)
            outputs = {
                param: term.evaluate(updated, step.input_params)
                for param, term in annotation.outputs.items()
            }
            predictions.append(outputs)
            registers = updated
            state, _ = self.skeleton.step(state, step.input_symbol)
        return predictions

    def consistent_with(self, steps: Sequence[ConcreteStep]) -> bool:
        """True if predictions match every observed output parameter.

        Only parameters the annotation actually models are compared; observed
        params without a synthesized term are ignored (the abstraction may
        expose more fields than we chose to synthesize over).
        """
        try:
            predictions = self.execute(steps)
        except KeyError:
            return False
        for step, predicted in zip(steps, predictions):
            for param, value in predicted.items():
                observed = step.output_params.get(param)
                if observed is not None and observed != value:
                    return False
        return True

    def to_dot(self) -> str:
        """DOT rendering with update/output annotations on edges."""
        lines = [
            f'digraph "{self.name}" {{',
            '  node [shape=circle fontname="monospace"];',
            f'  __start [shape=point label=""];',
            f'  __start -> "{self.skeleton.initial_state}";',
        ]
        for t in self.skeleton.transitions():
            annotation = self.annotations[(t.source, t.input)]
            updates = ", ".join(
                f"{reg}={term}" for reg, term in sorted(annotation.updates.items())
            )
            outputs = ", ".join(
                f"{param}={term}"
                for param, term in sorted(annotation.outputs.items())
            )
            label = f"{t.input}/{t.output}"
            if updates:
                label += f"\\n{updates}"
            if outputs:
                label += f"\\n[{outputs}]"
            lines.append(f'  "{t.source}" -> "{t.target}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExtendedMealyMachine({self.name!r}, "
            f"registers={list(self.register_names)}, "
            f"states={self.skeleton.num_states})"
        )

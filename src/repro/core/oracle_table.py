"""The Oracle Table (paper section 3.2, adapter property 4).

The Oracle Table caches every exchange between the learner and the SUL at
*both* abstraction levels: the abstract I/O trace the learner saw, and the
concrete packet parameters the adapter actually sent and received.  The
synthesizer of section 4.3 mines this table to recover register behaviour
(sequence numbers, flow-control offsets, ...) that the abstraction dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from .alphabet import AbstractSymbol
from .extended import ConcreteStep
from .trace import IOTrace, Word


@dataclass(frozen=True)
class OracleEntry:
    """One complete query: abstract trace plus per-step concrete params."""

    abstract: IOTrace
    steps: tuple[ConcreteStep, ...]

    def __post_init__(self) -> None:
        if len(self.abstract) != len(self.steps):
            raise ValueError(
                f"oracle entry length mismatch: {len(self.abstract)} abstract "
                f"steps vs {len(self.steps)} concrete steps"
            )


class OracleTable:
    """An append-only cache of abstract/concrete trace pairs.

    Entries are keyed by their abstract input word, so membership queries can
    be answered from the cache, and the synthesizer can ask for "all concrete
    traces whose abstract path visits transition t".
    """

    def __init__(self, max_entries: int | None = None) -> None:
        self._entries: dict[Word, OracleEntry] = {}
        self._max_entries = max_entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[OracleEntry]:
        return iter(self._entries.values())

    def __contains__(self, inputs: Word) -> bool:
        return tuple(inputs) in self._entries

    def record(
        self,
        inputs: Sequence[AbstractSymbol],
        outputs: Sequence[AbstractSymbol],
        input_params: Sequence[Mapping[str, int]],
        output_params: Sequence[Mapping[str, int]],
    ) -> OracleEntry:
        """Store one query's abstract and concrete observations.

        Re-recording the same input word overwrites the previous entry (the
        latest observation wins, matching the paper's retransmission-pruning
        behaviour).  When ``max_entries`` is set, the oldest entry is evicted
        first.
        """
        abstract = IOTrace(tuple(inputs), tuple(outputs))
        steps = tuple(
            ConcreteStep(
                input_symbol=i,
                output_symbol=o,
                input_params=dict(ip),
                output_params=dict(op),
            )
            for i, o, ip, op in zip(inputs, outputs, input_params, output_params)
        )
        return self.merge(OracleEntry(abstract=abstract, steps=steps))

    def merge(self, entry: OracleEntry) -> OracleEntry:
        """Adopt an entry recorded by another table (e.g. a pool worker).

        Same overwrite/eviction semantics as :meth:`record`.
        """
        key = entry.abstract.inputs
        if (
            self._max_entries is not None
            and key not in self._entries
            and len(self._entries) >= self._max_entries
        ):
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = entry
        return entry

    def lookup(self, inputs: Sequence[AbstractSymbol]) -> OracleEntry | None:
        """The entry recorded for exactly this input word, if any."""
        return self._entries.get(tuple(inputs))

    def lookup_output(self, inputs: Sequence[AbstractSymbol]) -> Word | None:
        """Cached abstract outputs for an input word (prefix-closed).

        If a strictly longer query with this word as a prefix was recorded,
        its output prefix answers the shorter query too -- abstract traces of
        a deterministic SUL are prefix-closed.
        """
        key = tuple(inputs)
        entry = self._entries.get(key)
        if entry is not None:
            return entry.abstract.outputs
        for stored, candidate in self._entries.items():
            if stored[: len(key)] == key:
                return candidate.abstract.outputs[: len(key)]
        return None

    def entries(self) -> list[OracleEntry]:
        """All entries, in insertion order."""
        return list(self._entries.values())

    def concrete_traces(self) -> list[tuple[ConcreteStep, ...]]:
        """All concrete traces -- the synthesizer's training set."""
        return [entry.steps for entry in self._entries.values()]

    def clear(self) -> None:
        self._entries.clear()

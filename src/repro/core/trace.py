"""Traces and I/O words over abstract alphabets.

A *word* is a tuple of symbols; an :class:`IOTrace` pairs an input word with
the equally long output word an implementation produced for it.  Traces are
immutable and hashable so they can populate caches and oracle tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from .alphabet import AbstractSymbol

Word = Tuple[AbstractSymbol, ...]

#: The empty word.
EPSILON: Word = ()


def word(symbols: Iterable[AbstractSymbol]) -> Word:
    """Build a word from any iterable of symbols."""
    return tuple(symbols)


def render_word(w: Sequence[AbstractSymbol], sep: str = " ") -> str:
    """Human-readable rendering of a word, e.g. ``SYN(?,?,0) ACK(?,?,0)``."""
    return sep.join(str(sym) for sym in w) if w else "ε"


@dataclass(frozen=True, order=True)
class IOTrace:
    """A paired input/output trace of equal length."""

    inputs: Word
    outputs: Word

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.outputs):
            raise ValueError(
                f"trace length mismatch: {len(self.inputs)} inputs vs "
                f"{len(self.outputs)} outputs"
            )

    def __len__(self) -> int:
        return len(self.inputs)

    def __iter__(self) -> Iterator[tuple[AbstractSymbol, AbstractSymbol]]:
        return iter(zip(self.inputs, self.outputs))

    def prefix(self, length: int) -> "IOTrace":
        """The trace restricted to its first ``length`` steps."""
        return IOTrace(self.inputs[:length], self.outputs[:length])

    def prefixes(self) -> Iterator["IOTrace"]:
        """All non-empty prefixes, shortest first."""
        for length in range(1, len(self) + 1):
            yield self.prefix(length)

    def extend(self, inp: AbstractSymbol, out: AbstractSymbol) -> "IOTrace":
        """A new trace with one extra step appended."""
        return IOTrace(self.inputs + (inp,), self.outputs + (out,))

    @property
    def last_output(self) -> AbstractSymbol:
        if not self.outputs:
            raise IndexError("empty trace has no last output")
        return self.outputs[-1]

    def render(self) -> str:
        """Paper-style rendering: ``i1/o1 i2/o2 ...``."""
        if not self.inputs:
            return "ε"
        return " ".join(f"{i}/{o}" for i, o in self)


EMPTY_TRACE = IOTrace(EPSILON, EPSILON)


def common_prefix_length(a: Sequence[object], b: Sequence[object]) -> int:
    """Length of the longest common prefix of two sequences."""
    length = 0
    for x, y in zip(a, b):
        if x != y:
            break
        length += 1
    return length


def all_words(alphabet: Sequence[AbstractSymbol], max_length: int) -> Iterator[Word]:
    """Enumerate every word of length 1..max_length in lexicographic order.

    Used by exhaustive equivalence oracles and the trace-count statistics of
    section 6.2.2 (which counts 329,554,456 words of length <= 10 over a
    7-symbol alphabet).
    """
    frontier: list[Word] = [EPSILON]
    for _ in range(max_length):
        next_frontier: list[Word] = []
        for prefix in frontier:
            for symbol in alphabet:
                extended = prefix + (symbol,)
                yield extended
                next_frontier.append(extended)
        frontier = next_frontier


def count_words(alphabet_size: int, max_length: int) -> int:
    """Number of words of length 1..max_length over ``alphabet_size`` symbols.

    ``count_words(7, 10) == 329_554_456`` -- the figure quoted in the paper.
    """
    return sum(alphabet_size**length for length in range(1, max_length + 1))

"""Abstract symbols and alphabets.

Prognosis distinguishes three alphabet levels (paper section 3):

* the *native* alphabet -- raw bytes on the wire,
* the *concrete* alphabet -- structured packet descriptions (JSON-like),
* the *abstract* alphabet -- the simplified symbols the learner sees.

This module implements the abstract level.  Abstract symbols render exactly
like the paper writes them, e.g. ``SYN(?,?,0)`` for TCP or
``INITIAL(?,?)[ACK,CRYPTO]`` for QUIC, and are hashable so they can key
observation tables and transition maps.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


class SymbolError(ValueError):
    """Raised when an abstract symbol cannot be parsed or validated."""


@dataclass(frozen=True, order=True)
class AbstractSymbol:
    """Base class for abstract alphabet symbols.

    Subclasses provide protocol-specific structure; the base class only
    promises a stable, human-readable ``label`` used for hashing, ordering
    and rendering.
    """

    label: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


@dataclass(frozen=True, order=True)
class TCPSymbol(AbstractSymbol):
    """A TCP abstract symbol such as ``SYN+ACK(?,?,0)``.

    ``flags`` is the canonical ``+``-joined flag string (sorted so that the
    same flag set always renders identically), and ``seq``/``ack`` are either
    the literal ``"?"`` placeholder or a concrete integer rendered in the
    label.  ``payload_len`` is the abstracted payload length (the paper's
    alphabet carries 0 or 1).
    """

    flags: tuple[str, ...] = ()
    seq: str = "?"
    ack: str = "?"
    payload_len: int = 0

    _FLAG_ORDER = ("ACK", "SYN", "FIN", "RST", "PSH", "URG")

    @classmethod
    def make(
        cls,
        flags: Iterable[str],
        seq: str | int = "?",
        ack: str | int = "?",
        payload_len: int = 0,
    ) -> "TCPSymbol":
        """Build a symbol from a flag collection, canonicalizing flag order."""
        flag_set = {f.upper() for f in flags}
        unknown = flag_set - set(cls._FLAG_ORDER)
        if unknown:
            raise SymbolError(f"unknown TCP flags: {sorted(unknown)}")
        ordered = tuple(f for f in cls._FLAG_ORDER if f in flag_set)
        seq_s, ack_s = str(seq), str(ack)
        label = f"{'+'.join(ordered) or 'NIL'}({seq_s},{ack_s},{payload_len})"
        return cls(
            label=label, flags=ordered, seq=seq_s, ack=ack_s, payload_len=payload_len
        )

    @property
    def is_nil(self) -> bool:
        """True for the empty (no packet) output symbol."""
        return not self.flags


#: Canonical "no output" symbol for TCP models.
TCP_NIL = TCPSymbol(label="NIL", flags=(), seq="?", ack="?", payload_len=0)

_TCP_SYMBOL_RE = re.compile(
    r"^(?P<flags>[A-Z+]+)\((?P<seq>[^,]+),(?P<ack>[^,]+),(?P<plen>\d+)\)$"
)


def parse_tcp_symbol(text: str) -> TCPSymbol:
    """Parse a paper-style TCP symbol, e.g. ``ACK+PSH(?,?,1)`` or ``NIL``."""
    text = text.strip()
    if text == "NIL":
        return TCP_NIL
    match = _TCP_SYMBOL_RE.match(text)
    if match is None:
        raise SymbolError(f"malformed TCP symbol: {text!r}")
    flags = match.group("flags").split("+")
    return TCPSymbol.make(
        flags,
        seq=match.group("seq"),
        ack=match.group("ack"),
        payload_len=int(match.group("plen")),
    )


#: QUIC packet types (paper: "QUIC provides 7 packet types").
QUIC_PACKET_TYPES = (
    "INITIAL",
    "HANDSHAKE",
    "SHORT",
    "ZERO_RTT",
    "RETRY",
    "VERSION_NEGOTIATION",
    "STATELESS_RESET",
)

#: QUIC frame types (paper: "20 frame types", RFC 9000 section 12.4).
QUIC_FRAME_TYPES = (
    "PADDING",
    "PING",
    "ACK",
    "RESET_STREAM",
    "STOP_SENDING",
    "CRYPTO",
    "NEW_TOKEN",
    "STREAM",
    "MAX_DATA",
    "MAX_STREAM_DATA",
    "MAX_STREAMS",
    "DATA_BLOCKED",
    "STREAM_DATA_BLOCKED",
    "STREAMS_BLOCKED",
    "NEW_CONNECTION_ID",
    "RETIRE_CONNECTION_ID",
    "PATH_CHALLENGE",
    "PATH_RESPONSE",
    "CONNECTION_CLOSE",
    "HANDSHAKE_DONE",
)


@dataclass(frozen=True, order=True)
class QUICSymbol(AbstractSymbol):
    """A QUIC abstract symbol such as ``INITIAL(?,?)[ACK,CRYPTO]``.

    ``packet_type`` is one of :data:`QUIC_PACKET_TYPES`; ``frames`` is the
    tuple of frame-type names carried by the packet, in canonical (sorted)
    order; ``version`` and ``packet_number`` are ``"?"`` placeholders unless a
    richer abstraction pins them to concrete values.
    """

    packet_type: str = "INITIAL"
    frames: tuple[str, ...] = ()
    version: str = "?"
    packet_number: str = "?"

    @classmethod
    def make(
        cls,
        packet_type: str,
        frames: Iterable[str],
        version: str | int = "?",
        packet_number: str | int = "?",
    ) -> "QUICSymbol":
        """Build a canonical symbol, validating packet and frame types."""
        packet_type = packet_type.upper()
        if packet_type not in QUIC_PACKET_TYPES:
            raise SymbolError(f"unknown QUIC packet type: {packet_type!r}")
        frame_tuple = tuple(sorted(f.upper() for f in frames))
        unknown = set(frame_tuple) - set(QUIC_FRAME_TYPES)
        if unknown:
            raise SymbolError(f"unknown QUIC frame types: {sorted(unknown)}")
        ver, pn = str(version), str(packet_number)
        label = f"{packet_type}({ver},{pn})[{','.join(frame_tuple)}]"
        return cls(
            label=label,
            packet_type=packet_type,
            frames=frame_tuple,
            version=ver,
            packet_number=pn,
        )


_QUIC_SYMBOL_RE = re.compile(
    r"^(?P<ptype>[A-Z_]+)\((?P<ver>[^,]+),(?P<pn>[^)]+)\)\[(?P<frames>[A-Z_,]*)\]$"
)


def parse_quic_symbol(text: str) -> QUICSymbol:
    """Parse a paper-style QUIC symbol, e.g. ``SHORT(?,?)[ACK,STREAM]``."""
    match = _QUIC_SYMBOL_RE.match(text.strip())
    if match is None:
        raise SymbolError(f"malformed QUIC symbol: {text!r}")
    frames = [f for f in match.group("frames").split(",") if f]
    return QUICSymbol.make(
        match.group("ptype"),
        frames,
        version=match.group("ver"),
        packet_number=match.group("pn"),
    )


@dataclass(frozen=True, order=True)
class QUICOutput(AbstractSymbol):
    """An abstract QUIC *output*: the multiset of packets sent in response.

    The appendix models render outputs as ``{HANDSHAKE(?,?)[CRYPTO],...}``;
    an empty response is ``{}``.  Packets are kept in canonical sorted order
    (with multiplicity) so two equal multisets always compare equal.
    """

    packets: tuple[QUICSymbol, ...] = ()

    @classmethod
    def make(cls, packets: Iterable[QUICSymbol]) -> "QUICOutput":
        ordered = tuple(sorted(packets))
        label = "{" + ",".join(p.label for p in ordered) + "}"
        return cls(label=label, packets=ordered)

    @property
    def is_empty(self) -> bool:
        return not self.packets

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[QUICSymbol]:
        return iter(self.packets)

    def frame_types(self) -> frozenset[str]:
        """All frame types appearing anywhere in the response."""
        return frozenset(f for p in self.packets for f in p.frames)


#: Canonical empty QUIC output, rendered ``{}`` like the appendix figures.
QUIC_EMPTY_OUTPUT = QUICOutput.make(())


def parse_quic_output(text: str) -> QUICOutput:
    """Parse an appendix-style output multiset such as
    ``{HANDSHAKE(?,?)[CRYPTO],INITIAL(?,?)[ACK,CRYPTO]}``."""
    text = text.strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise SymbolError(f"malformed QUIC output: {text!r}")
    body = text[1:-1].strip()
    if not body:
        return QUIC_EMPTY_OUTPUT
    # Split on commas that are not inside (...) or [...] groups.
    parts, depth, start = [], 0, 0
    for idx, char in enumerate(body):
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        elif char == "," and depth == 0:
            parts.append(body[start:idx])
            start = idx + 1
    parts.append(body[start:])
    return QUICOutput.make(parse_quic_symbol(part) for part in parts)


#: HTTP/2 frame types (RFC 9113 section 6).
HTTP2_FRAME_KINDS = (
    "DATA",
    "HEADERS",
    "PRIORITY",
    "RST_STREAM",
    "SETTINGS",
    "PUSH_PROMISE",
    "PING",
    "GOAWAY",
    "WINDOW_UPDATE",
    "CONTINUATION",
)

#: HTTP/2 frame flag names the abstraction renders (RFC 9113 section 6).
HTTP2_FLAG_NAMES = ("ACK", "END_HEADERS", "END_STREAM", "PADDED", "PRIORITY")


@dataclass(frozen=True, order=True)
class HTTP2Symbol(AbstractSymbol):
    """An HTTP/2 abstract symbol such as ``HEADERS[END_HEADERS,END_STREAM]``.

    ``kind`` is one of :data:`HTTP2_FRAME_KINDS`; ``flags`` is the tuple of
    set flag names in canonical (sorted) order.  Stream identifiers and
    payloads are abstracted away -- they live in the Oracle Table's concrete
    parameters, where the stream-id monotonicity check reads them back.
    """

    kind: str = "PING"
    flags: tuple[str, ...] = ()

    @classmethod
    def make(cls, kind: str, flags: Iterable[str] = ()) -> "HTTP2Symbol":
        """Build a canonical symbol, validating frame kind and flag names."""
        kind = kind.upper()
        if kind not in HTTP2_FRAME_KINDS:
            raise SymbolError(f"unknown HTTP/2 frame kind: {kind!r}")
        flag_tuple = tuple(sorted(f.upper() for f in flags))
        unknown = set(flag_tuple) - set(HTTP2_FLAG_NAMES)
        if unknown:
            raise SymbolError(f"unknown HTTP/2 frame flags: {sorted(unknown)}")
        label = f"{kind}[{','.join(flag_tuple)}]"
        return cls(label=label, kind=kind, flags=flag_tuple)


_HTTP2_SYMBOL_RE = re.compile(r"^(?P<kind>[A-Z_]+)\[(?P<flags>[A-Z_,]*)\]$")


def parse_http2_symbol(text: str) -> HTTP2Symbol:
    """Parse an HTTP/2 frame symbol, e.g. ``SETTINGS[ACK]`` or ``DATA[]``."""
    match = _HTTP2_SYMBOL_RE.match(text.strip())
    if match is None:
        raise SymbolError(f"malformed HTTP/2 symbol: {text!r}")
    flags = [f for f in match.group("flags").split(",") if f]
    return HTTP2Symbol.make(match.group("kind"), flags)


@dataclass(frozen=True, order=True)
class HTTP2Output(AbstractSymbol):
    """An abstract HTTP/2 *output*: the frame sequence sent in response.

    Unlike :class:`QUICOutput` (a multiset of independent packets), frame
    order on the HTTP/2 byte stream is meaningful, so the sequence is kept
    as received and rendered ``HEADERS[END_HEADERS]+DATA[END_STREAM]``;
    an empty response is ``NIL``.
    """

    frames: tuple[HTTP2Symbol, ...] = ()

    @classmethod
    def make(cls, frames: Iterable[HTTP2Symbol]) -> "HTTP2Output":
        ordered = tuple(frames)
        label = "+".join(f.label for f in ordered) or "NIL"
        return cls(label=label, frames=ordered)

    @property
    def is_empty(self) -> bool:
        return not self.frames

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[HTTP2Symbol]:
        return iter(self.frames)

    def kinds(self) -> tuple[str, ...]:
        """The frame kinds in response order."""
        return tuple(f.kind for f in self.frames)


#: Canonical empty HTTP/2 output, rendered ``NIL``.
HTTP2_EMPTY_OUTPUT = HTTP2Output.make(())


def parse_http2_output(text: str) -> HTTP2Output:
    """Parse a rendered frame sequence such as
    ``HEADERS[END_HEADERS]+DATA[END_STREAM]`` (or ``NIL``)."""
    text = text.strip()
    if text == "NIL":
        return HTTP2_EMPTY_OUTPUT
    return HTTP2Output.make(parse_http2_symbol(part) for part in text.split("+"))


#: HTTP/3 abstract frame kinds (RFC 9114 section 7.2) plus ``RST`` for a
#: QUIC-level stream reset and ``CANCEL``, the client's abstract request
#: cancellation (concretized as RESET_STREAM with H3_REQUEST_CANCELLED).
H3_FRAME_KINDS = (
    "SETTINGS",
    "HEADERS",
    "DATA",
    "GOAWAY",
    "CANCEL",
    "RST",
    "CANCEL_PUSH",
    "MAX_PUSH_ID",
    "PUSH_PROMISE",
)


@dataclass(frozen=True, order=True)
class H3Symbol(AbstractSymbol):
    """An HTTP/3 abstract symbol such as ``HEADERS[FIN]``.

    HTTP/3 frames carry no flags -- end-of-message is the QUIC stream's
    FIN bit -- so the only modifier is ``fin``, rendered ``KIND[FIN]``.
    Stream identifiers live in the Oracle Table's concrete parameters,
    exactly as for HTTP/2.
    """

    kind: str = "SETTINGS"
    fin: bool = False

    @classmethod
    def make(cls, kind: str, fin: bool = False) -> "H3Symbol":
        """Build a canonical symbol, validating the frame kind."""
        kind = kind.upper()
        if kind not in H3_FRAME_KINDS:
            raise SymbolError(f"unknown HTTP/3 frame kind: {kind!r}")
        label = f"{kind}[FIN]" if fin else kind
        return cls(label=label, kind=kind, fin=fin)


_H3_SYMBOL_RE = re.compile(r"^(?P<kind>[A-Z_]+)(?P<fin>\[FIN\])?$")


def parse_h3_symbol(text: str) -> H3Symbol:
    """Parse an HTTP/3 frame symbol, e.g. ``HEADERS[FIN]`` or ``GOAWAY``."""
    match = _H3_SYMBOL_RE.match(text.strip())
    if match is None:
        raise SymbolError(f"malformed HTTP/3 symbol: {text!r}")
    return H3Symbol.make(match.group("kind"), fin=match.group("fin") is not None)


@dataclass(frozen=True, order=True)
class H3Output(AbstractSymbol):
    """An abstract HTTP/3 *output*: per-stream frame sequences.

    QUIC streams are independent, so -- unlike :class:`HTTP2Output`'s
    single ordered sequence -- a response is a *multiset of streams*,
    each an ordered frame sequence.  Rendered as the sorted, braced form
    ``{HEADERS+DATA[FIN],SETTINGS}``; an empty response is ``{}``.
    """

    streams: tuple[tuple[H3Symbol, ...], ...] = ()

    @classmethod
    def make(cls, streams: Iterable[Iterable[H3Symbol]]) -> "H3Output":
        canonical = tuple(
            sorted(
                (tuple(stream) for stream in streams),
                key=lambda s: "+".join(f.label for f in s),
            )
        )
        label = (
            "{"
            + ",".join("+".join(f.label for f in s) for s in canonical)
            + "}"
        )
        return cls(label=label, streams=canonical)

    @property
    def is_empty(self) -> bool:
        return not self.streams

    def __len__(self) -> int:
        return len(self.streams)

    def __iter__(self) -> Iterator[tuple[H3Symbol, ...]]:
        return iter(self.streams)

    def kinds(self) -> tuple[tuple[str, ...], ...]:
        """Frame kinds per stream, in canonical stream order."""
        return tuple(tuple(f.kind for f in s) for s in self.streams)


#: Canonical empty HTTP/3 output, rendered ``{}``.
H3_EMPTY_OUTPUT = H3Output.make(())


def parse_h3_output(text: str) -> H3Output:
    """Parse a rendered stream multiset such as ``{HEADERS+DATA[FIN]}``."""
    text = text.strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise SymbolError(f"malformed HTTP/3 output: {text!r}")
    body = text[1:-1]
    if not body:
        return H3_EMPTY_OUTPUT
    return H3Output.make(
        tuple(parse_h3_symbol(part) for part in item.split("+"))
        for item in body.split(",")
    )


@dataclass(frozen=True)
class Alphabet:
    """An ordered, indexable collection of abstract symbols."""

    symbols: tuple[AbstractSymbol, ...]
    _index: dict[AbstractSymbol, int] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if len(set(self.symbols)) != len(self.symbols):
            raise SymbolError("alphabet contains duplicate symbols")
        object.__setattr__(
            self, "_index", {sym: i for i, sym in enumerate(self.symbols)}
        )

    @classmethod
    def of(cls, symbols: Sequence[AbstractSymbol]) -> "Alphabet":
        return cls(symbols=tuple(symbols))

    def __len__(self) -> int:
        return len(self.symbols)

    def __iter__(self) -> Iterator[AbstractSymbol]:
        return iter(self.symbols)

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._index

    def __getitem__(self, index: int) -> AbstractSymbol:
        return self.symbols[index]

    def index(self, symbol: AbstractSymbol) -> int:
        """Position of ``symbol`` in the alphabet (raises if absent)."""
        try:
            return self._index[symbol]
        except KeyError:
            raise SymbolError(f"symbol not in alphabet: {symbol}") from None


_SYMBOL_PARSERS = {
    "tcp": lambda text: parse_tcp_symbol(text),
    "quic": lambda text: parse_quic_symbol(text),
    "quic-output": lambda text: parse_quic_output(text),
    "http2": lambda text: parse_http2_symbol(text),
    "http2-output": lambda text: parse_http2_output(text),
    "h3": lambda text: parse_h3_symbol(text),
    "h3-output": lambda text: parse_h3_output(text),
    "raw": lambda text: AbstractSymbol(label=text),
}


def serialize_symbol(symbol: AbstractSymbol) -> dict:
    """A JSON-able ``{"kind", "text"}`` encoding of an abstract symbol.

    The ``text`` is the symbol's canonical label (exactly what the paper
    prints), so serialized models stay human-readable; ``kind`` picks the
    parser that reconstructs the structured symbol.
    """
    if isinstance(symbol, TCPSymbol):
        kind = "tcp"
    elif isinstance(symbol, QUICOutput):
        kind = "quic-output"
    elif isinstance(symbol, QUICSymbol):
        kind = "quic"
    elif isinstance(symbol, HTTP2Output):
        kind = "http2-output"
    elif isinstance(symbol, HTTP2Symbol):
        kind = "http2"
    elif isinstance(symbol, H3Output):
        kind = "h3-output"
    elif isinstance(symbol, H3Symbol):
        kind = "h3"
    else:
        kind = "raw"
    return {"kind": kind, "text": symbol.label}


def deserialize_symbol(data: Mapping) -> AbstractSymbol:
    """Inverse of :func:`serialize_symbol`."""
    try:
        kind, text = data["kind"], data["text"]
    except (KeyError, TypeError):
        raise SymbolError(f"malformed serialized symbol: {data!r}") from None
    try:
        parser = _SYMBOL_PARSERS[kind]
    except KeyError:
        raise SymbolError(f"unknown serialized symbol kind: {kind!r}") from None
    return parser(text)


def tcp_alphabet() -> Alphabet:
    """The 7-symbol TCP abstract input alphabet of section 6.1."""
    return Alphabet.of(
        [
            parse_tcp_symbol("SYN(?,?,0)"),
            parse_tcp_symbol("SYN+ACK(?,?,0)"),
            parse_tcp_symbol("ACK(?,?,0)"),
            parse_tcp_symbol("ACK+PSH(?,?,1)"),
            parse_tcp_symbol("FIN+ACK(?,?,0)"),
            parse_tcp_symbol("RST(?,?,0)"),
            parse_tcp_symbol("ACK+RST(?,?,0)"),
        ]
    )


def tcp_handshake_alphabet() -> Alphabet:
    """The 2-symbol alphabet used to learn the 3-way handshake (Fig. 3)."""
    return Alphabet.of(
        [parse_tcp_symbol("SYN(?,?,0)"), parse_tcp_symbol("ACK(?,?,0)")]
    )


def http2_alphabet() -> Alphabet:
    """The 7-symbol HTTP/2 abstract input alphabet.

    Mirrors the size of the paper's TCP and QUIC alphabets: the connection
    handshake (SETTINGS), a complete request, an open request plus its
    final body chunk, stream cancellation, liveness, and shutdown.
    """
    return Alphabet.of(
        [
            parse_http2_symbol("SETTINGS[]"),
            parse_http2_symbol("HEADERS[END_HEADERS,END_STREAM]"),
            parse_http2_symbol("HEADERS[END_HEADERS]"),
            parse_http2_symbol("DATA[END_STREAM]"),
            parse_http2_symbol("RST_STREAM[]"),
            parse_http2_symbol("PING[]"),
            parse_http2_symbol("GOAWAY[]"),
        ]
    )


def h3_alphabet() -> Alphabet:
    """The 7-symbol HTTP/3 abstract input alphabet.

    Same shape as the HTTP/2 alphabet -- handshake (SETTINGS), complete
    and open requests, body completion, cancellation, shutdown -- but
    framed in HTTP/3 terms: no flags, FIN is the QUIC stream bit, and
    liveness (PING) has no HTTP/3 frame, its place taken by a bare DATA.
    """
    return Alphabet.of(
        [
            parse_h3_symbol("SETTINGS"),
            parse_h3_symbol("HEADERS[FIN]"),
            parse_h3_symbol("HEADERS"),
            parse_h3_symbol("DATA"),
            parse_h3_symbol("DATA[FIN]"),
            parse_h3_symbol("CANCEL"),
            parse_h3_symbol("GOAWAY"),
        ]
    )


def quic_alphabet() -> Alphabet:
    """The 7-symbol QUIC abstract input alphabet of section 6.2.2."""
    return Alphabet.of(
        [
            parse_quic_symbol("INITIAL(?,?)[CRYPTO]"),
            parse_quic_symbol("INITIAL(?,?)[ACK,HANDSHAKE_DONE]"),
            parse_quic_symbol("HANDSHAKE(?,?)[ACK,CRYPTO]"),
            parse_quic_symbol("HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]"),
            parse_quic_symbol("SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA]"),
            parse_quic_symbol("SHORT(?,?)[ACK,STREAM]"),
            parse_quic_symbol("SHORT(?,?)[ACK,HANDSHAKE_DONE]"),
        ]
    )

"""Deterministic Mealy machines (paper definition 4.1).

A Mealy machine is a tuple ``(S, s0, Sigma, Gamma, T, G)`` with finite state
set ``S``, initial state ``s0``, input alphabet ``Sigma``, output alphabet
``Gamma``, transition function ``T : S x Sigma -> S`` and output function
``G : S x Sigma -> Gamma``.  This module provides construction, execution,
minimization, canonical relabeling, test-suite generation (used by the
W-method equivalence oracle and the trace-reduction statistics) and DOT
export.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from .alphabet import AbstractSymbol, Alphabet, deserialize_symbol, serialize_symbol
from .trace import EPSILON, IOTrace, Word

State = Hashable


class MealyError(ValueError):
    """Raised on malformed machines or inputs outside the alphabet."""


@dataclass(frozen=True)
class Transition:
    """A single labelled edge ``source --input/output--> target``."""

    source: State
    input: AbstractSymbol
    output: AbstractSymbol
    target: State


class MealyMachine:
    """An input-complete deterministic Mealy machine.

    ``transitions`` maps ``(state, input_symbol)`` to
    ``(next_state, output_symbol)``.  The machine is validated to be
    input-complete over ``input_alphabet`` for every state reachable from
    ``initial_state``; unreachable states are dropped.
    """

    def __init__(
        self,
        initial_state: State,
        input_alphabet: Alphabet,
        transitions: Mapping[tuple[State, AbstractSymbol], tuple[State, AbstractSymbol]],
        name: str = "mealy",
    ) -> None:
        self.initial_state = initial_state
        self.input_alphabet = input_alphabet
        self.name = name
        self._delta: dict[tuple[State, AbstractSymbol], tuple[State, AbstractSymbol]] = {}

        reachable: list[State] = []
        seen = {initial_state}
        queue: deque[State] = deque([initial_state])
        while queue:
            state = queue.popleft()
            reachable.append(state)
            for symbol in input_alphabet:
                key = (state, symbol)
                if key not in transitions:
                    raise MealyError(
                        f"machine {name!r} is not input-complete: state "
                        f"{state!r} has no transition on {symbol}"
                    )
                target, output = transitions[key]
                self._delta[key] = (target, output)
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        self.states: tuple[State, ...] = tuple(reachable)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, state: State, symbol: AbstractSymbol) -> tuple[State, AbstractSymbol]:
        """One transition: returns ``(next_state, output)``."""
        try:
            return self._delta[(state, symbol)]
        except KeyError:
            raise MealyError(f"no transition from {state!r} on {symbol}") from None

    def run(self, inputs: Sequence[AbstractSymbol], start: State | None = None) -> Word:
        """Outputs produced by feeding ``inputs`` from ``start`` (or s0)."""
        state = self.initial_state if start is None else start
        outputs: list[AbstractSymbol] = []
        for symbol in inputs:
            state, output = self.step(state, symbol)
            outputs.append(output)
        return tuple(outputs)

    def trace(self, inputs: Sequence[AbstractSymbol]) -> IOTrace:
        """The I/O trace for an input word from the initial state."""
        return IOTrace(tuple(inputs), self.run(inputs))

    def state_after(self, inputs: Sequence[AbstractSymbol], start: State | None = None) -> State:
        """The state reached after reading ``inputs``."""
        state = self.initial_state if start is None else start
        for symbol in inputs:
            state, _ = self.step(state, symbol)
        return state

    def output(self, state: State, symbol: AbstractSymbol) -> AbstractSymbol:
        return self.step(state, symbol)[1]

    def successor(self, state: State, symbol: AbstractSymbol) -> State:
        return self.step(state, symbol)[0]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return len(self._delta)

    def transitions(self) -> Iterator[Transition]:
        """All edges in a stable order (state order, then alphabet order)."""
        for state in self.states:
            for symbol in self.input_alphabet:
                target, output = self._delta[(state, symbol)]
                yield Transition(state, symbol, output, target)

    def output_alphabet(self) -> tuple[AbstractSymbol, ...]:
        """All output symbols that occur on some transition, sorted."""
        return tuple(sorted({t.output for t in self.transitions()}))

    # ------------------------------------------------------------------
    # Canonical forms
    # ------------------------------------------------------------------
    def minimize(self) -> "MealyMachine":
        """Minimal machine with the same I/O behaviour (partition refinement).

        Standard Hopcroft-style refinement adapted to Mealy machines: the
        initial partition groups states by their full output row; blocks are
        split until every pair of states in a block agrees on the block of
        each successor.
        """
        # Initial partition: states with identical output rows.
        def row(state: State) -> tuple[AbstractSymbol, ...]:
            return tuple(self.output(state, a) for a in self.input_alphabet)

        blocks: dict[tuple, list[State]] = {}
        for state in self.states:
            blocks.setdefault(row(state), []).append(state)
        partition: list[list[State]] = list(blocks.values())

        changed = True
        while changed:
            changed = False
            block_of = {s: i for i, block in enumerate(partition) for s in block}
            new_partition: list[list[State]] = []
            for block in partition:
                splitter: dict[tuple[int, ...], list[State]] = {}
                for state in block:
                    signature = tuple(
                        block_of[self.successor(state, a)] for a in self.input_alphabet
                    )
                    splitter.setdefault(signature, []).append(state)
                if len(splitter) > 1:
                    changed = True
                new_partition.extend(splitter.values())
            partition = new_partition

        block_of = {s: i for i, block in enumerate(partition) for s in block}
        transitions: dict[tuple[State, AbstractSymbol], tuple[State, AbstractSymbol]] = {}
        for block_index, block in enumerate(partition):
            representative = block[0]
            for symbol in self.input_alphabet:
                target, output = self.step(representative, symbol)
                transitions[(block_index, symbol)] = (block_of[target], output)
        machine = MealyMachine(
            block_of[self.initial_state], self.input_alphabet, transitions, self.name
        )
        return machine.relabel()

    def relabel(self, prefix: str = "s") -> "MealyMachine":
        """Rename states ``s0, s1, ...`` in BFS order from the initial state.

        Two behaviourally identical minimal machines relabel to structurally
        identical machines, which makes equality checks trivial.
        """
        order: dict[State, str] = {self.initial_state: f"{prefix}0"}
        queue: deque[State] = deque([self.initial_state])
        while queue:
            state = queue.popleft()
            for symbol in self.input_alphabet:
                target, _ = self.step(state, symbol)
                if target not in order:
                    order[target] = f"{prefix}{len(order)}"
                    queue.append(target)
        transitions = {
            (order[t.source], t.input): (order[t.target], t.output)
            for t in self.transitions()
        }
        return MealyMachine(f"{prefix}0", self.input_alphabet, transitions, self.name)

    def structurally_equal(self, other: "MealyMachine") -> bool:
        """True if both machines have identical state names and edges."""
        if set(self.states) != set(other.states):
            return False
        if self.initial_state != other.initial_state:
            return False
        return self._delta == other._delta

    # ------------------------------------------------------------------
    # Test-suite generation (used by W-method and statistics)
    # ------------------------------------------------------------------
    def access_sequences(self) -> dict[State, Word]:
        """A shortest input word reaching each state (BFS)."""
        access: dict[State, Word] = {self.initial_state: EPSILON}
        queue: deque[State] = deque([self.initial_state])
        while queue:
            state = queue.popleft()
            for symbol in self.input_alphabet:
                target, _ = self.step(state, symbol)
                if target not in access:
                    access[target] = access[state] + (symbol,)
                    queue.append(target)
        return access

    def transition_cover(self) -> list[Word]:
        """Words exercising every transition once (access sequence + symbol)."""
        access = self.access_sequences()
        return [access[s] + (a,) for s in self.states for a in self.input_alphabet]

    def distinguishing_suffix(self, a: State, b: State) -> Word | None:
        """A shortest word on which states ``a`` and ``b`` differ, or None.

        BFS over pairs of states; the suffix is reconstructed from parent
        pointers.  Used to build characterization sets and to explain model
        differences to users.
        """
        if a == b:
            return None
        start = (a, b)
        parents: dict[tuple[State, State], tuple[tuple[State, State], AbstractSymbol]] = {}
        seen = {start}
        queue: deque[tuple[State, State]] = deque([start])
        while queue:
            pair = queue.popleft()
            for symbol in self.input_alphabet:
                next_a, out_a = self.step(pair[0], symbol)
                next_b, out_b = self.step(pair[1], symbol)
                if out_a != out_b:
                    # Reconstruct the path start -> pair, then append the
                    # symbol on which the outputs differ.
                    path: list[AbstractSymbol] = []
                    cursor = pair
                    while cursor != start:
                        cursor, sym = parents[cursor]
                        path.append(sym)
                    path.reverse()
                    path.append(symbol)
                    return tuple(path)
                next_pair = (next_a, next_b)
                if next_pair not in seen:
                    seen.add(next_pair)
                    parents[next_pair] = (pair, symbol)
                    queue.append(next_pair)
        return None

    def characterization_set(self) -> list[Word]:
        """A set of suffixes distinguishing every pair of distinct states."""
        suffixes: list[Word] = []
        states = list(self.states)
        for i, a in enumerate(states):
            for b in states[i + 1 :]:
                if any(self.run(w, a) != self.run(w, b) for w in suffixes):
                    continue
                suffix = self.distinguishing_suffix(a, b)
                if suffix is not None:
                    suffixes.append(suffix)
        return suffixes or [EPSILON]

    def w_method_suite(self, extra_states: int = 0) -> list[Word]:
        """The classical W-method test suite ``P . Sigma^<=k . W``.

        With ``extra_states == 0`` this is the transition cover concatenated
        with the characterization set: the set of traces that must be checked
        to establish equivalence with a machine of at most the same size.
        Section 6.2.2's "1210 and 715 traces" correspond to this suite.
        """
        cover = [EPSILON] + self.transition_cover()
        w_set = self.characterization_set()
        middles: list[Word] = [EPSILON]
        frontier: list[Word] = [EPSILON]
        for _ in range(extra_states):
            frontier = [m + (a,) for m in frontier for a in self.input_alphabet]
            middles.extend(frontier)
        suite = {p + m + w for p in cover for m in middles for w in w_set}
        suite.discard(EPSILON)
        return sorted(suite)

    # ------------------------------------------------------------------
    # Serialization (campaign artifacts, model exchange)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-able encoding of the machine.

        States are rendered with ``str`` (learned machines use string or
        tuple-of-symbol state names; both stringify deterministically), the
        alphabet is serialized once, and transitions reference inputs by
        alphabet index.  ``from_dict(to_dict())`` reconstructs a machine
        with identical behaviour; it is byte-identical (``to_dict`` equal)
        whenever state names are already strings, e.g. after
        :meth:`relabel`.
        """
        symbols = list(self.input_alphabet)
        return {
            "name": self.name,
            "initial_state": str(self.initial_state),
            "input_alphabet": [serialize_symbol(s) for s in symbols],
            "transitions": [
                {
                    "source": str(t.source),
                    "input": symbols.index(t.input),
                    "output": serialize_symbol(t.output),
                    "target": str(t.target),
                }
                for t in self.transitions()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MealyMachine":
        """Inverse of :meth:`to_dict`."""
        alphabet = Alphabet.of(
            [deserialize_symbol(s) for s in data["input_alphabet"]]
        )
        transitions = {
            (row["source"], alphabet[row["input"]]): (
                row["target"],
                deserialize_symbol(row["output"]),
            )
            for row in data["transitions"]
        }
        return cls(
            data["initial_state"], alphabet, transitions, name=data.get("name", "mealy")
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        """GraphViz DOT rendering in the style of the appendix figures."""
        lines = [
            f'digraph "{self.name}" {{',
            "  rankdir=TB;",
            '  node [shape=circle fontname="monospace"];',
            f'  __start [shape=point label=""];',
            f'  __start -> "{self.initial_state}";',
        ]
        for t in self.transitions():
            lines.append(
                f'  "{t.source}" -> "{t.target}" '
                f'[label="{t.input}/{t.output}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MealyMachine({self.name!r}, states={self.num_states}, "
            f"transitions={self.num_transitions})"
        )


def mealy_from_table(
    initial_state: State,
    input_alphabet: Alphabet,
    table: Iterable[tuple[State, AbstractSymbol, AbstractSymbol, State]],
    name: str = "mealy",
) -> MealyMachine:
    """Build a machine from ``(source, input, output, target)`` rows."""
    transitions = {(src, inp): (dst, out) for src, inp, out, dst in table}
    return MealyMachine(initial_state, input_alphabet, transitions, name)


def behavior_fingerprint(machine: MealyMachine, depth: int = 4) -> frozenset[IOTrace]:
    """The set of I/O traces up to ``depth`` -- a cheap behavioural digest."""
    traces: set[IOTrace] = set()

    def explore(state: State, trace: IOTrace) -> None:
        if len(trace) == depth:
            return
        for symbol in machine.input_alphabet:
            target, output = machine.step(state, symbol)
            extended = trace.extend(symbol, output)
            traces.add(extended)
            explore(target, extended)

    explore(machine.initial_state, IOTrace(EPSILON, EPSILON))
    return frozenset(traces)

"""String-keyed component registries (the plug-in seam of the spec API).

Prognosis's value is running *many* learning experiments -- different SUL
targets, learners, equivalence-testing strategies and oracle middleware.
Instead of if/else chains in :mod:`repro.framework` and :mod:`repro.cli`,
each component kind has a :class:`Registry` that maps a short string key to
a factory.  A :class:`repro.spec.ExperimentSpec` names components by key,
which is what makes specs serializable and campaigns enumerable.

Five registries are provided:

* :data:`SUL_REGISTRY` -- factories building a fresh
  :class:`~repro.adapter.sul.SUL` from keyword params (``seed`` etc.);
* :data:`LEARNER_REGISTRY` -- ``factory(oracle, equivalence_oracle, ...)``;
* :data:`EQ_ORACLE_REGISTRY` -- ``factory(oracle, ...)``;
* :data:`MIDDLEWARE_REGISTRY` -- ``factory(inner_oracle, ...)`` membership
  -oracle layers (cache, majority vote, ...);
* :data:`PROPERTY_REGISTRY` -- ``factory()`` property suites (sequences
  of :class:`~repro.analysis.property_api.Property`), keyed by target
  name or family stem and registered with :func:`register_properties`.

Built-in components register themselves on import of their home module;
:func:`load_builtins` triggers those imports and is called by every spec
entry point, so user code never has to.  Third-party protocols plug in with
the same decorator::

    from repro.registry import SUL_REGISTRY

    @SUL_REGISTRY.register("http3")
    def build_http3_sul(seed: int = 0) -> SUL: ...
"""

from __future__ import annotations

import inspect
from typing import Callable, Generic, Iterator, Mapping, Sequence, TypeVar

T = TypeVar("T")


class RegistryError(KeyError):
    """An unknown component key (the message lists what *is* registered)."""


class Registry(Generic[T]):
    """An ordered name -> factory mapping with a registration decorator."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., T]] = {}

    # -- registration ------------------------------------------------------
    def register(
        self, name: str, factory: Callable[..., T] | None = None
    ) -> Callable:
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering a name replaces the previous factory (tests and
        plug-ins may override built-ins deliberately).
        """

        def _record(fn: Callable[..., T]) -> Callable[..., T]:
            self._factories[name] = fn
            return fn

        if factory is not None:
            return _record(factory)
        return _record

    def unregister(self, name: str) -> None:
        self._factories.pop(name, None)

    # -- lookup ------------------------------------------------------------
    def get(self, name: str) -> Callable[..., T]:
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None

    def create(self, name: str, *args, **params) -> T:
        """Instantiate the component registered under ``name``."""
        return self.get(name)(*args, **params)

    def names(self) -> tuple[str, ...]:
        """Registered keys, in registration order."""
        return tuple(self._factories)

    def families(self) -> dict[str, tuple[str, ...]]:
        """Registered keys grouped by their ``-``-separated stem.

        ``quic-google`` / ``quic-mvfst`` / ``quic-quiche`` form the
        ``quic`` family; a bare key (``http2``) belongs to its own stem's
        family alongside its variants (``http2-buggy``).  Keys within a
        family are sorted, the bare key first -- the discovery the
        ``repro difftest <family>`` CLI uses.
        """
        grouped: dict[str, list[str]] = {}
        for name in self._factories:
            grouped.setdefault(name.split("-", 1)[0], []).append(name)
        return {
            stem: tuple(sorted(members)) for stem, members in grouped.items()
        }

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {sorted(self._factories)})"


#: System-under-learning targets (``tcp``, ``quic-google``, ..., plug-ins).
SUL_REGISTRY: Registry = Registry("SUL target")
#: Active-learning algorithms (``ttt``, ``lstar``).
LEARNER_REGISTRY: Registry = Registry("learner")
#: Equivalence-testing strategies (``wmethod``, ``random``).
EQ_ORACLE_REGISTRY: Registry = Registry("equivalence oracle")
#: Membership-oracle middleware layers (``cache``, ``majority-vote``).
MIDDLEWARE_REGISTRY: Registry = Registry("oracle middleware")
#: Property suites (``tcp``, ``quic``, ``http2``, ``toy``, plug-ins),
#: keyed by SUL target name or family stem.
PROPERTY_REGISTRY: Registry = Registry("property suite")


class RegistryFactory:
    """A picklable SUL factory: a registry key plus construction params.

    ``lambda: factory(**params)`` closures cannot cross a process
    boundary under the ``spawn`` start method, and several built-in
    targets (the QUIC family) are themselves registered as closures.
    This factory ships only ``(target, params)`` and resolves the
    registry *inside* the worker process, so any registered target works
    with the ``process`` executor backend.
    """

    def __init__(self, target: str, params: Mapping | None = None) -> None:
        self.target = target
        self.params = dict(params or {})

    def __call__(self):
        load_builtins()
        factory = SUL_REGISTRY.get(self.target)
        return factory(**self.params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegistryFactory({self.target!r}, {self.params!r})"


def register_properties(name: str) -> Callable:
    """Register a property-suite factory under ``name`` (decorator form).

    The factory takes no arguments and returns a sequence of
    :class:`~repro.analysis.property_api.Property`.  Keys follow SUL
    target naming: an exact target key (``http2-buggy``) wins over the
    family stem (``http2``), so a whole family usually shares one suite
    registered under the stem::

        @register_properties("quic")
        def quic_properties() -> tuple[Property, ...]: ...
    """
    return PROPERTY_REGISTRY.register(name)


def resolve_property_suite(target: str):
    """The property suite for a SUL target, or ``None`` when unregistered.

    Resolution tries the exact target key first, then the
    ``-``-separated family stem -- the same stem grouping
    :meth:`Registry.families` uses, so ``quic-google`` finds the suite
    registered as ``quic``.
    """
    load_builtins()
    if target in PROPERTY_REGISTRY:
        return tuple(PROPERTY_REGISTRY.create(target))
    stem = target.split("-", 1)[0]
    if stem in PROPERTY_REGISTRY:
        return tuple(PROPERTY_REGISTRY.create(stem))
    return None


def attacks_for(target: str) -> tuple[str, ...]:
    """Attacker-automaton keys applicable to a SUL target, in key order.

    Applicability matches the exact target key or its ``-``-separated
    family stem (the :meth:`Registry.families` grouping), so ``tcp`` and
    ``tcp-no-challenge-ack`` both find the TCP adversaries.  Returns an
    empty tuple -- not an error -- for targets no adversary speaks.
    """
    load_builtins()
    from .attack.automata import ATTACK_REGISTRY

    return tuple(
        name
        for name in ATTACK_REGISTRY.names()
        if ATTACK_REGISTRY.create(name).applicable_to(target)
    )


def resolve_targets(
    names: Sequence[str],
    exact: bool = False,
    allow_unknown: bool = False,
) -> tuple[str, ...]:
    """Expand target/family names into concrete SUL target keys.

    The public form of the resolution rule the CLI commands share
    (``properties``, ``difftest``, ``ci``):

    * an exact registered key (``http2-buggy``) resolves to itself;
    * a family stem with multiple members (``quic``) expands to all of
      them -- unless the stem is *also* a registered target (``http2``,
      ``tcp``) and appears alongside other names, in which case the
      bare target wins (as the sole argument it still expands, which is
      what ``repro difftest http2`` relies on);
    * ``exact=True`` suppresses expansion entirely;
    * duplicates arising from overlap (``quic quic-google``) collapse,
      preserving first-mention order.

    Unknown names raise :class:`RegistryError` listing every registered
    target and family, or pass through verbatim with
    ``allow_unknown=True`` (the CLI uses that to fall back to spec-file
    paths).
    """
    load_builtins()
    families = SUL_REGISTRY.families()
    expanded: list[str] = []
    for name in names:
        is_family = len(families.get(name, ())) > 1
        expand = (
            not exact
            and is_family
            and (name not in SUL_REGISTRY or len(names) == 1)
        )
        if expand:
            expanded.extend(families[name])
        else:
            expanded.append(name)
    resolved = tuple(dict.fromkeys(expanded))
    if not allow_unknown:
        for name in resolved:
            if name not in SUL_REGISTRY:
                known = ", ".join(
                    sorted(set(families) | set(SUL_REGISTRY.names()))
                )
                raise RegistryError(
                    f"unknown SUL target {name!r} (not a registered "
                    f"target or family); known: {known}"
                )
    return resolved


def supported_kwargs(
    factory: Callable, params: Mapping[str, object]
) -> dict[str, object]:
    """The subset of ``params`` that ``factory``'s signature accepts.

    Used to inject spec-level defaults (``batch_size``, ``seed``) into
    component factories without requiring every factory to declare them;
    a factory taking ``**kwargs`` receives everything.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable sigs
        return dict(params)
    accepts_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    )
    if accepts_kwargs:
        return dict(params)
    names = {
        name
        for name, p in signature.parameters.items()
        if p.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    return {key: value for key, value in params.items() if key in names}


_BUILTINS_LOADED = False


def load_builtins() -> None:
    """Import every module that registers built-in components.

    Idempotent and cheap after the first call; spec/campaign/CLI entry
    points call it so registry lookups always see the built-ins.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Flag only flips once every import succeeded; a failed import leaves
    # it unset so the next call retries (and re-raises the real error)
    # instead of silently no-op'ing over half-populated registries.
    from .adapter import (  # noqa: F401
        h3_adapter,
        http2_adapter,
        mealy_sul,
        quic_adapter,
        remote,
        tcp_adapter,
    )
    from .analysis import (  # noqa: F401
        h3_properties,
        http2_properties,
        quic_properties,
        tcp_properties,
        toy_properties,
    )
    from .attack import automata as attack_automata  # noqa: F401
    from .learn import bulk, cache, equivalence, lstar, nondeterminism, ttt  # noqa: F401
    from .store import middleware as store_middleware  # noqa: F401

    _BUILTINS_LOADED = True

"""Prognosis: closed-box learning and analysis of protocol implementations.

A reproduction of "Prognosis: Closed-Box Analysis of Network Protocol
Implementations" (Ferreira, Brewton, D'Antoni, Silva -- SIGCOMM 2021).

Quickstart::

    from repro import Prognosis
    from repro.adapter.tcp_adapter import TCPAdapterSUL

    prognosis = Prognosis(TCPAdapterSUL())
    report = prognosis.learn()
    print(report.summary())          # 6 states, 42 transitions
    print(report.model.to_dot())     # appendix-style GraphViz rendering
"""

from .adapter.pool import SULPool
from .framework import LearningReport, Prognosis

__version__ = "1.1.0"

__all__ = ["LearningReport", "Prognosis", "SULPool", "__version__"]

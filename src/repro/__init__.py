"""Prognosis: closed-box learning and analysis of protocol implementations.

A reproduction of "Prognosis: Closed-Box Analysis of Network Protocol
Implementations" (Ferreira, Brewton, D'Antoni, Silva -- SIGCOMM 2021).

Quickstart::

    from repro import Prognosis
    from repro.adapter.tcp_adapter import TCPAdapterSUL

    with Prognosis(TCPAdapterSUL()) as prognosis:
        report = prognosis.learn()
    print(report.summary())          # 6 states, 42 transitions
    print(report.model.to_dot())     # appendix-style GraphViz rendering

Declarative (serializable specs, registry-resolved components)::

    from repro import Campaign, ExperimentSpec

    report = Prognosis.from_spec(ExperimentSpec(target="tcp")).learn()
    results = Campaign.grid(
        targets=("tcp", "quic-google"), learners=("ttt", "lstar")
    ).run()
"""

from .adapter.pool import SULPool
from .campaign import Campaign, RunResult, run_spec
from .framework import LearningReport, Prognosis
from .registry import (
    EQ_ORACLE_REGISTRY,
    LEARNER_REGISTRY,
    MIDDLEWARE_REGISTRY,
    SUL_REGISTRY,
    Registry,
    load_builtins,
)
from .spec import ComponentSpec, ExperimentSpec, SpecError

__version__ = "1.2.0"

__all__ = [
    "Campaign",
    "ComponentSpec",
    "EQ_ORACLE_REGISTRY",
    "ExperimentSpec",
    "LEARNER_REGISTRY",
    "LearningReport",
    "MIDDLEWARE_REGISTRY",
    "Prognosis",
    "Registry",
    "RunResult",
    "SpecError",
    "SUL_REGISTRY",
    "SULPool",
    "load_builtins",
    "run_spec",
    "__version__",
]

"""Strategy synthesis: Dijkstra over learned-model x attacker products.

The offline half of attack synthesis.  Given a learned
:class:`~repro.core.mealy.MealyMachine` and an
:class:`~repro.attack.automata.AttackerAutomaton`, explore the product
of the two transition systems -- the same pairwise product walk
:func:`repro.analysis.equivalence.find_difference` uses, upgraded from
BFS to Dijkstra so capability costs weight the search -- for the
cheapest input word that drives the attacker into a goal state.  An
optional *objective* (an LTLf formula from :mod:`repro.analysis.ltl`)
further filters goal paths: the predicted I/O trace must VIOLATE the
formula, tying synthesized strategies to the Property API's notion of
"something went wrong".

The result is an :class:`AttackStrategy`: the input word, the
per-step outputs the model predicts, the path cost, and a
ddmin-minimized witness (via
:func:`repro.analysis.difftest.minimize_witness`) that is a
*subsequence* of the shortest goal path -- so the minimized witness is
never longer than the product search's own optimum.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field

from ..analysis.difftest import minimize_witness
from ..analysis.ltl import Formula
from ..core.mealy import MealyMachine
from ..core.trace import IOTrace, Word, render_word
from ..core.alphabet import deserialize_symbol, serialize_symbol
from .automata import AttackerAutomaton


@dataclass(frozen=True)
class AttackStrategy:
    """A synthesized attack: inputs, predicted outputs, cost, provenance."""

    attacker: str
    target: str
    word: Word
    expected_outputs: Word
    cost: float
    goal: str
    states_expanded: int
    minimized: Word
    objective: str | None = None
    notes: tuple[str, ...] = field(default=())

    @property
    def trace(self) -> IOTrace:
        return IOTrace(self.word, self.expected_outputs)

    def to_dict(self) -> dict:
        return {
            "attacker": self.attacker,
            "target": self.target,
            "word": [serialize_symbol(s) for s in self.word],
            "expected_outputs": [serialize_symbol(s) for s in self.expected_outputs],
            "cost": self.cost,
            "goal": self.goal,
            "states_expanded": self.states_expanded,
            "minimized": [serialize_symbol(s) for s in self.minimized],
            "objective": self.objective,
            "notes": list(self.notes),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "AttackStrategy":
        return cls(
            attacker=data["attacker"],
            target=data["target"],
            word=tuple(deserialize_symbol(s) for s in data["word"]),
            expected_outputs=tuple(
                deserialize_symbol(s) for s in data["expected_outputs"]
            ),
            cost=data["cost"],
            goal=data["goal"],
            states_expanded=data["states_expanded"],
            minimized=tuple(deserialize_symbol(s) for s in data["minimized"]),
            objective=data.get("objective"),
            notes=tuple(data.get("notes", ())),
        )

    def render(self) -> str:
        lines = [
            f"attack {self.attacker} vs {self.target}: goal {self.goal!r} "
            f"reachable (cost {self.cost:g}, "
            f"{self.states_expanded} product states expanded)",
            f"  strategy: {render_word(self.word)}",
            f"  expects:  {render_word(self.expected_outputs)}",
            f"  witness:  {render_word(self.minimized)} "
            f"({len(self.minimized)}/{len(self.word)} steps)",
        ]
        if self.objective:
            lines.append(f"  objective: violates {self.objective!r}")
        return "\n".join(lines)


def _objective_violated(objective: Formula | None, trace: IOTrace) -> bool:
    """An objective filters goal paths: the trace must VIOLATE it."""
    return objective is None or not objective.holds(trace)


def synthesize_attack(
    model: MealyMachine,
    attacker: AttackerAutomaton,
    *,
    objective: Formula | None = None,
    objective_text: str | None = None,
    minimize: bool = True,
    max_expansions: int = 100_000,
) -> AttackStrategy | None:
    """Search the model x attacker product for a cheapest goal path.

    Returns ``None`` -- never raises -- when no goal is reachable: an
    empty input alphabet, an attacker move whose symbol the model does
    not speak, or a model whose behaviour prunes every line of attack
    (the conformant-variant "no false attack" case) all land here.

    Dijkstra over pairs ``(model_state, attacker_state)`` with
    per-move costs; heap entries carry an insertion counter so ties
    break deterministically and the same model + attacker always yields
    the same strategy.  When ``objective`` is given, a popped goal node
    only counts if the predicted trace violates the formula; otherwise
    the search keeps relaxing (a later, costlier goal path may violate).
    """
    by_label = {str(symbol): symbol for symbol in model.input_alphabet}

    start = (model.initial_state, attacker.initial)
    # parents: product node -> (previous node, input symbol, output symbol)
    parents: dict[tuple, tuple] = {start: (None, None, None)}
    best: dict[tuple, float] = {start: 0.0}
    counter = 0
    heap: list[tuple[float, int, tuple]] = [(0.0, counter, start)]
    expanded = 0

    def reconstruct(node: tuple) -> tuple[Word, Word]:
        word: list = []
        outputs: list = []
        while True:
            prev, symbol, output = parents[node]
            if prev is None:
                break
            word.append(symbol)
            outputs.append(output)
            node = prev
        return tuple(reversed(word)), tuple(reversed(outputs))

    while heap and expanded < max_expansions:
        cost, _, node = heapq.heappop(heap)
        if cost > best.get(node, float("inf")):
            continue
        expanded += 1
        model_state, attacker_state = node
        if attacker.is_goal(attacker_state):
            word, outputs = reconstruct(node)
            if not _objective_violated(objective, IOTrace(word, outputs)):
                continue
            minimized = word
            if minimize and word:
                minimized = _minimize(model, attacker, objective, word)
            return AttackStrategy(
                attacker=attacker.name,
                target=model.name,
                word=word,
                expected_outputs=outputs,
                cost=cost,
                goal=attacker_state,
                states_expanded=expanded,
                minimized=minimized,
                objective=objective_text,
            )
        for move in attacker.enabled(attacker_state):
            symbol = by_label.get(move.symbol)
            if symbol is None:
                continue
            next_model, output = model.step(model_state, symbol)
            next_attacker = attacker.outcome(move, str(output))
            if next_attacker is None:
                continue
            next_node = (next_model, next_attacker)
            next_cost = cost + move.cost
            if next_cost < best.get(next_node, float("inf")):
                best[next_node] = next_cost
                parents[next_node] = (node, symbol, output)
                counter += 1
                heapq.heappush(heap, (next_cost, counter, next_node))
    return None


def _minimize(
    model: MealyMachine,
    attacker: AttackerAutomaton,
    objective: Formula | None,
    word: Word,
) -> Word:
    """ddmin the goal word against the model's own predictions.

    The predicate replays a candidate subsequence through the *model*
    and asks the attacker's lenient observer whether the predicted trace
    still reaches a goal (and still violates the objective).  The result
    is a subsequence of ``word``, hence never longer than the product
    search's shortest path.
    """

    def reaches(candidate: Word) -> bool:
        trace = IOTrace(candidate, model.run(candidate))
        return attacker.observe(trace) and _objective_violated(objective, trace)

    return minimize_witness(word, reaches)

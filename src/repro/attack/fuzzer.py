"""Model-guided frontier fuzzing: mutate where the model knows least.

The second half of the attack-synthesis loop ("A Survey of Protocol
Fuzzing"): instead of mutating blindly, walk the *learned model* to a
frontier state -- a deep state far from the initial state, or a state a
partial (passively learned) machine has undetermined cells at -- and
mutate from there with short random suffixes.  Every input word is
generated up front from a seeded RNG with **zero** SUL interaction
during generation, so a fixed seed yields the identical word set (and
identical divergences) no matter which executor backend replays it --
the serial == thread == process guarantee the rest of the codebase
keeps.

Divergences -- live outputs that contradict the model's prediction --
are the fuzzer's product: each one is a membership query the learner
never asked, and :mod:`repro.attack.replay` feeds them back into the
confirmed-attack JSONL corpus so passive learning absorbs them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.mealy import MealyMachine
from ..core.trace import IOTrace, Word, render_word
from ..learn.passive import PartialMealyMachine


@dataclass(frozen=True)
class FuzzDivergence:
    """One input word where the live SUL contradicted the model."""

    word: Word
    expected: Word
    observed: Word

    @property
    def trace(self) -> IOTrace:
        return IOTrace(self.word, self.observed)

    def to_dict(self) -> dict:
        return {
            "word": [str(s) for s in self.word],
            "expected": [str(s) for s in self.expected],
            "observed": [str(s) for s in self.observed],
        }

    def render(self) -> str:
        return (
            f"{render_word(self.word)}: model predicted "
            f"{render_word(self.expected)}, live answered "
            f"{render_word(self.observed)}"
        )


@dataclass
class FuzzReport:
    """A fuzzing campaign's budget accounting and findings."""

    seed: int
    budget: int
    words_sent: int
    frontier_prefixes: int
    divergences: list[FuzzDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No divergences: the model survived the frontier barrage."""
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "words_sent": self.words_sent,
            "frontier_prefixes": self.frontier_prefixes,
            "divergences": [d.to_dict() for d in self.divergences],
        }

    def render(self) -> str:
        lines = [
            f"fuzz: {self.words_sent}/{self.budget} words from "
            f"{self.frontier_prefixes} frontier prefixes (seed {self.seed}): "
            f"{len(self.divergences)} divergences"
        ]
        lines.extend(f"  {d.render()}" for d in self.divergences)
        return "\n".join(lines)


def _frontier_prefixes(
    model: MealyMachine, partial: PartialMealyMachine | None
) -> list[Word]:
    """Access words of frontier states, deepest (least explored) first.

    Deep model states get priority -- the learner's equivalence queries
    concentrate near the root, so the frontier is where residual
    model/SUL disagreement hides.  A partial machine's undetermined
    cells are even better targets: the passive data said nothing about
    them, so their access words are appended (deduplicated) too.
    """
    access = model.access_sequences()
    prefixes = sorted(
        access.values(), key=lambda word: (-len(word), render_word(word))
    )
    if partial is not None:
        partial_access = partial.access_words()
        for state, _symbol in partial.undetermined_cells():
            word = partial_access.get(state)
            if word is not None and word not in prefixes:
                prefixes.append(word)
    return prefixes


def fuzz_frontier(
    model: MealyMachine,
    oracle,
    *,
    budget: int = 200,
    seed: int = 0,
    max_suffix: int = 4,
    partial: PartialMealyMachine | None = None,
) -> FuzzReport:
    """Fuzz the live SUL at the model's frontier states.

    Generates up to ``budget`` distinct words (frontier access word +
    random suffix of 1..``max_suffix`` alphabet symbols, seeded RNG,
    round-robin over prefixes), replays them in one ``query_batch``
    through whatever executor backs ``oracle``, and reports every word
    whose live outputs contradict ``model.run``.
    """
    alphabet = sorted(model.input_alphabet, key=str)
    prefixes = _frontier_prefixes(model, partial)
    if not alphabet or not prefixes or budget <= 0:
        return FuzzReport(
            seed=seed,
            budget=budget,
            words_sent=0,
            frontier_prefixes=len(prefixes),
        )

    rng = random.Random(seed)
    words: list[Word] = []
    seen: set[Word] = set()
    # Generation is pure (model + RNG only): the word set is fixed before
    # the SUL sees anything, which is what keeps executors identical.
    attempts = 0
    while len(words) < budget and attempts < budget * 10:
        attempts += 1
        prefix = prefixes[attempts % len(prefixes)]
        suffix = tuple(
            rng.choice(alphabet)
            for _ in range(rng.randint(1, max_suffix))
        )
        word = tuple(prefix) + suffix
        if word in seen:
            continue
        seen.add(word)
        words.append(word)

    answers = oracle.query_batch([list(word) for word in words])
    divergences = [
        FuzzDivergence(word=word, expected=model.run(word), observed=tuple(live))
        for word, live in zip(words, answers)
        if tuple(live) != model.run(word)
    ]
    return FuzzReport(
        seed=seed,
        budget=budget,
        words_sent=len(words),
        frontier_prefixes=len(prefixes),
        divergences=divergences,
    )

"""Live-SUL replay: confirm synthesized attacks against the real system.

The online half of attack synthesis.  Strategies from
:func:`repro.attack.search.synthesize_attack` are predictions made from
a *learned* model; this module replays them through the live SUL (via
whatever membership oracle the executor stack assembled -- serial,
thread- or process-pooled, batched for candidate sets) and classifies
each:

* ``CONFIRMED`` -- the live trace drives the attacker into its goal
  (and still violates the objective, when one is set): the attack is
  real.
* ``REFUTED`` -- the live system answered exactly as the model
  predicted, yet the goal/objective did not hold on the live run.  Only
  reachable with replay-time objectives (oracle-kind predicates over
  the Oracle Table) that the offline search could not evaluate.
* ``DIVERGED`` -- the live outputs differ from the model's prediction
  and the goal was missed: the model has drifted.  The divergence is
  surfaced as a :class:`~repro.analysis.diff.ModelDiff` against a
  freshly learned model when a spec is available.

Confirmed attacks are written as JSONL corpora via
:func:`repro.learn.bulk.write_jsonl_corpus` (index-sorted, so replay
order is deterministic) and seed future passive learning; fuzzer
divergences ride along in the same corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..analysis.diff import ModelDiff, diff_models
from ..analysis.ltl import Formula, parse_ltl
from ..analysis.property_api import Property
from ..core.mealy import MealyMachine
from ..core.oracle_table import OracleTable
from ..core.trace import IOTrace, render_word
from ..registry import attacks_for
from .automata import AttackerAutomaton, resolve_attacker
from .fuzzer import FuzzReport, fuzz_frontier
from .search import AttackStrategy, synthesize_attack

VERDICT_CONFIRMED = "CONFIRMED"
VERDICT_REFUTED = "REFUTED"
VERDICT_DIVERGED = "DIVERGED"


@dataclass
class ReplayResult:
    """One strategy's fate against the live SUL."""

    strategy: AttackStrategy
    verdict: str
    live_outputs: tuple
    goal_reached: bool
    output_match: bool
    minimized_confirmed: bool = False
    model_diff: ModelDiff | None = None

    @property
    def live_trace(self) -> IOTrace:
        return IOTrace(self.strategy.word, self.live_outputs)

    def to_dict(self) -> dict:
        data = {
            "strategy": self.strategy.to_dict(),
            "verdict": self.verdict,
            "live_outputs": [str(s) for s in self.live_outputs],
            "goal_reached": self.goal_reached,
            "output_match": self.output_match,
            "minimized_confirmed": self.minimized_confirmed,
        }
        if self.model_diff is not None:
            data["model_diff"] = self.model_diff.to_dict()
        return data

    def render(self) -> str:
        lines = [self.strategy.render(), f"  verdict:  {self.verdict}"]
        if self.verdict != VERDICT_CONFIRMED:
            lines.append(f"  live:     {render_word(self.live_outputs)}")
        if self.model_diff is not None:
            lines.append("  model drift:")
            for line in self.model_diff.render().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)


def _objective_parts(
    objective: Formula | Property | str | None,
) -> tuple[Formula | None, Property | None, str | None]:
    """Split an objective into its offline formula / replay-time halves."""
    if objective is None:
        return None, None, None
    if isinstance(objective, str):
        return parse_ltl(objective), None, objective
    if isinstance(objective, Formula):
        return objective, None, None
    # A Property: ltlf kinds search offline; oracle kinds can only be
    # judged at replay time, against the live run's Oracle Table.
    if objective.kind == "ltlf":
        return parse_ltl(objective.formula), None, objective.formula
    if objective.kind == "oracle":
        return None, objective, objective.name
    raise ValueError(
        f"objective property {objective.name!r} has kind {objective.kind!r}; "
        "only 'ltlf' and 'oracle' objectives are supported"
    )


def _goal_on_live(
    attacker: AttackerAutomaton,
    formula: Formula | None,
    oracle_prop: Property | None,
    oracle_table: OracleTable | None,
    trace: IOTrace,
) -> bool:
    if not attacker.observe(trace):
        return False
    if formula is not None and formula.holds(trace):
        return False
    if oracle_prop is not None:
        if oracle_table is None:
            return False
        if not list(oracle_prop.oracle_check(oracle_table)):
            return False
    return True


def replay_strategies(
    strategies: Sequence[tuple[AttackerAutomaton, AttackStrategy]],
    oracle,
    *,
    objective: Formula | Property | str | None = None,
    oracle_table: OracleTable | None = None,
) -> list[ReplayResult]:
    """Replay synthesized strategies against the live SUL, batched.

    Full words and their minimized witnesses go through one
    ``query_batch`` call so pooled executors overlap the replays.
    """
    formula, oracle_prop, _ = _objective_parts(objective)
    words = []
    for _, strategy in strategies:
        words.append(list(strategy.word))
        words.append(list(strategy.minimized))
    if not words:
        return []
    answers = oracle.query_batch(words)
    results = []
    for index, (attacker, strategy) in enumerate(strategies):
        live = tuple(answers[2 * index])
        live_min = tuple(answers[2 * index + 1])
        live_trace = IOTrace(strategy.word, live)
        goal = _goal_on_live(
            attacker, formula, oracle_prop, oracle_table, live_trace
        )
        minimized_goal = _goal_on_live(
            attacker,
            formula,
            oracle_prop,
            oracle_table,
            IOTrace(strategy.minimized, live_min),
        )
        match = live == strategy.expected_outputs
        if goal:
            verdict = VERDICT_CONFIRMED
        elif match:
            verdict = VERDICT_REFUTED
        else:
            verdict = VERDICT_DIVERGED
        results.append(
            ReplayResult(
                strategy=strategy,
                verdict=verdict,
                live_outputs=live,
                goal_reached=goal,
                output_match=match,
                minimized_confirmed=minimized_goal,
            )
        )
    return results


@dataclass
class AttackReport:
    """Everything one attack run produced, JSON-able for artifacts."""

    target: str
    results: list[ReplayResult] = field(default_factory=list)
    unreachable: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    states_expanded: int = 0
    fuzz: FuzzReport | None = None
    corpus_path: str | None = None

    @property
    def confirmed(self) -> list[ReplayResult]:
        return [r for r in self.results if r.verdict == VERDICT_CONFIRMED]

    @property
    def ok(self) -> bool:
        """No refuted strategies and no model drift (unreachable is fine)."""
        return all(r.verdict == VERDICT_CONFIRMED for r in self.results)

    def summary(self) -> str:
        bits = [f"{len(self.confirmed)} confirmed"]
        refuted = sum(1 for r in self.results if r.verdict == VERDICT_REFUTED)
        diverged = sum(1 for r in self.results if r.verdict == VERDICT_DIVERGED)
        if refuted:
            bits.append(f"{refuted} refuted")
        if diverged:
            bits.append(f"{diverged} diverged")
        if self.unreachable:
            bits.append(f"{len(self.unreachable)} unreachable")
        if self.fuzz is not None:
            bits.append(
                f"fuzz {len(self.fuzz.divergences)} divergences"
                f"/{self.fuzz.words_sent} words"
            )
        return f"attack {self.target}: " + ", ".join(bits)

    def render(self) -> str:
        lines = [self.summary()]
        for result in self.results:
            lines.extend("  " + line for line in result.render().splitlines())
        for name in self.unreachable:
            lines.append(
                f"  attack {name} vs {self.target}: goal unreachable "
                "(no false attack)"
            )
        if self.fuzz is not None:
            lines.extend("  " + line for line in self.fuzz.render().splitlines())
        if self.corpus_path:
            lines.append(f"  corpus: {self.corpus_path}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "ok": self.ok,
            "results": [r.to_dict() for r in self.results],
            "unreachable": list(self.unreachable),
            "skipped": list(self.skipped),
            "states_expanded": self.states_expanded,
            "fuzz": self.fuzz.to_dict() if self.fuzz is not None else None,
            "corpus_path": self.corpus_path,
        }


def _fresh_model(spec) -> MealyMachine | None:
    """Relearn the target from scratch to explain a divergence."""
    from ..framework import Prognosis

    try:
        clean = spec.clone(
            middleware=["cache"], executor={"kind": "serial"}, store=None
        )
        with Prognosis.from_spec(clean) as prognosis:
            return prognosis.learn().model
    except Exception:
        return None


def run_attacks(
    spec,
    model: MealyMachine,
    oracle,
    *,
    oracle_table: OracleTable | None = None,
    objective: Formula | Property | str | None = None,
    corpus_out: str | Path | None = None,
    explain_divergence: bool = True,
) -> AttackReport:
    """Synthesize, replay and report every applicable attack on a target.

    The attacker set comes from ``spec.attack.attacker`` when pinned, or
    :func:`repro.registry.attacks_for` on the spec's target otherwise;
    automata that do not speak the target's alphabet are recorded as
    ``skipped``.  Confirmed live traces (plus fuzz divergences) become
    an index-sorted JSONL corpus for future passive learning.
    """
    from ..learn.bulk import write_jsonl_corpus

    attack_spec = spec.attack
    report = AttackReport(target=spec.target)

    if objective is None and attack_spec is not None and attack_spec.objective:
        objective = attack_spec.objective
    formula, _, objective_text = _objective_parts(objective)

    if attack_spec is not None and attack_spec.attacker:
        names = [attack_spec.attacker]
    else:
        names = attacks_for(spec.target)

    synthesized: list[tuple[AttackerAutomaton, AttackStrategy]] = []
    for name in names:
        attacker = resolve_attacker(name)
        if not attacker.applicable_to(spec.target):
            report.skipped.append(name)
            continue
        strategy = synthesize_attack(
            model, attacker, objective=formula, objective_text=objective_text
        )
        if strategy is None:
            report.unreachable.append(name)
            continue
        report.states_expanded += strategy.states_expanded
        synthesized.append((attacker, strategy))

    report.results = replay_strategies(
        synthesized, oracle, objective=objective, oracle_table=oracle_table
    )

    if explain_divergence and any(
        r.verdict == VERDICT_DIVERGED for r in report.results
    ):
        fresh = _fresh_model(spec)
        if fresh is not None:
            drift = diff_models(model, fresh)
            for result in report.results:
                if result.verdict == VERDICT_DIVERGED:
                    result.model_diff = drift

    if attack_spec is not None and attack_spec.fuzz:
        report.fuzz = fuzz_frontier(
            model,
            oracle,
            budget=attack_spec.budget,
            seed=spec.seed,
            max_suffix=attack_spec.max_suffix,
        )

    corpus_out = corpus_out or (
        attack_spec.corpus_out if attack_spec is not None else None
    )
    if corpus_out:
        entries: list[tuple[int, IOTrace]] = []
        for result in report.confirmed:
            entries.append((len(entries), result.live_trace))
        if report.fuzz is not None:
            for divergence in report.fuzz.divergences:
                entries.append(
                    (len(entries), IOTrace(divergence.word, divergence.observed))
                )
        if entries:
            path = Path(corpus_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            write_jsonl_corpus(path, entries)
            report.corpus_path = str(path)
    return report

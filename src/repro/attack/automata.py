"""Attacker automata: capability-guarded adversary models over SUL alphabets.

Closing the loop from *analysis* to *adversary* (ROADMAP: model-guided
attack synthesis, in the spirit of "Verification and Attack Synthesis
for Network Protocols" [von Hippel 2025] and the black-box attack search
of Sosnovich et al.): an :class:`AttackerAutomaton` is a small labelled
transition system describing what an adversary *can do* -- each
:class:`Move` injects one input symbol of the SUL's abstract alphabet,
is guarded by a named capability (off-path injection, plain client
traffic, ...), and branches on the output the system answers with.  A
set of goal states encodes the attack objective ("the connection died",
"the server went silent mid-drain").

The automaton is deliberately *not* a Mealy machine: it is partial
(moves exist only where the adversary model grants them), its outcome
branching is pattern-based (exact output label, ``~substring``, or the
``*`` wildcard), and its goal states make it a reachability problem --
:mod:`repro.attack.search` explores the product of a learned model and
an attacker automaton for the cheapest input word that drives the
attacker into a goal state.

Built-in adversaries live in the string-keyed :data:`ATTACK_REGISTRY`
(same :class:`~repro.registry.Registry` machinery as SUL targets, so
unknown keys raise :class:`~repro.registry.RegistryError` listing what
*is* registered):

* ``off-path-rst`` -- classic off-path RST injection tearing down an
  established TCP connection (the post-RST data probe draws silence);
* ``challenge-ack-exhaust`` -- drain the challenge-ACK credit of the
  paper's rate-limited TCP model until in-window SYNs go silent (the
  CVE-2016-5696-style observable side channel);
* ``rapid-reset`` -- HTTP/2 rapid-reset-style stream churn: complete a
  request, then RST_STREAM the closed stream; the ``http2-buggy``
  RST-on-closed quirk escalates it to a connection-killing GOAWAY;
* ``goaway-drain`` -- HTTP/3 GOAWAY-drain abuse: a request issued
  mid-drain must be cleanly rejected, but ``http3-buggy``'s
  ``goaway_teardown_bug`` hard-closes and answers with dead silence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.trace import IOTrace
from ..registry import Registry

#: Matches any observed output label in a move's outcome table.
WILDCARD = "*"

#: Attacker-automaton factories, keyed like SUL targets.
ATTACK_REGISTRY: Registry = Registry("attacker automaton")


def match_output(pattern: str, label: str) -> bool:
    """Outcome-pattern matching: ``*`` any, ``~frag`` substring, else exact."""
    if pattern == WILDCARD:
        return True
    if pattern.startswith("~"):
        return pattern[1:] in label
    return pattern == label


@dataclass(frozen=True)
class Move:
    """One capability-guarded attacker action: inject ``symbol``, observe.

    ``outcomes`` maps observed-output patterns (tried in order; see
    :func:`match_output`) to successor attacker states; a ``None``
    successor prunes the branch -- the observation proves this line of
    attack dead.  An output matching *no* pattern also prunes.  ``cost``
    weights the move for Dijkstra search (expensive capabilities can be
    made dearer than plain client traffic).
    """

    source: str
    symbol: str
    outcomes: tuple[tuple[str, str | None], ...]
    capability: str = "client"
    cost: float = 1.0


@dataclass(frozen=True)
class AttackerAutomaton:
    """A capability-guarded adversary over a SUL's abstract input alphabet.

    ``capabilities`` is the set the adversary model *grants*; moves
    requiring anything else are disabled, so the same automaton text can
    be re-instantiated with a weaker attacker.  ``targets`` lists the
    SUL target keys (or family stems) the alphabet labels refer to.
    """

    name: str
    description: str
    initial: str
    moves: tuple[Move, ...]
    goals: frozenset[str]
    capabilities: frozenset[str]
    targets: tuple[str, ...]

    def enabled(self, state: str) -> tuple[Move, ...]:
        """The moves the granted capabilities allow from ``state``."""
        return tuple(
            move
            for move in self.moves
            if move.source == state and move.capability in self.capabilities
        )

    def outcome(self, move: Move, output_label: str) -> str | None:
        """The successor state for an observed output (None = pruned)."""
        for pattern, successor in move.outcomes:
            if match_output(pattern, output_label):
                return successor
        return None

    def is_goal(self, state: str) -> bool:
        return state in self.goals

    def applicable_to(self, target: str) -> bool:
        """True when this adversary speaks ``target``'s alphabet.

        Matches the exact target key or its ``-``-separated family stem,
        mirroring :func:`repro.registry.resolve_property_suite`.
        """
        return target in self.targets or target.split("-", 1)[0] in self.targets

    def observe(self, trace: IOTrace) -> bool:
        """Lenient trace observer: did this I/O trace reach a goal?

        Used to *classify* traces (live replays, ddmin candidates) rather
        than to search: steps with no matching enabled move leave the
        attacker state unchanged instead of pruning, and a goal once
        reached is sticky.  Every strict search path therefore also
        observes as a goal trace, but arbitrary subsequences can too --
        which is exactly what witness minimization needs.
        """
        state = self.initial
        for symbol, output in trace:
            if self.is_goal(state):
                return True
            for move in self.enabled(state):
                if move.symbol != str(symbol):
                    continue
                successor = self.outcome(move, str(output))
                if successor is not None:
                    state = successor
                break
        return self.is_goal(state)


def resolve_attacker(name: str) -> AttackerAutomaton:
    """Instantiate a registered attacker automaton by key.

    Unknown names raise :class:`~repro.registry.RegistryError` listing
    the registered keys, like every other component registry.
    """
    return ATTACK_REGISTRY.create(name)


# ---------------------------------------------------------------------------
# Built-in adversaries
# ---------------------------------------------------------------------------

@ATTACK_REGISTRY.register("off-path-rst")
def off_path_rst() -> AttackerAutomaton:
    """Off-path RST injection killing an established TCP connection.

    Establish (as, or alongside, the legitimate client), inject a single
    RST, then prove the teardown: an in-window data segment that would
    draw an ACK from ESTABLISHED draws silence from the dead socket.
    """
    moves = (
        Move(
            "start",
            "SYN(?,?,0)",
            outcomes=(("~SYN", "syn-sent"), (WILDCARD, None)),
        ),
        Move("syn-sent", "ACK(?,?,0)", outcomes=((WILDCARD, "established"),)),
        Move(
            "established",
            "RST(?,?,0)",
            outcomes=((WILDCARD, "torn"),),
            capability="off-path-inject",
        ),
        Move(
            "torn",
            "ACK+PSH(?,?,1)",
            outcomes=(("NIL", "confirmed"), (WILDCARD, None)),
        ),
    )
    return AttackerAutomaton(
        name="off-path-rst",
        description="off-path RST injection tears down an established "
        "connection (post-RST data probe draws silence)",
        initial="start",
        moves=moves,
        goals=frozenset({"confirmed"}),
        capabilities=frozenset({"client", "off-path-inject"}),
        targets=("tcp",),
    )


@ATTACK_REGISTRY.register("challenge-ack-exhaust")
def challenge_ack_exhaust() -> AttackerAutomaton:
    """Challenge-ACK credit exhaustion (the rate-limit side channel).

    In ESTABLISHED, an in-window SYN draws a challenge ACK; the paper's
    rate-limited model then drops the *next* one silently until data
    replenishes the credit.  Observing that silence is the goal: it is
    the globally observable side channel CVE-2016-5696 exploited.  The
    un-rate-limited ``tcp-no-challenge-ack`` variant answers every SYN,
    so the goal is unreachable there -- no false attack.
    """
    moves = (
        Move(
            "start",
            "SYN(?,?,0)",
            outcomes=(("~SYN", "syn-sent"), (WILDCARD, None)),
        ),
        Move("syn-sent", "ACK(?,?,0)", outcomes=((WILDCARD, "established"),)),
        Move(
            "established",
            "SYN(?,?,0)",
            outcomes=(("ACK(?,?,0)", "challenged"), (WILDCARD, None)),
            capability="off-path-inject",
        ),
        Move(
            "challenged",
            "SYN(?,?,0)",
            outcomes=(("NIL", "exhausted"), ("ACK(?,?,0)", "challenged")),
            capability="off-path-inject",
        ),
    )
    return AttackerAutomaton(
        name="challenge-ack-exhaust",
        description="drain the challenge-ACK credit until in-window SYNs "
        "go silent (the rate-limit side channel)",
        initial="start",
        moves=moves,
        goals=frozenset({"exhausted"}),
        capabilities=frozenset({"client", "off-path-inject"}),
        targets=("tcp",),
    )


@ATTACK_REGISTRY.register("rapid-reset")
def rapid_reset() -> AttackerAutomaton:
    """HTTP/2 rapid-reset-style stream churn against RST-on-closed.

    Complete a request (the stream closes), then RST_STREAM the closed
    stream.  A conformant peer ignores it (RFC 9113 section 5.1) and the
    churn loop continues; ``http2-buggy``'s ``rst_on_closed_bug``
    escalates it to a connection-killing GOAWAY -- the goal.
    """
    moves = (
        Move(
            "start",
            "SETTINGS[]",
            outcomes=(("~SETTINGS", "ready"), (WILDCARD, None)),
        ),
        Move(
            "ready",
            "HEADERS[END_HEADERS,END_STREAM]",
            outcomes=(("~HEADERS", "closed-stream"), (WILDCARD, None)),
        ),
        Move(
            "closed-stream",
            "RST_STREAM[]",
            outcomes=(("~GOAWAY", "torn-down"), ("NIL", "ready")),
        ),
    )
    return AttackerAutomaton(
        name="rapid-reset",
        description="request/RST churn on closed streams; the "
        "RST-on-closed quirk escalates to a connection-killing GOAWAY",
        initial="start",
        moves=moves,
        goals=frozenset({"torn-down"}),
        capabilities=frozenset({"client"}),
        targets=("http2",),
    )


@ATTACK_REGISTRY.register("goaway-drain")
def goaway_drain() -> AttackerAutomaton:
    """HTTP/3 GOAWAY-drain abuse against the hard-teardown quirk.

    Send GOAWAY, then a fresh request mid-drain.  A conformant server
    drains: the late request is cleanly reset.  ``http3-buggy``'s
    ``goaway_teardown_bug`` hard-closes instead and answers with dead
    silence (``{}``) -- the goal.
    """
    moves = (
        Move(
            "start",
            "SETTINGS",
            outcomes=(("~SETTINGS", "ready"), (WILDCARD, None)),
        ),
        Move("ready", "GOAWAY", outcomes=((WILDCARD, "draining"),)),
        Move(
            "draining",
            "HEADERS[FIN]",
            outcomes=(("{}", "silenced"), (WILDCARD, None)),
        ),
    )
    return AttackerAutomaton(
        name="goaway-drain",
        description="a request issued mid-drain must be cleanly "
        "rejected; the goaway_teardown_bug answers with dead silence",
        initial="start",
        moves=moves,
        goals=frozenset({"silenced"}),
        capabilities=frozenset({"client"}),
        targets=("http3",),
    )

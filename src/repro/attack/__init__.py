"""Model-guided attack synthesis: from learned models to confirmed attacks.

The subsystem closes the loop from *analysis* to *adversary*:

* :mod:`~repro.attack.automata` -- attacker automata (capability-guarded
  moves over the SUL alphabet, goal states) and the string-keyed
  :data:`~repro.attack.automata.ATTACK_REGISTRY` of built-ins;
* :mod:`~repro.attack.search` -- Dijkstra over the learned-model x
  attacker product, returning ddmin-minimized
  :class:`~repro.attack.search.AttackStrategy` objects;
* :mod:`~repro.attack.replay` -- live-SUL confirmation
  (CONFIRMED/REFUTED/DIVERGED) through the executor stack, JSONL corpus
  emission, and the :func:`~repro.attack.replay.run_attacks`
  orchestrator behind ``repro attack``;
* :mod:`~repro.attack.fuzzer` -- a deterministic model-guided fuzzer
  mutating at frontier states.
"""

from .automata import ATTACK_REGISTRY, AttackerAutomaton, Move, resolve_attacker
from .fuzzer import FuzzDivergence, FuzzReport, fuzz_frontier
from .replay import (
    VERDICT_CONFIRMED,
    VERDICT_DIVERGED,
    VERDICT_REFUTED,
    AttackReport,
    ReplayResult,
    replay_strategies,
    run_attacks,
)
from .search import AttackStrategy, synthesize_attack

__all__ = [
    "ATTACK_REGISTRY",
    "AttackReport",
    "AttackStrategy",
    "AttackerAutomaton",
    "FuzzDivergence",
    "FuzzReport",
    "Move",
    "ReplayResult",
    "VERDICT_CONFIRMED",
    "VERDICT_DIVERGED",
    "VERDICT_REFUTED",
    "fuzz_frontier",
    "replay_strategies",
    "resolve_attacker",
    "run_attacks",
    "synthesize_attack",
]

"""The HTTP/2 property suite (RFC 9113 framing rules).

The HTTP/2 counterpart of :mod:`repro.analysis.quic_properties`: RFC
-level rules packaged as :class:`~repro.analysis.property_api.Property`
checks and registered as the ``http2`` suite (covering ``http2`` and
``http2-buggy`` via the family stem).  The trace properties are the
response-framing and termination rules every conformant server satisfies
plus ``rst-after-response-tolerated``, the property that flags the
seeded :attr:`~repro.http2.server.HTTP2ServerConfig.rst_on_closed_bug`
quirk (section 5.1: RST_STREAM in the closed state MUST be ignored).

Stream-id monotonicity (section 5.1.1: a client's stream identifiers are
strictly increasing odd numbers) lives below the abstraction --
identifiers are ``?``-free in abstract symbols -- so it is an
oracle-kind property checked against the Oracle Table's concrete
parameters instead of the model.
"""

from __future__ import annotations

from ..core.oracle_table import OracleTable
from ..core.trace import IOTrace
from ..registry import register_properties
from .property_api import Property


def _goaway_before(trace: IOTrace, index: int) -> bool:
    """True if the connection was shut down before step ``index``."""
    return any(
        "GOAWAY" in str(trace.inputs[i]) or "GOAWAY" in str(trace.outputs[i])
        for i in range(index)
    )


def no_data_before_headers(trace: IOTrace) -> bool:
    """A server never sends response DATA before response HEADERS --
    HTTP/2 responses start with a header block (RFC 9113 section 8.1)."""
    seen_headers = False
    for output in trace.outputs:
        text = str(output)
        data_at = text.find("DATA")
        if data_at != -1 and not seen_headers:
            headers_at = text.find("HEADERS")
            if headers_at == -1 or headers_at > data_at:
                return False
        if "HEADERS" in text:
            seen_headers = True
    return True


def goaway_is_terminal(trace: IOTrace) -> bool:
    """After the server sends GOAWAY it goes silent: no later response
    carries any frame (RFC 9113 section 6.8 connection shutdown)."""
    for i, output in enumerate(trace.outputs):
        if "GOAWAY" in str(output):
            return all(str(o) == "NIL" for o in trace.outputs[i + 1 :])
    return True


def settings_always_acked(trace: IOTrace) -> bool:
    """Every SETTINGS frame on a live connection is acknowledged
    (RFC 9113 section 6.5.3)."""
    for i, symbol in enumerate(trace.inputs):
        if str(symbol).startswith("SETTINGS") and not _goaway_before(trace, i):
            if "SETTINGS[ACK]" not in str(trace.outputs[i]):
                return False
    return True


def rst_after_response_tolerated(trace: IOTrace) -> bool:
    """RST_STREAM arriving for an already-answered stream must be ignored,
    not escalated to GOAWAY (RFC 9113 section 5.1, closed state).

    A response was delivered when some earlier output carried DATA; the
    check skips positions where the connection already shut down.  The
    ``rst_on_closed_bug`` server violates this at depth 3.
    """
    for i, symbol in enumerate(trace.inputs):
        if not str(symbol).startswith("RST_STREAM"):
            continue
        response_seen = any("DATA" in str(o) for o in trace.outputs[:i])
        if response_seen and not _goaway_before(trace, i):
            if "GOAWAY" in str(trace.outputs[i]):
                return False
    return True


# ---------------------------------------------------------------------------
# Below-abstraction check: stream-id monotonicity over concrete params
# ---------------------------------------------------------------------------

def stream_id_violations(oracle_table: OracleTable) -> list[tuple[IOTrace, int]]:
    """Entries whose HEADERS-opening stream ids fail to strictly increase.

    RFC 9113 section 5.1.1: stream identifiers used by a client are odd
    and strictly increasing.  Stream ids never reach abstract symbols, so
    the check reads the Oracle Table's concrete input parameters: for each
    recorded query, the ``sid`` of every HEADERS frame that opened a new
    stream must be odd and larger than all ids opened before it.  Returns
    ``(abstract trace, offending step index)`` pairs; empty means the
    property holds over everything observed.
    """
    violations: list[tuple[IOTrace, int]] = []
    for entry in oracle_table:
        highest = 0
        for index, step in enumerate(entry.steps):
            if not str(step.input_symbol).startswith("HEADERS"):
                continue
            sid = step.input_params.get("sid", 0)
            if sid == highest:
                continue  # trailers on the currently open stream
            if sid < highest or sid % 2 == 0:
                violations.append((entry.abstract, index))
                break
            highest = sid
    return violations


def check_stream_id_monotonicity(oracle_table: OracleTable) -> bool:
    """True when every recorded query used odd, increasing stream ids."""
    return not stream_id_violations(oracle_table)


STANDARD_PROPERTIES: tuple[Property, ...] = (
    Property.trace(
        name="no-data-before-headers",
        description="response DATA only after response HEADERS",
        predicate=no_data_before_headers,
    ),
    Property.trace(
        name="goaway-terminal",
        description="no frames follow a server GOAWAY",
        predicate=goaway_is_terminal,
    ),
    Property.trace(
        name="settings-acked",
        description="SETTINGS on a live connection draws SETTINGS[ACK]",
        predicate=settings_always_acked,
    ),
    Property.trace(
        name="rst-after-response-tolerated",
        description="RST_STREAM on a closed stream is ignored, not GOAWAY",
        predicate=rst_after_response_tolerated,
    ),
    Property.oracle(
        name="stream-ids-monotonic",
        description="client stream ids are odd and strictly increasing",
        check=stream_id_violations,
    ),
)


@register_properties("http2")
def http2_properties() -> tuple[Property, ...]:
    """The registered ``http2`` suite (covers ``http2-buggy`` by stem)."""
    return STANDARD_PROPERTIES

"""A reusable HTTP/2 property suite (RFC 9113 framing rules).

The HTTP/2 counterpart of :mod:`repro.analysis.quic_properties`: RFC-level
rules packaged as named trace predicates, checked exhaustively against a
learned model up to a depth.  The suite contains the response-framing and
termination rules every conformant server satisfies plus
``rst-after-response-tolerated``, the property that flags the seeded
:attr:`~repro.http2.server.HTTP2ServerConfig.rst_on_closed_bug` quirk
(section 5.1: RST_STREAM in the closed state MUST be ignored).

Stream-id monotonicity (section 5.1.1: a client's stream identifiers are
strictly increasing odd numbers) lives below the abstraction -- identifiers
are ``?``-free in abstract symbols -- so it is checked against the Oracle
Table's concrete parameters instead of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.mealy import MealyMachine
from ..core.oracle_table import OracleTable
from ..core.trace import IOTrace
from .properties import PropertyViolation, check_invariant

TracePredicate = Callable[[IOTrace], bool]


@dataclass(frozen=True)
class HTTP2Property:
    """A named, documented property with its RFC-level motivation."""

    name: str
    description: str
    predicate: TracePredicate


def _goaway_before(trace: IOTrace, index: int) -> bool:
    """True if the connection was shut down before step ``index``."""
    return any(
        "GOAWAY" in str(trace.inputs[i]) or "GOAWAY" in str(trace.outputs[i])
        for i in range(index)
    )


def no_data_before_headers(trace: IOTrace) -> bool:
    """A server never sends response DATA before response HEADERS --
    HTTP/2 responses start with a header block (RFC 9113 section 8.1)."""
    seen_headers = False
    for output in trace.outputs:
        text = str(output)
        data_at = text.find("DATA")
        if data_at != -1 and not seen_headers:
            headers_at = text.find("HEADERS")
            if headers_at == -1 or headers_at > data_at:
                return False
        if "HEADERS" in text:
            seen_headers = True
    return True


def goaway_is_terminal(trace: IOTrace) -> bool:
    """After the server sends GOAWAY it goes silent: no later response
    carries any frame (RFC 9113 section 6.8 connection shutdown)."""
    for i, output in enumerate(trace.outputs):
        if "GOAWAY" in str(output):
            return all(str(o) == "NIL" for o in trace.outputs[i + 1 :])
    return True


def settings_always_acked(trace: IOTrace) -> bool:
    """Every SETTINGS frame on a live connection is acknowledged
    (RFC 9113 section 6.5.3)."""
    for i, symbol in enumerate(trace.inputs):
        if str(symbol).startswith("SETTINGS") and not _goaway_before(trace, i):
            if "SETTINGS[ACK]" not in str(trace.outputs[i]):
                return False
    return True


def rst_after_response_tolerated(trace: IOTrace) -> bool:
    """RST_STREAM arriving for an already-answered stream must be ignored,
    not escalated to GOAWAY (RFC 9113 section 5.1, closed state).

    A response was delivered when some earlier output carried DATA; the
    check skips positions where the connection already shut down.  The
    ``rst_on_closed_bug`` server violates this at depth 3.
    """
    for i, symbol in enumerate(trace.inputs):
        if not str(symbol).startswith("RST_STREAM"):
            continue
        response_seen = any("DATA" in str(o) for o in trace.outputs[:i])
        if response_seen and not _goaway_before(trace, i):
            if "GOAWAY" in str(trace.outputs[i]):
                return False
    return True


STANDARD_PROPERTIES: tuple[HTTP2Property, ...] = (
    HTTP2Property(
        name="no-data-before-headers",
        description="response DATA only after response HEADERS",
        predicate=no_data_before_headers,
    ),
    HTTP2Property(
        name="goaway-terminal",
        description="no frames follow a server GOAWAY",
        predicate=goaway_is_terminal,
    ),
    HTTP2Property(
        name="settings-acked",
        description="SETTINGS on a live connection draws SETTINGS[ACK]",
        predicate=settings_always_acked,
    ),
    HTTP2Property(
        name="rst-after-response-tolerated",
        description="RST_STREAM on a closed stream is ignored, not GOAWAY",
        predicate=rst_after_response_tolerated,
    ),
)


@dataclass(frozen=True)
class PropertyResult:
    property: HTTP2Property
    violation: PropertyViolation | None

    @property
    def holds(self) -> bool:
        return self.violation is None


def check_http2_properties(
    model: MealyMachine,
    properties: Sequence[HTTP2Property] = STANDARD_PROPERTIES,
    depth: int = 5,
) -> list[PropertyResult]:
    """Exhaustively check each property on all model traces up to depth."""
    results = []
    for prop in properties:
        violation = check_invariant(model, prop.predicate, depth)
        results.append(PropertyResult(property=prop, violation=violation))
    return results


def render_results(results: Sequence[PropertyResult]) -> str:
    lines = []
    for result in results:
        status = "holds" if result.holds else "VIOLATED"
        lines.append(f"{result.property.name:<32} {status}")
        if result.violation is not None:
            lines.append(f"    witness: {result.violation.trace.render()[:120]}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Below-abstraction check: stream-id monotonicity over concrete params
# ---------------------------------------------------------------------------

def stream_id_violations(oracle_table: OracleTable) -> list[tuple[IOTrace, int]]:
    """Entries whose HEADERS-opening stream ids fail to strictly increase.

    RFC 9113 section 5.1.1: stream identifiers used by a client are odd
    and strictly increasing.  Stream ids never reach abstract symbols, so
    the check reads the Oracle Table's concrete input parameters: for each
    recorded query, the ``sid`` of every HEADERS frame that opened a new
    stream must be odd and larger than all ids opened before it.  Returns
    ``(abstract trace, offending step index)`` pairs; empty means the
    property holds over everything observed.
    """
    violations: list[tuple[IOTrace, int]] = []
    for entry in oracle_table:
        highest = 0
        for index, step in enumerate(entry.steps):
            if not str(step.input_symbol).startswith("HEADERS"):
                continue
            sid = step.input_params.get("sid", 0)
            if sid == highest:
                continue  # trailers on the currently open stream
            if sid < highest or sid % 2 == 0:
                violations.append((entry.abstract, index))
                break
            highest = sid
    return violations


def check_stream_id_monotonicity(oracle_table: OracleTable) -> bool:
    """True when every recorded query used odd, increasing stream ids."""
    return not stream_id_violations(oracle_table)

"""Equivalence checking of learned models (paper section 5).

For Mealy machines trace equivalence is decidable in polynomial time [Hunt
& Rosenkrantz 1977]: run a breadth-first search over the product machine
and look for a reachable state pair that disagrees on some input's output.
The witness word -- a concrete example trace showing how two
implementations differ -- is exactly what Prognosis showed developers in
Issues 1 and 3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.alphabet import AbstractSymbol
from ..core.mealy import MealyMachine, State
from ..core.trace import IOTrace, Word


class AlphabetMismatchError(ValueError):
    """Machines over different input alphabets cannot be compared."""


def _check_alphabets(a: MealyMachine, b: MealyMachine) -> None:
    if tuple(a.input_alphabet) != tuple(b.input_alphabet):
        raise AlphabetMismatchError(
            f"machines {a.name!r} and {b.name!r} have different input alphabets"
        )


def find_difference(a: MealyMachine, b: MealyMachine) -> Word | None:
    """A shortest input word on which the machines' outputs differ, or None.

    BFS over the product automaton; the first disagreeing transition closes
    the witness.
    """
    _check_alphabets(a, b)
    start = (a.initial_state, b.initial_state)
    parents: dict[
        tuple[State, State], tuple[tuple[State, State], AbstractSymbol]
    ] = {}
    seen = {start}
    queue: deque[tuple[State, State]] = deque([start])
    while queue:
        pair = queue.popleft()
        for symbol in a.input_alphabet:
            next_a, out_a = a.step(pair[0], symbol)
            next_b, out_b = b.step(pair[1], symbol)
            if out_a != out_b:
                # Path back to the start, then reverse: the differing
                # symbol ends up last.
                word: list[AbstractSymbol] = [symbol]
                cursor = pair
                while cursor != start:
                    cursor, sym = parents[cursor]
                    word.append(sym)
                word.reverse()
                return tuple(word)
            next_pair = (next_a, next_b)
            if next_pair not in seen:
                seen.add(next_pair)
                parents[next_pair] = (pair, symbol)
                queue.append(next_pair)
    return None


def equivalent(a: MealyMachine, b: MealyMachine) -> bool:
    """Trace equivalence of two Mealy machines."""
    return find_difference(a, b) is None


@dataclass(frozen=True)
class DifferenceWitness:
    """A concrete trace pair showing two machines diverging."""

    word: Word
    trace_a: IOTrace
    trace_b: IOTrace
    name_a: str
    name_b: str

    def render(self) -> str:
        lines = [
            f"input word : {' '.join(str(s) for s in self.word)}",
            f"{self.name_a:>10} : {' '.join(str(o) for o in self.trace_a.outputs)}",
            f"{self.name_b:>10} : {' '.join(str(o) for o in self.trace_b.outputs)}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-able rendering (difftest campaign artifacts)."""
        return {
            "word": [str(symbol) for symbol in self.word],
            "outputs_a": [str(symbol) for symbol in self.trace_a.outputs],
            "outputs_b": [str(symbol) for symbol in self.trace_b.outputs],
            "name_a": self.name_a,
            "name_b": self.name_b,
        }


def difference_witness(a: MealyMachine, b: MealyMachine) -> DifferenceWitness | None:
    """The full evidence object for the shortest difference, if any."""
    word = find_difference(a, b)
    if word is None:
        return None
    return DifferenceWitness(
        word=word,
        trace_a=a.trace(word),
        trace_b=b.trace(word),
        name_a=a.name,
        name_b=b.name,
    )


def bisimulation_classes(machine: MealyMachine) -> list[list[State]]:
    """Partition of states into behavioural equivalence classes."""
    minimal = machine.minimize()
    classes: dict[State, list[State]] = {}
    access = machine.access_sequences()
    for state, word in access.items():
        key = minimal.state_after(word)
        classes.setdefault(key, []).append(state)
    return list(classes.values())

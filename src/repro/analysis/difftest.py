"""Differential conformance testing primitives (paper sections 5/7).

The campaign-scale payoff of learned models is *cross-replay*: the test
suite derived from implementation A's model, executed against
implementation B, is a high-quality differential test -- exactly how the
paper's Issues 1-4 were found.  This module provides the pieces a
:class:`~repro.campaign.DiffCampaign` assembles into an N x N verdict
matrix:

* :func:`minimize_witness` -- a ddmin-style trace reducer that shrinks a
  diverging input word to a 1-minimal subsequence while preserving the
  divergence;
* :func:`cross_replay` -- batched replay of a model-derived suite against
  a membership oracle, collecting :class:`~repro.analysis.testgen
  .Divergence` evidence;
* :class:`CrossVerdict` / :class:`VerdictMatrix` -- one matrix cell and
  the full matrix, each renderable as text and serializable to JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.trace import Word
from .testgen import Divergence

#: Possible outcomes of one (suite source, replay subject) cell.
VERDICT_SELF = "self"              # diagonal: model replayed on its own SUL
VERDICT_AGREE = "agree"            # the whole suite matched
VERDICT_DIVERGE = "diverge"        # at least one word disagreed
VERDICT_ERROR = "error"            # a model was never learned (e.g. mvfst)
VERDICT_INCOMPATIBLE = "incompatible"  # different input alphabets


# ---------------------------------------------------------------------------
# Witness minimization (ddmin)
# ---------------------------------------------------------------------------

def minimize_witness(
    word: Sequence,
    disagrees: Callable[[Word], bool],
    max_tests: int = 2000,
) -> Word:
    """Shrink ``word`` to a 1-minimal subsequence that still ``disagrees``.

    Classic delta debugging (Zeller & Hildebrandt's ddmin) over the input
    word: repeatedly try dropping chunks at increasing granularity,
    keeping any complement on which the two systems still produce
    different outputs.  The result is a *subsequence* of ``word`` (symbol
    order preserved), it still disagrees, and -- unless ``max_tests`` ran
    out -- removing any single symbol from it makes the disagreement
    vanish.

    ``disagrees`` is called with candidate words and must return True when
    the divergence is still observable; results are memoized, so a SUL
    -backed predicate pays one execution per distinct candidate.
    """
    word = tuple(word)
    if not disagrees(word):
        raise ValueError("minimize_witness needs a word that already disagrees")

    memo: dict[Word, bool] = {word: True}
    budget = max_tests

    def test(candidate: Word) -> bool:
        nonlocal budget
        cached = memo.get(candidate)
        if cached is not None:
            return cached
        if budget <= 0:
            return False
        budget -= 1
        result = bool(disagrees(candidate))
        memo[candidate] = result
        return result

    granularity = 2
    while len(word) >= 2:
        chunk = len(word) / granularity
        complements = []
        for index in range(granularity):
            start = int(index * chunk)
            stop = int((index + 1) * chunk)
            complements.append(word[:start] + word[stop:])
        reduced = False
        for complement in complements:
            if len(complement) < len(word) and test(complement):
                word = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(word):
                break
            granularity = min(len(word), granularity * 2)
    return word


# ---------------------------------------------------------------------------
# Cross-replay
# ---------------------------------------------------------------------------

def cross_replay(
    model,
    oracle,
    suite: Sequence[Word],
    batch_size: int = 64,
    max_divergences: int | None = None,
) -> list[Divergence]:
    """Replay a model-derived suite against a membership oracle, batched.

    ``model`` predicts the outputs (it was learned from implementation A);
    ``oracle`` answers them (it fronts implementation B).  Words are
    submitted ``batch_size`` at a time so a cache layer can dedup and
    prefix-collapse them and a SUL pool can fan them out.  Divergences are
    collected in suite order, capped at ``max_divergences``.
    """
    divergences: list[Divergence] = []
    words = [tuple(word) for word in suite]
    for start in range(0, len(words), max(1, batch_size)):
        batch = words[start : start + max(1, batch_size)]
        actuals = oracle.query_batch(batch)
        for word, actual in zip(batch, actuals):
            expected = model.run(word)
            if tuple(actual) != tuple(expected):
                divergences.append(
                    Divergence(word=word, expected=tuple(expected), actual=tuple(actual))
                )
                if (
                    max_divergences is not None
                    and len(divergences) >= max_divergences
                ):
                    return divergences
    return divergences


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------

@dataclass
class CrossVerdict:
    """One cell of the verdict matrix: suite of ``row`` replayed on ``col``."""

    row: str
    col: str
    verdict: str
    suite_size: int = 0
    divergence_count: int = 0
    #: The minimized witness (shortest validated diverging word), if any.
    witness: Word | None = None
    #: Outputs of the row/col implementations on the witness.
    witness_row_outputs: Word | None = None
    witness_col_outputs: Word | None = None
    #: True when the witness was re-executed against both implementations
    #: and reproduced the differing outputs.
    witness_validated: bool = False
    error: str | None = None

    @property
    def diverges(self) -> bool:
        return self.verdict == VERDICT_DIVERGE

    def label(self) -> str:
        """The short cell text the rendered matrix shows."""
        if self.verdict == VERDICT_DIVERGE:
            witness = len(self.witness) if self.witness is not None else "?"
            return f"DIVERGE({self.divergence_count},|w|={witness})"
        if self.verdict == VERDICT_ERROR:
            return "ERROR"
        if self.verdict == VERDICT_INCOMPATIBLE:
            return "INCOMPAT"
        if self.verdict == VERDICT_SELF:
            return "self"
        return "agree"

    def render(self) -> str:
        lines = [f"{self.row} suite vs {self.col}: {self.label()}"]
        if self.error:
            lines.append(f"  error: {self.error}")
        if self.witness is not None:
            lines.append(
                "  witness : " + " ".join(str(s) for s in self.witness)
            )
            if self.witness_row_outputs is not None:
                lines.append(
                    f"  {self.row:>10} : "
                    + " ".join(str(s) for s in self.witness_row_outputs)
                )
            if self.witness_col_outputs is not None:
                lines.append(
                    f"  {self.col:>10} : "
                    + " ".join(str(s) for s in self.witness_col_outputs)
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        def render_word(word: Word | None) -> list[str] | None:
            return None if word is None else [str(s) for s in word]

        return {
            "row": self.row,
            "col": self.col,
            "verdict": self.verdict,
            "suite_size": self.suite_size,
            "divergence_count": self.divergence_count,
            "witness": render_word(self.witness),
            "witness_row_outputs": render_word(self.witness_row_outputs),
            "witness_col_outputs": render_word(self.witness_col_outputs),
            "witness_validated": self.witness_validated,
            "error": self.error,
        }


@dataclass
class VerdictMatrix:
    """The N x N outcome of a differential conformance campaign.

    Rows are suite sources (the implementation whose learned model
    generated the tests), columns are replay subjects.
    """

    targets: list[str]
    cells: dict[tuple[str, str], CrossVerdict] = field(default_factory=dict)

    def cell(self, row: str, col: str) -> CrossVerdict:
        return self.cells[(row, col)]

    def divergent_pairs(self) -> list[CrossVerdict]:
        """Off-diagonal cells that found behavioural differences."""
        return [
            cell
            for (row, col), cell in sorted(self.cells.items())
            if row != col and cell.diverges
        ]

    def render(self) -> str:
        width = max(
            [len("suite \\ subject")]
            + [len(t) for t in self.targets]
            + [len(cell.label()) for cell in self.cells.values()]
        ) + 2
        header = "suite \\ subject".ljust(width) + "".join(
            t.ljust(width) for t in self.targets
        )
        lines = [header.rstrip()]
        for row in self.targets:
            cells = "".join(
                self.cells[(row, col)].label().ljust(width) for col in self.targets
            )
            lines.append((row.ljust(width) + cells).rstrip())
        witnesses = [
            cell.render()
            for cell in self.divergent_pairs()
            if cell.witness is not None
        ]
        if witnesses:
            lines.append("")
            lines.extend(witnesses)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "targets": list(self.targets),
            "cells": [cell.to_dict() for _, cell in sorted(self.cells.items())],
        }

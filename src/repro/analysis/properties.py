"""Property checking over learned models (paper section 5).

For a Mealy machine and an LTLf property, checking "all traces up to a
bound satisfy the property" is decidable by exhaustive exploration of the
machine (the machine's trace set is regular, and traces of a given length
are finitely many).  For extended machines with registers the problem is
undecidable in general, so -- like the paper -- we fall back to randomised
testing of concrete executions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.extended import ConcreteStep, ExtendedMealyMachine
from ..core.mealy import MealyMachine, State
from ..core.trace import EMPTY_TRACE, IOTrace
from .ltl import Formula


@dataclass(frozen=True)
class PropertyViolation:
    """A counterexample trace for a property."""

    trace: IOTrace
    description: str

    def render(self) -> str:
        return f"{self.description}: {self.trace.render()}"


def check_property(
    machine: MealyMachine, formula: Formula, depth: int
) -> PropertyViolation | None:
    """Exhaustively check all traces of length <= depth; None if they hold.

    The learned model makes this tractable: instead of the |Sigma|^depth
    blow-up against the live SUL, we explore the (few) machine states --
    the trace-reduction argument of section 6.2.2.
    """
    violation = _explore(machine, formula, machine.initial_state, EMPTY_TRACE, depth)
    return violation


def _explore(
    machine: MealyMachine,
    formula: Formula,
    state: State,
    trace: IOTrace,
    remaining: int,
) -> PropertyViolation | None:
    if len(trace) > 0 and not formula.holds(trace):
        return PropertyViolation(trace=trace, description="LTLf violation")
    if remaining == 0:
        return None
    for symbol in machine.input_alphabet:
        target, output = machine.step(state, symbol)
        violation = _explore(
            machine, formula, target, trace.extend(symbol, output), remaining - 1
        )
        if violation is not None:
            return violation
    return None


def check_invariant(
    machine: MealyMachine,
    predicate: Callable[[IOTrace], bool],
    depth: int,
) -> PropertyViolation | None:
    """Check an arbitrary trace predicate on all traces up to ``depth``."""

    class _Wrapper(Formula):
        def holds(self, trace: IOTrace) -> bool:  # type: ignore[override]
            return predicate(trace)

        def holds_at(self, steps, index):  # pragma: no cover - unused
            raise NotImplementedError

    return check_property(machine, _Wrapper(), depth)


# ---------------------------------------------------------------------------
# Register properties on extended machines: randomised testing
# ---------------------------------------------------------------------------

RegisterPredicate = Callable[[Sequence[ConcreteStep], Sequence[dict]], bool]


@dataclass(frozen=True)
class RegisterViolation:
    steps: tuple[ConcreteStep, ...]
    predictions: tuple[dict, ...]
    description: str


def check_register_property(
    machine: ExtendedMealyMachine,
    concrete_traces: Sequence[Sequence[ConcreteStep]],
    predicate: RegisterPredicate,
    description: str = "register property",
) -> RegisterViolation | None:
    """Test a predicate over (observed steps, predicted outputs) pairs.

    Used for quantity properties like "packet numbers are always
    increasing" or "``maximum_stream_data`` is not constant" (Issue 4).
    """
    for steps in concrete_traces:
        try:
            predictions = machine.execute(list(steps))
        except KeyError:
            continue
        if not predicate(steps, predictions):
            return RegisterViolation(
                steps=tuple(steps),
                predictions=tuple(predictions),
                description=description,
            )
    return None


def random_traces(
    machine: MealyMachine,
    num_traces: int,
    max_length: int,
    seed: int = 0,
) -> list[IOTrace]:
    """Sample random traces from a model (for model-based test generation).

    An empty input alphabet yields an empty list (there is nothing to
    sample), mirroring :func:`repro.analysis.testgen.generate_test_suite`.
    """
    rng = random.Random(seed)
    symbols = list(machine.input_alphabet)
    if not symbols:
        return []
    traces = []
    for _ in range(num_traces):
        length = rng.randint(1, max_length)
        word = tuple(rng.choice(symbols) for _ in range(length))
        traces.append(machine.trace(word))
    return traces

"""The toy-target property suite (CLI smoke tests and demos).

The ``toy`` SUL (:func:`repro.adapter.mealy_sul.toy_machine`) is a
3-state SYN/ACK lock; its suite states the lock's contract in the LTLf
textual syntax, which doubles as living documentation of the formula
language every user-facing surface (``repro properties --formula``,
:class:`~repro.spec.PropertiesSpec` formulas) accepts.
"""

from __future__ import annotations

from ..registry import register_properties
from .property_api import Property


@register_properties("toy")
def toy_properties() -> tuple[Property, ...]:
    """The registered ``toy`` suite: the SYN/ACK lock's contract, in LTLf."""
    return (
        Property.ltlf(
            name="ack-is-ignored",
            formula="G (in == ACK(?,?,0) -> out == NIL)",
            description="a bare ACK never draws a response",
        ),
        Property.ltlf(
            name="syn-answered-sanely",
            formula="G (in == SYN(?,?,0) -> "
            "(out == ACK+SYN(?,?,0) || out == RST(?,?,0) || out == NIL))",
            description="a SYN draws SYN+ACK, RST or silence -- never data",
        ),
        Property.ltlf(
            name="rst-only-after-open",
            formula="(out != RST(?,?,0)) U (out == ACK+SYN(?,?,0)) "
            "|| G (out != RST(?,?,0))",
            description="no reset before the lock opened once",
        ),
    )

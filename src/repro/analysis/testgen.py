"""Model-based test generation and differential testing (paper sections 5/7).

A learned model is a test-case factory: its transition cover, W-method
suite, or random walks exercise exactly the behaviours the model claims,
and replaying those against *another* implementation is differential
testing with high-quality inputs -- "something that is typically hard in a
closed-box setting" (section 7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal, Sequence

from ..adapter.sul import SUL
from ..core.mealy import MealyMachine
from ..core.trace import Word

SuiteKind = Literal["transition-cover", "wmethod", "random"]


def generate_test_suite(
    model: MealyMachine,
    kind: SuiteKind = "wmethod",
    extra_states: int = 0,
    num_random: int = 100,
    max_length: int = 10,
    seed: int = 0,
) -> list[Word]:
    """Input words derived from a learned model.

    * ``transition-cover``: one word per transition (cheap smoke suite);
    * ``wmethod``: the full W-method suite (conformance-grade);
    * ``random``: random walks through the *model's* structure.
    """
    if kind == "transition-cover":
        return model.transition_cover()
    if kind == "wmethod":
        return model.w_method_suite(extra_states)
    rng = random.Random(seed)
    symbols = list(model.input_alphabet)
    if not symbols:
        return []  # an empty alphabet admits no non-empty words
    suite = []
    for _ in range(num_random):
        length = rng.randint(1, max_length)
        suite.append(tuple(rng.choice(symbols) for _ in range(length)))
    return suite


@dataclass(frozen=True)
class Divergence:
    """One test case on which the SUL disagreed with the model."""

    word: Word
    expected: Word
    actual: Word

    def render(self) -> str:
        first = next(
            i for i, (e, a) in enumerate(zip(self.expected, self.actual)) if e != a
        )
        return (
            f"after {' '.join(str(s) for s in self.word[: first + 1])}: "
            f"expected {self.expected[first]}, got {self.actual[first]}"
        )


@dataclass
class DifferentialReport:
    """The outcome of replaying a model-derived suite against a SUL."""

    suite_size: int
    divergences: list[Divergence]

    @property
    def conforms(self) -> bool:
        return not self.divergences

    @property
    def divergence_rate(self) -> float:
        return len(self.divergences) / self.suite_size if self.suite_size else 0.0

    def render(self) -> str:
        lines = [
            f"differential test: {self.suite_size} cases, "
            f"{len(self.divergences)} divergences"
        ]
        for divergence in self.divergences[:5]:
            lines.append(f"  {divergence.render()}")
        if len(self.divergences) > 5:
            lines.append(f"  ... and {len(self.divergences) - 5} more")
        return "\n".join(lines)


def differential_test(
    model: MealyMachine,
    sul: SUL,
    suite: Sequence[Word] | None = None,
    max_divergences: int | None = None,
) -> DifferentialReport:
    """Replay a model-derived suite against a (different) implementation.

    Divergences against the implementation the model was learned from are
    learner bugs; against another implementation they are behavioural
    differences of exactly the kind section 6.2 turns into findings.
    """
    words = list(suite) if suite is not None else generate_test_suite(model)
    divergences: list[Divergence] = []
    for word in words:
        expected = model.run(word)
        actual = sul.query(word)
        if actual != expected:
            divergences.append(
                Divergence(word=word, expected=expected, actual=actual)
            )
            if max_divergences is not None and len(divergences) >= max_divergences:
                break
    return DifferentialReport(suite_size=len(words), divergences=divergences)

"""The TCP property suite (paper section 6.1, RFC 793 / RFC 5961).

TCP was Prognosis's validation workload; this suite states the
behaviours the paper's section-6.1 model exhibits as checkable
:class:`~repro.analysis.property_api.Property` entries, registered as
the ``tcp`` suite (covering ``tcp``, ``tcp-handshake`` and
``tcp-no-challenge-ack`` via the family stem):

* ``challenge-ack-rate-limited`` -- the RFC 5961 mitigation Linux ships:
  an in-window SYN on an established connection draws a challenge ACK,
  but an immediate second SYN is silently dropped (the rate limiter has
  no credit left).  The ``tcp-no-challenge-ack`` ablation answers every
  SYN, so this property *distinguishes the two stacks* -- the
  model-level observable of the challenge-ACK rate limit.
* ``rst-terminal`` -- once the connection is synchronized (the server
  sent SYN+ACK), a client RST kills it: nothing but silence follows.
* ``data-needs-handshake`` -- the server never acknowledges payload
  before completing the handshake; data on an unsynchronized connection
  draws a reset, not an ACK.
"""

from __future__ import annotations

from ..core.trace import IOTrace
from ..registry import register_properties
from .property_api import Property


def _is_syn(symbol) -> bool:
    return str(symbol) == "SYN(?,?,0)"


def _is_plain_ack(symbol) -> bool:
    return str(symbol) == "ACK(?,?,0)"


def _is_nil(symbol) -> bool:
    return str(symbol) == "NIL"


def _fin_seen(trace: IOTrace, upto: int) -> bool:
    """True when a FIN crossed the wire (either direction) before ``upto``.

    The rate limiter only guards ESTABLISHED; once the close sequence
    starts (LAST_ACK and friends), challenge ACKs are unthrottled.
    """
    return any(
        "FIN" in str(trace.inputs[i]) or "FIN" in str(trace.outputs[i])
        for i in range(upto)
    )


def challenge_ack_is_rate_limited(trace: IOTrace) -> bool:
    """A challenge ACK consumes the credit: the very next SYN is dropped.

    RFC 5961 section 4.2 with Linux's ``tcp_challenge_ack_limit``
    behaviour: on an established (pre-FIN) connection, a SYN answered
    with a plain ACK (the challenge) leaves no credit, so a SYN on the
    next step must draw silence.  Receiving data replenishes the credit,
    which is why only *consecutive* SYNs are constrained.
    """
    for i in range(len(trace) - 1):
        if not (_is_syn(trace.inputs[i]) and _is_plain_ack(trace.outputs[i])):
            continue
        if _fin_seen(trace, i):
            continue  # close sequence started; the limiter is off duty
        if _is_syn(trace.inputs[i + 1]) and not _is_nil(trace.outputs[i + 1]):
            return False
    return True


def rst_is_terminal(trace: IOTrace) -> bool:
    """A client RST on a synchronized connection is final: only silence
    follows (RFC 793: a reset destroys the connection).

    Pre-handshake RSTs are out of scope -- a listener ignores them and
    must still accept a later SYN -- so the check arms once the server
    has sent its SYN+ACK.
    """
    synchronized = False
    for i in range(len(trace)):
        if "SYN" in str(trace.outputs[i]):
            synchronized = True
        if synchronized and "RST" in str(trace.inputs[i]):
            return all(_is_nil(o) for o in trace.outputs[i:])
    return True


def data_needs_handshake(trace: IOTrace) -> bool:
    """The server never ACKs payload before the handshake completed.

    A data segment hitting a listener is answered with a reset (or
    dropped), never acknowledged: an ACK of data implies the server sent
    SYN+ACK earlier in the trace.
    """
    syn_ack_sent = False
    for i in range(len(trace)):
        if "SYN" in str(trace.outputs[i]):
            syn_ack_sent = True
        carries_payload = str(trace.inputs[i]).endswith(",1)")
        if carries_payload and not syn_ack_sent:
            if _is_plain_ack(trace.outputs[i]):
                return False
    return True


TCP_PROPERTIES: tuple[Property, ...] = (
    Property.trace(
        name="challenge-ack-rate-limited",
        description="a second consecutive in-window SYN is silently dropped",
        predicate=challenge_ack_is_rate_limited,
    ),
    Property.trace(
        name="rst-terminal",
        description="a client RST on a synchronized connection is final",
        predicate=rst_is_terminal,
    ),
    Property.trace(
        name="data-needs-handshake",
        description="payload is never ACKed before the handshake completes",
        predicate=data_needs_handshake,
    ),
)


@register_properties("tcp")
def tcp_properties() -> tuple[Property, ...]:
    """The registered ``tcp`` suite (covers every ``tcp-*`` target)."""
    return TCP_PROPERTIES

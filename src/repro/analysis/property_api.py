"""The unified property-checking API (paper section 5, all analyses).

Prognosis's product is *asking a learned model questions*: temporal
properties, quantity/register properties, oracle-table checks.  This
module is the single framework every protocol suite plugs into:

* :class:`Property` -- one named check, in one of four kinds:
  an LTLf formula string (parsed by :mod:`repro.analysis.ltl`), a trace
  predicate, an Oracle-Table check over concrete parameters, or a
  register predicate over synthesized extended machines;
* :class:`Verdict` -- the four possible outcomes (``HOLDS`` /
  ``VIOLATED`` / ``SKIPPED`` / ``ERROR``);
* :class:`PropertyVerdict` / :class:`PropertyReport` -- one outcome and
  a full suite's outcomes, renderable as text and serializable to JSON.

Every ``VIOLATED`` verdict carries a witness trace minimized with the
same ddmin reducer differential campaigns use
(:func:`repro.analysis.difftest.minimize_witness`), shrunk against the
learned model -- removing any single input from the witness makes the
violation vanish.

Protocol suites are registry citizens: decorate a factory with
:func:`repro.registry.register_properties` and ``repro properties
<target>``, campaigns and :meth:`repro.framework.Prognosis
.check_properties` all discover it by target name (exact key first,
then the ``-``-separated family stem, so ``quic`` covers
``quic-google``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..adapter.pool import BatchExecutor
from ..core.extended import ConcreteStep, ExtendedMealyMachine
from ..core.mealy import MealyMachine
from ..core.oracle_table import OracleTable
from ..core.trace import IOTrace, Word
from .difftest import minimize_witness
from .ltl import Formula, LTLError, parse_ltl
from .properties import (
    RegisterPredicate,
    check_invariant,
    check_property,
    check_register_property,
)

TracePredicate = Callable[[IOTrace], bool]
#: An Oracle-Table check: returns the violating entries, each an
#: ``IOTrace`` or an ``(IOTrace, step index)`` pair; empty means HOLDS.
OracleCheck = Callable[[OracleTable], Sequence]


class Verdict:
    """The four possible outcomes of checking one property."""

    HOLDS = "holds"
    VIOLATED = "violated"
    SKIPPED = "skipped"
    ERROR = "error"
    ALL = (HOLDS, VIOLATED, SKIPPED, ERROR)


#: Property kinds (the evaluation strategy a property selects).
KIND_LTLF = "ltlf"
KIND_TRACE = "trace"
KIND_ORACLE = "oracle"
KIND_REGISTER = "register"

#: Tag marking design-decision probes: differences, not bugs (section
#: 6.2.2: "not necessarily a bug, it can also signal different design
#: decisions").  Probe violations never fail a report.
TAG_PROBE = "probe"


class PropertyError(ValueError):
    """A malformed :class:`Property` definition."""


@dataclass(frozen=True)
class Property:
    """One named, documented check against a learned model.

    Exactly one payload matches ``kind``: ``formula`` (LTLf source
    text), ``predicate`` (trace predicate), ``oracle_check`` (Oracle
    -Table check) or ``register_predicate``.  Use the classmethod
    constructors; they validate the pairing.
    """

    name: str
    description: str
    kind: str
    formula: str | None = None
    predicate: TracePredicate | None = None
    oracle_check: OracleCheck | None = None
    register_predicate: RegisterPredicate | None = None
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        payloads = {
            KIND_LTLF: self.formula,
            KIND_TRACE: self.predicate,
            KIND_ORACLE: self.oracle_check,
            KIND_REGISTER: self.register_predicate,
        }
        if self.kind not in payloads:
            raise PropertyError(
                f"unknown property kind {self.kind!r}; "
                f"known: {sorted(payloads)}"
            )
        if payloads[self.kind] is None:
            raise PropertyError(
                f"property {self.name!r} has kind {self.kind!r} but no "
                f"matching payload"
            )

    # -- constructors ------------------------------------------------------
    @classmethod
    def ltlf(
        cls, name: str, formula: str, description: str = "", tags: Sequence[str] = ()
    ) -> "Property":
        """A property stated in the compact LTLf textual syntax."""
        return cls(
            name=name,
            description=description or formula,
            kind=KIND_LTLF,
            formula=formula,
            tags=tuple(tags),
        )

    @classmethod
    def trace(
        cls,
        name: str,
        predicate: TracePredicate,
        description: str = "",
        tags: Sequence[str] = (),
    ) -> "Property":
        """A property given as an arbitrary trace predicate."""
        return cls(
            name=name,
            description=description,
            kind=KIND_TRACE,
            predicate=predicate,
            tags=tuple(tags),
        )

    @classmethod
    def oracle(
        cls,
        name: str,
        check: OracleCheck,
        description: str = "",
        tags: Sequence[str] = (),
    ) -> "Property":
        """A below-abstraction check over the Oracle Table's parameters."""
        return cls(
            name=name,
            description=description,
            kind=KIND_ORACLE,
            oracle_check=check,
            tags=tuple(tags),
        )

    @classmethod
    def register(
        cls,
        name: str,
        predicate: RegisterPredicate,
        description: str = "",
        tags: Sequence[str] = (),
    ) -> "Property":
        """A quantity property tested over concrete executions of a
        synthesized register machine (undecidable in general, so --
        like the paper -- checked by randomised testing)."""
        return cls(
            name=name,
            description=description,
            kind=KIND_REGISTER,
            register_predicate=predicate,
            tags=tuple(tags),
        )

    @property
    def is_probe(self) -> bool:
        return TAG_PROBE in self.tags


@dataclass
class PropertyVerdict:
    """The outcome of checking one property against one model."""

    property: Property
    verdict: str
    #: The violating trace, ddmin-minimized against the model (VIOLATED
    #: of kind ltlf/trace), or the offending Oracle-Table entry.
    witness: IOTrace | None = None
    #: True when ddmin ran to completion on the witness.
    minimized: bool = False
    #: Skip reason or error message.
    detail: str | None = None

    @property
    def holds(self) -> bool:
        return self.verdict == Verdict.HOLDS

    @property
    def violated(self) -> bool:
        return self.verdict == Verdict.VIOLATED

    def to_dict(self) -> dict:
        return {
            "property": self.property.name,
            "description": self.property.description,
            "kind": self.property.kind,
            "tags": list(self.property.tags),
            "verdict": self.verdict,
            "witness": (
                None
                if self.witness is None
                else {
                    "inputs": [str(s) for s in self.witness.inputs],
                    "outputs": [str(s) for s in self.witness.outputs],
                }
            ),
            "minimized": self.minimized,
            "detail": self.detail,
        }


@dataclass
class PropertyReport:
    """Every verdict of one suite run against one model."""

    target: str
    verdicts: list[PropertyVerdict] = field(default_factory=list)
    depth: int = 0

    def __iter__(self):
        return iter(self.verdicts)

    def __len__(self) -> int:
        return len(self.verdicts)

    def verdict(self, name: str) -> PropertyVerdict:
        for verdict in self.verdicts:
            if verdict.property.name == name:
                return verdict
        raise KeyError(f"no verdict for property {name!r} in {self.target}")

    def counts(self) -> dict[str, int]:
        counts = dict.fromkeys(Verdict.ALL, 0)
        for verdict in self.verdicts:
            counts[verdict.verdict] += 1
        return counts

    @property
    def ok(self) -> bool:
        """True when no non-probe property is VIOLATED or ERROR.

        Probe violations are design-decision differences, not failures.
        """
        return not any(
            v.verdict in (Verdict.VIOLATED, Verdict.ERROR)
            for v in self.verdicts
            if not v.property.is_probe
        )

    def summary(self) -> str:
        counts = self.counts()
        parts = [
            f"{counts[name]} {name}"
            for name in Verdict.ALL
            if counts[name]
        ]
        return f"{self.target} properties: " + (", ".join(parts) or "none")

    def render(self) -> str:
        lines = []
        for verdict in self.verdicts:
            status = {
                Verdict.HOLDS: "holds",
                Verdict.VIOLATED: "VIOLATED",
                Verdict.SKIPPED: "skipped",
                Verdict.ERROR: "ERROR",
            }[verdict.verdict]
            if verdict.property.is_probe and verdict.violated:
                status = "DIFFERS (probe)"
            lines.append(f"{verdict.property.name:<32} {status}")
            if verdict.witness is not None:
                lines.append(f"    witness: {verdict.witness.render()[:120]}")
            if verdict.detail is not None:
                lines.append(f"    {verdict.detail}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "depth": self.depth,
            "ok": self.ok,
            "counts": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

def _minimize_trace_witness(
    model: MealyMachine, trace: IOTrace, predicate: TracePredicate
) -> tuple[IOTrace, bool]:
    """Shrink a violating trace against the model with ddmin.

    The reducer works on the *input word*; candidate subsequences are
    replayed on the learned model (cheap -- the trace-reduction argument
    of section 6.2.2) and kept while the property still fails.
    """

    def disagrees(candidate: Word) -> bool:
        if not candidate:
            return False  # the empty trace satisfies everything
        return not predicate(model.trace(candidate))

    try:
        word = minimize_witness(tuple(trace.inputs), disagrees)
    except ValueError:
        # The found trace does not re-violate on replay (a predicate
        # depending on more than the abstract trace); keep the original.
        return trace, False
    return model.trace(word), True


def check_model_property(
    model: MealyMachine,
    prop: Property,
    depth: int = 5,
    oracle_table: OracleTable | None = None,
    extended: ExtendedMealyMachine | None = None,
    concrete_traces: Sequence[Sequence[ConcreteStep]] | None = None,
    minimize: bool = True,
) -> PropertyVerdict:
    """Check one property; never raises -- failures become ERROR verdicts."""
    try:
        if prop.kind == KIND_LTLF:
            try:
                formula: Formula = parse_ltl(prop.formula)
            except LTLError as error:
                return PropertyVerdict(
                    property=prop,
                    verdict=Verdict.ERROR,
                    detail=f"LTLf parse error: {error}",
                )
            predicate: TracePredicate = formula.holds
            violation = check_property(model, formula, depth)
        elif prop.kind == KIND_TRACE:
            predicate = prop.predicate
            violation = check_invariant(model, predicate, depth)
        elif prop.kind == KIND_ORACLE:
            if oracle_table is None:
                return PropertyVerdict(
                    property=prop,
                    verdict=Verdict.SKIPPED,
                    detail="no oracle table available (model-only check)",
                )
            violations = list(prop.oracle_check(oracle_table))
            if not violations:
                return PropertyVerdict(property=prop, verdict=Verdict.HOLDS)
            first = violations[0]
            witness, index = (
                first if isinstance(first, tuple) else (first, None)
            )
            detail = f"{len(violations)} offending oracle-table entries"
            if index is not None:
                detail += f" (first at step {index})"
            return PropertyVerdict(
                property=prop,
                verdict=Verdict.VIOLATED,
                witness=witness,
                detail=detail,
            )
        else:  # KIND_REGISTER
            if extended is None or not concrete_traces:
                return PropertyVerdict(
                    property=prop,
                    verdict=Verdict.SKIPPED,
                    detail="no synthesized register machine / concrete traces",
                )
            register_violation = check_register_property(
                extended,
                concrete_traces,
                prop.register_predicate,
                description=prop.description or prop.name,
            )
            if register_violation is None:
                return PropertyVerdict(property=prop, verdict=Verdict.HOLDS)
            steps = register_violation.steps
            witness = IOTrace(
                tuple(s.input_symbol for s in steps),
                tuple(s.output_symbol for s in steps),
            )
            return PropertyVerdict(
                property=prop,
                verdict=Verdict.VIOLATED,
                witness=witness,
                detail=register_violation.description,
            )
    except Exception as error:  # a broken check must not sink the suite
        return PropertyVerdict(
            property=prop,
            verdict=Verdict.ERROR,
            detail=f"{type(error).__name__}: {error}",
        )

    if violation is None:
        return PropertyVerdict(property=prop, verdict=Verdict.HOLDS)
    witness, minimized = violation.trace, False
    if minimize:
        witness, minimized = _minimize_trace_witness(model, witness, predicate)
    return PropertyVerdict(
        property=prop,
        verdict=Verdict.VIOLATED,
        witness=witness,
        minimized=minimized,
    )


def check_properties(
    model: MealyMachine,
    properties: Sequence[Property],
    depth: int = 5,
    oracle_table: OracleTable | None = None,
    extended: ExtendedMealyMachine | None = None,
    concrete_traces: Sequence[Sequence[ConcreteStep]] | None = None,
    minimize: bool = True,
    target: str | None = None,
) -> PropertyReport:
    """Check a whole suite against one model, exhaustively up to ``depth``."""
    verdicts = [
        check_model_property(
            model,
            prop,
            depth=depth,
            oracle_table=oracle_table,
            extended=extended,
            concrete_traces=concrete_traces,
            minimize=minimize,
        )
        for prop in properties
    ]
    return PropertyReport(
        target=target or model.name, verdicts=verdicts, depth=depth
    )


def check_properties_batch(
    jobs: Sequence[tuple[MealyMachine, Sequence[Property]]],
    workers: int = 1,
    **check_kwargs,
) -> list[PropertyReport]:
    """Fan suite evaluation over many models on a
    :class:`~repro.adapter.pool.BatchExecutor` (campaign-scale analyses).

    ``jobs`` pairs each model with its property suite; results are in
    job order.  ``check_kwargs`` (``depth``, ``minimize``, ...) apply to
    every job.
    """
    executor = BatchExecutor(workers)
    try:
        return executor.map(
            lambda job: check_properties(job[0], job[1], **check_kwargs),
            list(jobs),
        )
    finally:
        executor.close()


def formula_properties(formulas: Sequence[str]) -> list[Property]:
    """Ad-hoc LTLf formulas as anonymous properties (the ``--formula``
    CLI path; names are the formula text itself)."""
    return [
        Property.ltlf(name=f"formula: {text}", formula=text)
        for text in formulas
    ]


def resolve_properties(
    target: str,
    suite: str | None = None,
    formulas: Sequence[str] = (),
    include_probes: bool = False,
) -> tuple[Property, ...]:
    """The properties to check for one target: suite plus ad-hoc formulas.

    ``suite`` names a :data:`~repro.registry.PROPERTY_REGISTRY` key
    explicitly (raises :class:`~repro.registry.RegistryError` when
    unknown); with ``suite=None`` the target's own suite is resolved by
    name/stem and an unregistered target simply contributes no suite
    properties.  Probe-tagged properties are dropped unless
    ``include_probes``.
    """
    from ..registry import PROPERTY_REGISTRY, resolve_property_suite

    if suite is not None:
        props = tuple(PROPERTY_REGISTRY.create(suite))
    else:
        props = resolve_property_suite(target) or ()
    if not include_probes:
        props = tuple(p for p in props if not p.is_probe)
    return props + tuple(formula_properties(formulas))

"""Trace-space statistics (paper section 6.2.2).

The paper quantifies the value of a learned model by comparing the raw
trace space against the traces the model makes it sufficient to check:
"for the alphabet above there are 329,554,456 traces of length up to 10,
however we only need to check 1210 and 715 of those traces".  The raw count
is ``sum(|Sigma|^k for k=1..10)``; the model-side count is the size of a
W-method-style test suite derived from the learned machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.mealy import MealyMachine
from ..core.trace import count_words


@dataclass(frozen=True)
class TraceReduction:
    """The headline numbers for one learned model."""

    alphabet_size: int
    max_length: int
    total_traces: int
    model_traces: int

    @property
    def reduction_factor(self) -> float:
        return self.total_traces / self.model_traces if self.model_traces else 0.0

    def render(self) -> str:
        return (
            f"alphabet={self.alphabet_size}, length<={self.max_length}: "
            f"{self.total_traces:,} raw traces vs {self.model_traces:,} "
            f"model traces ({self.reduction_factor:,.0f}x reduction)"
        )


def trace_reduction(
    machine: MealyMachine, max_length: int = 10, extra_states: int = 0
) -> TraceReduction:
    """Compute the paper's reduction statistic for a learned model.

    ``model_traces`` is the size of the W-method suite of the machine: the
    set of traces sufficient to certify equivalence against any SUL with at
    most ``num_states + extra_states`` states.  (The suite's words are not
    limited to ``max_length``; the raw count is, exactly as in the paper.)
    """
    suite = machine.w_method_suite(extra_states)
    return TraceReduction(
        alphabet_size=len(machine.input_alphabet),
        max_length=max_length,
        total_traces=count_words(len(machine.input_alphabet), max_length),
        model_traces=len(suite),
    )

"""Model diffing: explaining how two implementations differ.

Beyond the yes/no of equivalence checking, Prognosis produces evidence a
developer can act on: the size gap between models (how Issue 1 was first
noticed), a set of shortest diverging traces, and per-input behavioural
summaries.  All output is plain text, mirroring the visual comparisons the
paper used to communicate bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.alphabet import AbstractSymbol
from ..core.mealy import MealyMachine
from ..core.trace import Word
from .equivalence import DifferenceWitness, difference_witness, find_difference


@dataclass
class ModelDiff:
    """A structured comparison of two learned models."""

    name_a: str
    name_b: str
    states_a: int
    states_b: int
    transitions_a: int
    transitions_b: int
    equivalent: bool
    witnesses: list[DifferenceWitness] = field(default_factory=list)

    @property
    def size_gap(self) -> int:
        """Absolute state-count difference ("vastly different sizes")."""
        return abs(self.states_a - self.states_b)

    def render(self) -> str:
        lines = [
            f"model diff: {self.name_a} vs {self.name_b}",
            f"  states      : {self.states_a} vs {self.states_b}",
            f"  transitions : {self.transitions_a} vs {self.transitions_b}",
            f"  equivalent  : {self.equivalent}",
        ]
        for index, witness in enumerate(self.witnesses, start=1):
            lines.append(f"  divergence #{index}:")
            for line in witness.render().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-able encoding (campaign ``diff-*.json`` artifacts)."""
        return {
            "name_a": self.name_a,
            "name_b": self.name_b,
            "states_a": self.states_a,
            "states_b": self.states_b,
            "transitions_a": self.transitions_a,
            "transitions_b": self.transitions_b,
            "equivalent": self.equivalent,
            "size_gap": self.size_gap,
            "witnesses": [witness.to_dict() for witness in self.witnesses],
        }


def diff_models(
    a: MealyMachine, b: MealyMachine, max_witnesses: int = 5
) -> ModelDiff:
    """Compare two machines and collect up to ``max_witnesses`` divergences.

    Witnesses are gathered by exploring the product machine from every
    jointly reachable state pair and keeping distinct shortest diverging
    words (deduplicated by their input word).
    """
    diff = ModelDiff(
        name_a=a.name,
        name_b=b.name,
        states_a=a.num_states,
        states_b=b.num_states,
        transitions_a=a.num_transitions,
        transitions_b=b.num_transitions,
        equivalent=find_difference(a, b) is None,
    )
    if diff.equivalent:
        return diff
    seen_words: set[Word] = set()
    first = difference_witness(a, b)
    if first is not None:
        diff.witnesses.append(first)
        seen_words.add(first.word)
    # Extend each witness by one symbol to surface follow-on divergences.
    frontier = [w.word for w in diff.witnesses]
    while frontier and len(diff.witnesses) < max_witnesses:
        base = frontier.pop(0)
        for symbol in a.input_alphabet:
            candidate = base + (symbol,)
            if candidate in seen_words:
                continue
            outputs_a = a.run(candidate)
            outputs_b = b.run(candidate)
            if outputs_a[-1] != outputs_b[-1]:
                seen_words.add(candidate)
                diff.witnesses.append(
                    DifferenceWitness(
                        word=candidate,
                        trace_a=a.trace(candidate),
                        trace_b=b.trace(candidate),
                        name_a=a.name,
                        name_b=b.name,
                    )
                )
                if len(diff.witnesses) >= max_witnesses:
                    break
                frontier.append(candidate)
    return diff


def behavioural_summary(machine: MealyMachine) -> dict[AbstractSymbol, set[AbstractSymbol]]:
    """For each input symbol, the set of outputs it can ever produce.

    This coarse view is how a "supposedly variable value that is actually
    constant" (Issue 4) shows up at a glance: the output set is a singleton.
    """
    summary: dict[AbstractSymbol, set[AbstractSymbol]] = {
        symbol: set() for symbol in machine.input_alphabet
    }
    for transition in machine.transitions():
        summary[transition.input].add(transition.output)
    return summary

"""The QUIC property suite (paper section 6.2.2).

The paper checks learned models against "a subset of the properties from
IETF's Draft 29", e.g. *an endpoint must not send data on a stream at or
beyond the final size* and handshake-ordering rules.  This module
packages the checkable subset as :class:`~repro.analysis.property_api
.Property` trace predicates and registers them as the ``quic`` suite, so
``repro properties quic-google`` and property campaigns discover them by
target name.

The suite deliberately includes one *design probe* (close-frame
bundling, tagged :data:`~repro.analysis.property_api.TAG_PROBE`): it
differs by design decision between implementations, illustrating the
paper's point that a difference is "not necessarily a bug, it can also
signal different design decisions".
"""

from __future__ import annotations

from ..core.trace import IOTrace
from ..registry import register_properties
from .property_api import Property


def _outputs_with(trace: IOTrace, fragment: str) -> list[int]:
    return [i for i, o in enumerate(trace.outputs) if fragment in str(o)]


def _inputs_with(trace: IOTrace, fragment: str) -> list[int]:
    return [i for i, s in enumerate(trace.inputs) if fragment in str(s)]


def handshake_done_only_after_finished(trace: IOTrace) -> bool:
    """The server may signal HANDSHAKE_DONE only after the client's
    Finished (a HANDSHAKE[ACK,CRYPTO] input) -- RFC 9001 section 4.1.2."""
    done_positions = [
        i
        for i in _outputs_with(trace, "HANDSHAKE_DONE")
        # only 1-RTT HANDSHAKE_DONE outputs, not echoes of our input
    ]
    if not done_positions:
        return True
    finished_positions = _inputs_with(trace, "HANDSHAKE(?,?)[ACK,CRYPTO]")
    if not finished_positions:
        return False
    return min(done_positions) >= min(finished_positions)


def no_server_flight_without_hello(trace: IOTrace) -> bool:
    """CRYPTO responses require a ClientHello first (INITIAL[CRYPTO])."""
    crypto_positions = _outputs_with(trace, "[ACK,CRYPTO]")
    if not crypto_positions:
        return True
    hello_positions = _inputs_with(trace, "INITIAL(?,?)[CRYPTO]")
    if not hello_positions:
        return False
    return min(crypto_positions) >= min(hello_positions)


def close_is_terminal_for_data(trace: IOTrace) -> bool:
    """After the server closes, it never starts *new* application data.

    Close retransmissions may still bundle the close frame itself; this
    property flags outputs that carry STREAM data *without* the close.
    """
    close_positions = _outputs_with(trace, "CONNECTION_CLOSE")
    if not close_positions:
        return True
    first_close = min(close_positions)
    for i in range(first_close + 1, len(trace)):
        output = str(trace.outputs[i])
        if "STREAM" in output and "CONNECTION_CLOSE" not in output:
            return False
    return True


def client_done_draws_close(trace: IOTrace) -> bool:
    """A client-sent HANDSHAKE_DONE after the handshake must be answered
    with a connection error (it is a server-only frame, RFC 9000 19.20).

    Only 1-RTT (SHORT) packets are held to this: Initial/Handshake-space
    packets may legitimately be dropped once their keys are discarded.
    """
    # The handshake is complete when the *server* signalled HANDSHAKE_DONE.
    finished = _outputs_with(trace, "HANDSHAKE_DONE")
    if not finished:
        return True  # handshake never completed; nothing to check
    start = min(finished)
    for i in range(start + 1, len(trace)):
        text = str(trace.inputs[i])
        if text.startswith("SHORT") and "HANDSHAKE_DONE]" in text:
            # Either the violation is answered with a close now, or the
            # connection was already closed earlier (silence is then fine).
            closed_before = any(
                "CONNECTION_CLOSE" in str(o) for o in trace.outputs[:i]
            )
            closed_after = any(
                "CONNECTION_CLOSE" in str(o) for o in trace.outputs[i:]
            )
            return closed_before or closed_after
    return True


def single_packet_close(trace: IOTrace) -> bool:
    """Design-decision probe: closes are single packets (Quiche style).

    Google bundles closes across encryption levels, so this property holds
    for the Quiche-like model and fails for the Google-like one -- a
    difference, not a bug.
    """
    for output in trace.outputs:
        text = str(output)
        if "CONNECTION_CLOSE" in text and text.count("],") >= 1:
            return False
    return True


STANDARD_PROPERTIES: tuple[Property, ...] = (
    Property.trace(
        name="handshake-done-after-finished",
        description="HANDSHAKE_DONE only after the client's Finished",
        predicate=handshake_done_only_after_finished,
    ),
    Property.trace(
        name="no-flight-without-hello",
        description="server CRYPTO flights require a ClientHello",
        predicate=no_server_flight_without_hello,
    ),
    Property.trace(
        name="close-terminal-for-data",
        description="no fresh stream data after CONNECTION_CLOSE",
        predicate=close_is_terminal_for_data,
    ),
    Property.trace(
        name="client-done-draws-close",
        description="client-sent HANDSHAKE_DONE is a protocol violation",
        predicate=client_done_draws_close,
    ),
)

DESIGN_PROBES: tuple[Property, ...] = (
    Property.trace(
        name="single-packet-close",
        description="closes are single packets (differs by implementation)",
        predicate=single_packet_close,
        tags=("probe",),
    ),
)


@register_properties("quic")
def quic_properties() -> tuple[Property, ...]:
    """The registered ``quic`` suite: standard checks plus the probe."""
    return STANDARD_PROPERTIES + DESIGN_PROBES

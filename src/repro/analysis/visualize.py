"""Model visualization: DOT export and plain-text rendering.

The appendix figures of the paper are GraphViz renderings of learned
machines; :func:`to_dot` emits the same structure (and
:func:`side_by_side` prints two models' transition tables next to each
other, the textual analogue of the visual comparison that helped explain
Issue 3 to developers).
"""

from __future__ import annotations

from ..core.extended import ExtendedMealyMachine
from ..core.mealy import MealyMachine


def to_dot(machine: MealyMachine | ExtendedMealyMachine) -> str:
    """GraphViz DOT text for a (possibly extended) machine."""
    return machine.to_dot()


def transition_table(machine: MealyMachine) -> str:
    """A fixed-width transition table: rows = states, columns = inputs."""
    symbols = list(machine.input_alphabet)
    headers = ["state"] + [str(s) for s in symbols]
    rows: list[list[str]] = []
    for state in machine.states:
        row = [str(state)]
        for symbol in symbols:
            target, output = machine.step(state, symbol)
            row.append(f"{output} -> {target}")
        rows.append(row)
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rows))
        for col in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def side_by_side(a: MealyMachine, b: MealyMachine) -> str:
    """Two transition tables rendered next to each other's summary.

    Differing cells are marked with ``*`` so a reader can scan for the
    divergence (states are matched by canonical BFS relabeling).
    """
    a_canon = a.minimize()
    b_canon = b.minimize()
    symbols = list(a_canon.input_alphabet)
    lines = [f"{a.name} ({a_canon.num_states} states) vs {b.name} ({b_canon.num_states} states)"]
    shared_states = min(a_canon.num_states, b_canon.num_states)
    for index in range(shared_states):
        state = f"s{index}"
        lines.append(f"  {state}:")
        for symbol in symbols:
            out_a = (
                str(a_canon.output(state, symbol))
                if state in a_canon.states
                else "-"
            )
            out_b = (
                str(b_canon.output(state, symbol))
                if state in b_canon.states
                else "-"
            )
            marker = " " if out_a == out_b else "*"
            lines.append(f"  {marker} {symbol}: {out_a} || {out_b}")
    if a_canon.num_states != b_canon.num_states:
        lines.append(
            f"  (state counts differ: {a_canon.num_states} vs {b_canon.num_states})"
        )
    return "\n".join(lines)


def summary(machine: MealyMachine) -> str:
    """One-line summary used throughout the benchmarks."""
    return (
        f"{machine.name}: {machine.num_states} states, "
        f"{machine.num_transitions} transitions"
    )

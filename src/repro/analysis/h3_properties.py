"""The HTTP/3 property suite (RFC 9114 framing and shutdown rules).

Registered as the ``http3`` suite (covering ``http3`` and
``http3-buggy`` via the family stem).  The headline check is
``goaway-drain-rejects-new``: RFC 9114 section 5.2 requires a server
that acknowledged a client's GOAWAY to keep *answering* -- rejecting new
requests with H3_REQUEST_REJECTED resets so the client can retry them
elsewhere.  The seeded
:attr:`~repro.h3.server.H3ServerConfig.goaway_teardown_bug` server sends
the same GOAWAY but then tears the connection down, so new requests
disappear into silence -- exactly what this property flags.

Request-stream-id monotonicity (RFC 9000 section 2.1: client
bidirectional streams are 0, 4, 8, ... in order of creation) lives below
the abstraction and is checked against the Oracle Table's concrete
parameters, like the HTTP/2 stream-id check.
"""

from __future__ import annotations

from ..core.oracle_table import OracleTable
from ..core.trace import IOTrace
from ..registry import register_properties
from .property_api import Property


def _output_streams(output: object) -> list[list[str]]:
    """Split a rendered H3 output ``{HEADERS+DATA[FIN],RST}`` into
    per-stream frame-kind sequences (FIN markers stripped)."""
    text = str(output).strip()
    if not (text.startswith("{") and text.endswith("}")):
        return []
    body = text[1:-1]
    if not body:
        return []
    return [
        [frame.replace("[FIN]", "") for frame in item.split("+")]
        for item in body.split(",")
    ]


def _server_goaway_before(trace: IOTrace, index: int) -> bool:
    """True when some response before step ``index`` carried GOAWAY."""
    return any("GOAWAY" in str(trace.outputs[i]) for i in range(index))


def data_after_headers_per_stream(trace: IOTrace) -> bool:
    """Within each response stream, DATA never precedes HEADERS -- an
    HTTP/3 response starts with a header section (RFC 9114 section 4.1)."""
    for output in trace.outputs:
        for stream in _output_streams(output):
            if "DATA" in stream and "HEADERS" in stream:
                if stream.index("DATA") < stream.index("HEADERS"):
                    return False
            elif "DATA" in stream:
                return False  # DATA with no HEADERS at all
    return True


def settings_draws_settings(trace: IOTrace) -> bool:
    """The first client SETTINGS on a live connection opens the server's
    control stream, whose first frame is its own SETTINGS (section 6.2.1)."""
    for i, symbol in enumerate(trace.inputs):
        if str(symbol) == "SETTINGS":
            if _server_goaway_before(trace, i):
                return True  # connection already erred or drained
            return "SETTINGS" in str(trace.outputs[i])
    return True


def second_settings_is_error(trace: IOTrace) -> bool:
    """A second SETTINGS frame on the control stream is a connection
    error (H3_FRAME_UNEXPECTED, section 7.2.4): the server must answer
    with GOAWAY, not ignore it."""
    seen_settings = False
    for i, symbol in enumerate(trace.inputs):
        if str(symbol) != "SETTINGS":
            continue
        if seen_settings and not _server_goaway_before(trace, i):
            return "GOAWAY" in str(trace.outputs[i])
        seen_settings = True
    return True


def goaway_drain_rejects_new(trace: IOTrace) -> bool:
    """After a graceful shutdown handshake the server must still answer.

    Section 5.2: once the server has responded to the client's GOAWAY it
    drains -- completing open requests and *rejecting* new ones with a
    reset -- rather than going silent.  A post-drain HEADERS that opens a
    *new* request stream must therefore draw a non-empty response
    (``{RST}``); trailers continuing a pre-drain stream may legitimately
    stay silent until their FIN, so the predicate mirrors the client's
    deterministic stream targeting to tell the two apart.  The
    ``goaway_teardown_bug`` server violates this at depth 3:
    ``SETTINGS, GOAWAY, HEADERS[FIN]`` answers ``{}`` instead of
    ``{RST}``.
    """
    drained = False
    configured = False
    open_request = False
    for i, symbol in enumerate(trace.inputs):
        text = str(symbol)
        output = str(trace.outputs[i])
        if text == "GOAWAY" and "GOAWAY" in output and configured:
            # Only a GOAWAY on a *configured* connection starts a drain;
            # GOAWAY-before-SETTINGS is the H3_MISSING_SETTINGS error.
            drained = True
        elif drained:
            if text.startswith("HEADERS") and not open_request:
                if output == "{}":
                    return False
            if "GOAWAY" in output:
                # A post-drain *connection error* (e.g. a second
                # SETTINGS): the connection is closed outright now, so
                # subsequent silence is legitimate.
                return True
        # Mirror the client's stream targeting: HEADERS/DATA without FIN
        # leave a request stream open, FIN or CANCEL close it.
        if text == "SETTINGS":
            configured = True
        elif text.startswith(("HEADERS", "DATA")):
            open_request = "[FIN]" not in text
        elif text == "CANCEL":
            open_request = False
    return True


# ---------------------------------------------------------------------------
# Below-abstraction check: request-stream-id discipline over concrete params
# ---------------------------------------------------------------------------

def request_stream_id_violations(
    oracle_table: OracleTable,
) -> list[tuple[IOTrace, int]]:
    """Entries whose request-stream ids break the QUIC numbering rules.

    RFC 9000 section 2.1: client-initiated bidirectional streams carry
    ids ``0, 4, 8, ...`` and are created in increasing order.  For each
    recorded query, every request-frame input (HEADERS/DATA/CANCEL) must
    target either an already-used stream (trailers, body, cancellation)
    or a fresh id that is a multiple of 4 and larger than every id used
    before.  Returns ``(abstract trace, offending step index)`` pairs.
    """
    violations: list[tuple[IOTrace, int]] = []
    for entry in oracle_table:
        seen: set[int] = set()
        highest = -4
        for index, step in enumerate(entry.steps):
            kind = str(step.input_symbol)
            if not kind.startswith(("HEADERS", "DATA", "CANCEL")):
                continue
            sid = step.input_params.get("sid", 0)
            if sid in seen:
                continue  # the still-open request stream
            if sid % 4 != 0 or sid <= highest:
                violations.append((entry.abstract, index))
                break
            highest = sid
            seen.add(sid)
    return violations


def check_request_stream_ids(oracle_table: OracleTable) -> bool:
    """True when every recorded query used well-ordered request streams."""
    return not request_stream_id_violations(oracle_table)


STANDARD_PROPERTIES: tuple[Property, ...] = (
    Property.trace(
        name="data-after-headers-per-stream",
        description="response DATA only after HEADERS on each stream",
        predicate=data_after_headers_per_stream,
    ),
    Property.trace(
        name="settings-draws-settings",
        description="client SETTINGS opens the server control stream",
        predicate=settings_draws_settings,
    ),
    Property.trace(
        name="second-settings-errors",
        description="a second SETTINGS is a connection error (GOAWAY)",
        predicate=second_settings_is_error,
    ),
    Property.trace(
        name="goaway-drain-rejects-new",
        description="post-GOAWAY requests are rejected, not ignored",
        predicate=goaway_drain_rejects_new,
    ),
    Property.oracle(
        name="request-stream-ids-ordered",
        description="request streams are 0,4,8,... in creation order",
        check=request_stream_id_violations,
    ),
)


@register_properties("http3")
def h3_properties() -> tuple[Property, ...]:
    """The registered ``http3`` suite (covers ``http3-buggy`` by stem)."""
    return STANDARD_PROPERTIES

"""LTLf: linear temporal logic over finite traces.

Prognosis lets users state temporal properties such as "packet numbers are
always increasing" or "a CONNECTION_CLOSE is never followed by application
data" and checks them against learned models.  Formulas are evaluated over
finite I/O traces with the standard LTLf semantics (X is the *strong*
next: it fails at the last step).

The surface syntax is a tiny combinator DSL plus a parser for a compact
textual form::

    G (out != CLOSE)            # globally
    F (out == DONE)             # eventually
    (in == SYN) -> X (out == SYNACK)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.alphabet import AbstractSymbol
from ..core.trace import IOTrace


class LTLError(ValueError):
    """Raised on parse errors."""


@dataclass(frozen=True)
class Step:
    """One evaluation position: the input and output at index i."""

    input: AbstractSymbol
    output: AbstractSymbol


Predicate = Callable[[Step], bool]


class Formula:
    """Base class: an LTLf formula evaluable on a finite trace."""

    def holds_at(self, trace: Sequence[Step], index: int) -> bool:
        raise NotImplementedError

    def holds(self, trace: IOTrace) -> bool:
        steps = [Step(i, o) for i, o in trace]
        if not steps:
            return True  # the empty trace satisfies everything (vacuously)
        return self.holds_at(steps, 0)

    # -- combinators -----------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Or(Not(self), other)


@dataclass(frozen=True)
class Atom(Formula):
    predicate: Predicate
    description: str = "atom"

    def holds_at(self, trace: Sequence[Step], index: int) -> bool:
        return self.predicate(trace[index])

    def __repr__(self) -> str:  # pragma: no cover
        return self.description


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula

    def holds_at(self, trace: Sequence[Step], index: int) -> bool:
        return not self.inner.holds_at(trace, index)


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def holds_at(self, trace: Sequence[Step], index: int) -> bool:
        return self.left.holds_at(trace, index) and self.right.holds_at(trace, index)


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def holds_at(self, trace: Sequence[Step], index: int) -> bool:
        return self.left.holds_at(trace, index) or self.right.holds_at(trace, index)


@dataclass(frozen=True)
class Next(Formula):
    """Strong next: requires a successor position."""

    inner: Formula

    def holds_at(self, trace: Sequence[Step], index: int) -> bool:
        return index + 1 < len(trace) and self.inner.holds_at(trace, index + 1)


@dataclass(frozen=True)
class Globally(Formula):
    inner: Formula

    def holds_at(self, trace: Sequence[Step], index: int) -> bool:
        return all(self.inner.holds_at(trace, i) for i in range(index, len(trace)))


@dataclass(frozen=True)
class Eventually(Formula):
    inner: Formula

    def holds_at(self, trace: Sequence[Step], index: int) -> bool:
        return any(self.inner.holds_at(trace, i) for i in range(index, len(trace)))


@dataclass(frozen=True)
class Until(Formula):
    left: Formula
    right: Formula

    def holds_at(self, trace: Sequence[Step], index: int) -> bool:
        for i in range(index, len(trace)):
            if self.right.holds_at(trace, i):
                return True
            if not self.left.holds_at(trace, i):
                return False
        return False


# ---------------------------------------------------------------------------
# Atom builders
# ---------------------------------------------------------------------------

def input_is(label: str) -> Atom:
    return Atom(lambda s, l=label: str(s.input) == l, f"in == {label}")


def output_is(label: str) -> Atom:
    return Atom(lambda s, l=label: str(s.output) == l, f"out == {label}")


def input_contains(fragment: str) -> Atom:
    return Atom(lambda s, f=fragment: f in str(s.input), f"in ~ {fragment}")


def output_contains(fragment: str) -> Atom:
    return Atom(lambda s, f=fragment: f in str(s.output), f"out ~ {fragment}")


# ---------------------------------------------------------------------------
# Parser for the compact textual syntax
# ---------------------------------------------------------------------------

# Two-char operators first (so "!=" beats "!"), then punctuation, then
# symbol labels: a brace multiset like "{HANDSHAKE(?,?)[CRYPTO]}", or a word
# optionally followed by its "(...)" parameters and "[...]" frame list --
# precise enough that the closing paren of a grouping never glues onto a
# label.
_TOKEN_RE = re.compile(
    r"\s*(->|&&|\|\||==|!=|~|!|\(|\)|"
    r"\{[^}]*\}|"
    r"[A-Za-z0-9_+?]+(?:\([^)]*\))?(?:\[[^\]]*\])?)"
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise LTLError(f"cannot tokenize {text[position:]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent: implication < or < and < unary < atoms."""

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def take(self, expected: str | None = None) -> str:
        token = self.peek()
        if token is None:
            raise LTLError("unexpected end of formula")
        if expected is not None and token != expected:
            raise LTLError(f"expected {expected!r}, got {token!r}")
        self.position += 1
        return token

    def parse(self) -> Formula:
        formula = self._implication()
        if self.peek() is not None:
            raise LTLError(f"trailing tokens: {self.tokens[self.position:]}")
        return formula

    def _implication(self) -> Formula:
        left = self._until()
        if self.peek() == "->":
            self.take()
            return left.implies(self._implication())
        return left

    def _until(self) -> Formula:
        left = self._disjunction()
        if self.peek() == "U":
            self.take()
            return Until(left, self._until())
        return left

    def _disjunction(self) -> Formula:
        left = self._conjunction()
        while self.peek() == "||":
            self.take()
            left = Or(left, self._conjunction())
        return left

    def _conjunction(self) -> Formula:
        left = self._unary()
        while self.peek() == "&&":
            self.take()
            left = And(left, self._unary())
        return left

    def _unary(self) -> Formula:
        token = self.peek()
        if token == "!":
            self.take()
            return Not(self._unary())
        if token == "G":
            self.take()
            return Globally(self._unary())
        if token == "F":
            self.take()
            return Eventually(self._unary())
        if token == "X":
            self.take()
            return Next(self._unary())
        if token == "(":
            self.take()
            inner = self._implication()
            self.take(")")
            return inner
        return self._atom()

    def _atom(self) -> Formula:
        field = self.take()
        if field not in ("in", "out"):
            raise LTLError(f"expected 'in' or 'out', got {field!r}")
        operator = self.take()
        value = self.take()
        if operator == "==":
            return input_is(value) if field == "in" else output_is(value)
        if operator == "!=":
            atom = input_is(value) if field == "in" else output_is(value)
            return Not(atom)
        if operator == "~":
            return input_contains(value) if field == "in" else output_contains(value)
        raise LTLError(f"unknown operator {operator!r}")


def parse_ltl(text: str) -> Formula:
    """Parse the compact textual syntax into a formula."""
    return _Parser(_tokenize(text)).parse()

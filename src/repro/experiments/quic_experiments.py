"""QUIC experiment drivers: E4 (learned models) and E5 (trace reduction).

Paper targets (section 6.2.2): Google's model has 12 states and 84
transitions (24,301 queries on the authors' setup); Quiche's has 8 states
and 56 transitions (12,301 queries); mvfst cannot be learned
deterministically.  The trace-space statistic: 329,554,456 traces of
length <= 10 over the 7-symbol alphabet versus 1,210 / 715 model traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..adapter.quic_adapter import QUICAdapterSUL
from ..analysis.statistics import TraceReduction, trace_reduction
from ..framework import LearningReport, Prognosis
from ..learn.nondeterminism import NondeterminismError, NondeterminismPolicy
from ..netsim import SimulatedNetwork
from ..quic.connection import QUICServer
from ..quic.impls.google import google_server
from ..quic.impls.mvfst import mvfst_server
from ..quic.impls.quiche import quiche_server
from ..quic.impls.tracker import TrackerConfig

PAPER_GOOGLE_STATES = 12
PAPER_GOOGLE_TRANSITIONS = 84
PAPER_QUICHE_STATES = 8
PAPER_QUICHE_TRANSITIONS = 56
PAPER_GOOGLE_QUERIES = 24_301
PAPER_QUICHE_QUERIES = 12_301
PAPER_TOTAL_TRACES = 329_554_456
PAPER_GOOGLE_MODEL_TRACES = 1210
PAPER_QUICHE_MODEL_TRACES = 715

SERVER_FACTORIES: dict[str, Callable[..., QUICServer]] = {
    "google": google_server,
    "quiche": quiche_server,
    "mvfst": mvfst_server,
}


@dataclass
class QUICExperiment:
    prognosis: Prognosis
    report: LearningReport

    @property
    def model(self):
        return self.report.model


def make_quic_sul(
    implementation: str,
    seed: int = 5,
    retry_enabled: bool = False,
    tracker_config: TrackerConfig | None = None,
) -> QUICAdapterSUL:
    factory = SERVER_FACTORIES[implementation]

    def build(network: SimulatedNetwork) -> QUICServer:
        return factory(network, retry_enabled=retry_enabled, seed=seed + 11)

    return QUICAdapterSUL(build, seed=seed, tracker_config=tracker_config)


def learn_quic(
    implementation: str,
    seed: int = 5,
    learner: str = "ttt",
    extra_states: int = 1,
    retry_enabled: bool = False,
    tracker_config: TrackerConfig | None = None,
    nondeterminism_policy: NondeterminismPolicy | None = None,
    workers: int = 1,
) -> QUICExperiment:
    """Learn one QUIC implementation's model.

    Raises :class:`NondeterminismError` for mvfst (with the default
    policy), exactly as Prognosis's nondeterminism check does.  With
    ``workers > 1`` the query batches are fanned across a pool of
    identically-seeded adapter instances.
    """
    if nondeterminism_policy is None and implementation == "mvfst":
        nondeterminism_policy = NondeterminismPolicy(
            min_repeats=3, max_repeats=8, certainty=0.95
        )
    prognosis = Prognosis(
        sul_factory=lambda: make_quic_sul(
            implementation,
            seed=seed,
            retry_enabled=retry_enabled,
            tracker_config=tracker_config,
        ),
        workers=workers,
        learner=learner,
        extra_states=extra_states,
        nondeterminism_policy=nondeterminism_policy,
        name=f"quic-{implementation}",
    )
    return QUICExperiment(prognosis=prognosis, report=prognosis.learn())


def quic_trace_reduction(experiment: QUICExperiment) -> TraceReduction:
    """E5: raw trace count vs model test-suite size for one model."""
    return trace_reduction(experiment.model, max_length=10)

"""QUIC experiment drivers: E4 (learned models) and E5 (trace reduction).

Paper targets (section 6.2.2): Google's model has 12 states and 84
transitions (24,301 queries on the authors' setup); Quiche's has 8 states
and 56 transitions (12,301 queries); mvfst cannot be learned
deterministically.  The trace-space statistic: 329,554,456 traces of
length <= 10 over the 7-symbol alphabet versus 1,210 / 715 model traces.

Like the TCP drivers, these wrap :class:`~repro.spec.ExperimentSpec` runs
against the ``quic-<implementation>`` registry targets.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..adapter.quic_adapter import QUICAdapterSUL, build_quic_sul
from ..analysis.statistics import TraceReduction, trace_reduction
from ..learn.nondeterminism import NondeterminismPolicy
from ..quic.impls.tracker import TrackerConfig
from ..spec import ComponentSpec, ExperimentSpec
from .base import Experiment

PAPER_GOOGLE_STATES = 12
PAPER_GOOGLE_TRANSITIONS = 84
PAPER_QUICHE_STATES = 8
PAPER_QUICHE_TRANSITIONS = 56
PAPER_GOOGLE_QUERIES = 24_301
PAPER_QUICHE_QUERIES = 12_301
PAPER_TOTAL_TRACES = 329_554_456
PAPER_GOOGLE_MODEL_TRACES = 1210
PAPER_QUICHE_MODEL_TRACES = 715

@dataclass
class QUICExperiment(Experiment):
    """One complete QUIC learning run plus its framework object."""


def make_quic_sul(
    implementation: str,
    seed: int = 5,
    retry_enabled: bool = False,
    tracker_config: TrackerConfig | None = None,
) -> QUICAdapterSUL:
    """Build the SUL for one named implementation (registry-backed)."""
    return build_quic_sul(
        implementation,
        seed=seed,
        retry_enabled=retry_enabled,
        tracker_config=tracker_config,
    )


def learn_quic(
    implementation: str,
    seed: int = 5,
    learner: str = "ttt",
    extra_states: int = 1,
    retry_enabled: bool = False,
    tracker_config: TrackerConfig | None = None,
    nondeterminism_policy: NondeterminismPolicy | None = None,
    workers: int = 1,
) -> QUICExperiment:
    """Learn one QUIC implementation's model.

    Raises :class:`NondeterminismError` for mvfst (with the default
    policy), exactly as Prognosis's nondeterminism check does.  With
    ``workers > 1`` the query batches are fanned across a pool of
    identically-seeded adapter instances.
    """
    if nondeterminism_policy is None and implementation == "mvfst":
        nondeterminism_policy = NondeterminismPolicy(
            min_repeats=3, max_repeats=8, certainty=0.95
        )
    target_params: dict = {"seed": seed, "retry_enabled": retry_enabled}
    if tracker_config is not None:
        target_params["tracker_config"] = asdict(tracker_config)
    middleware = []
    if nondeterminism_policy is not None:
        middleware.append(
            ComponentSpec(
                "majority-vote",
                {
                    "min_repeats": nondeterminism_policy.min_repeats,
                    "max_repeats": nondeterminism_policy.max_repeats,
                    "certainty": nondeterminism_policy.certainty,
                },
            )
        )
    middleware.append(ComponentSpec("cache"))
    return QUICExperiment.run(
        ExperimentSpec(
            target=f"quic-{implementation}",
            target_params=target_params,
            learner=learner,
            equivalence=[ComponentSpec("wmethod", {"extra_states": extra_states})],
            middleware=middleware,
            workers=workers,
            name=f"quic-{implementation}",
        )
    )


def quic_trace_reduction(experiment: QUICExperiment) -> TraceReduction:
    """E5: raw trace count vs model test-suite size for one model."""
    return trace_reduction(experiment.model, max_length=10)

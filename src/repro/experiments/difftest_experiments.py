"""Differential conformance campaign drivers, one per protocol workload.

Each driver wires :class:`~repro.campaign.DiffCampaign` to a concrete
family of implementations and returns the full
:class:`~repro.campaign.DiffTestResult` -- the cross-implementation
verdict matrix the paper's section 7 frames as the payoff of learned
models: high-quality differential tests in a closed-box setting.
"""

from __future__ import annotations

from ..campaign import DiffCampaign, DiffTestResult
from ..spec import ExperimentSpec


def difftest_quic(
    learner: str = "ttt",
    seed: int = 0,
    workers: int = 1,
    kinds=("wmethod",),
    output_dir=None,
) -> DiffTestResult:
    """The three-implementation QUIC matrix (google x mvfst x quiche).

    google and quiche learn and cross-replay; mvfst aborts with
    nondeterminism (Issue 2), so its row and column carry ``error``
    verdicts -- the matrix records *why* a pair has no verdict instead of
    silently shrinking.
    """
    return DiffCampaign.family(
        "quic",
        learner=learner,
        seed=seed,
        kinds=kinds,
        workers=workers,
        output_dir=output_dir,
    ).run()


def difftest_http2(
    learner: str = "ttt",
    seed: int = 0,
    workers: int = 1,
    kinds=("wmethod",),
    output_dir=None,
) -> DiffTestResult:
    """Conformant vs RST_STREAM-on-closed-stream HTTP/2 servers.

    The divergent cell's minimized witness is the shortest frame sequence
    exposing the section 5.1 quirk (request a stream, close it, reset it).
    """
    return DiffCampaign.family(
        "http2",
        learner=learner,
        seed=seed,
        kinds=kinds,
        workers=workers,
        output_dir=output_dir,
    ).run()


def difftest_http3(
    learner: str = "ttt",
    seed: int = 8,
    workers: int = 1,
    kinds=("wmethod",),
    output_dir=None,
) -> DiffTestResult:
    """Conformant vs GOAWAY-teardown HTTP/3 servers, composed over QUIC.

    The first differential campaign over a *composed* (layered-adapter)
    family.  The divergent cell's minimized witness is the shortest
    symbol sequence exposing the RFC 9114 section 5.2 quirk: after the
    shutdown handshake (SETTINGS, GOAWAY) the conformant server rejects
    a new request with a reset (``{RST}``) while the buggy one has torn
    the connection down and answers nothing (``{}``).
    """
    return DiffCampaign.family(
        "http3",
        learner=learner,
        seed=seed,
        kinds=kinds,
        workers=workers,
        output_dir=output_dir,
    ).run()


def difftest_tcp(
    learner: str = "ttt",
    seed: int = 0,
    workers: int = 1,
    kinds=("wmethod",),
    output_dir=None,
) -> DiffTestResult:
    """Linux-like TCP vs the same stack without challenge-ACK rate limiting.

    The two variants share the full 7-symbol alphabet, so this exercises
    the spec-based campaign path: same target key, different
    ``target_params``, distinct names.
    """
    specs = [
        ExperimentSpec(target="tcp", learner=learner, seed=seed, name="tcp"),
        ExperimentSpec(
            target="tcp",
            target_params={"challenge_ack_rate_limit": False},
            learner=learner,
            seed=seed,
            name="tcp-no-challenge-ack-limit",
        ),
    ]
    return DiffCampaign(
        specs,
        kinds=kinds,
        workers=workers,
        output_dir=output_dir,
    ).run()

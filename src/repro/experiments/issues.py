"""Drivers for the four issues of paper section 6.2.

Each function reproduces one issue end to end -- the learning/analysis
pipeline plus the specific evidence the paper reports -- and returns a
small result object the benchmarks and examples assert on and print.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..analysis.diff import ModelDiff, diff_models
from ..core.alphabet import parse_quic_symbol
from ..framework import Prognosis
from ..learn.nondeterminism import (
    NondeterminismError,
    estimate_response_distribution,
)
from ..learn.teacher import SULMembershipOracle
from ..quic.impls.mvfst import MVFST_RESET_PROBABILITY
from ..quic.impls.tracker import TrackerConfig
from ..synth.synthesizer import SynthesisResult
from .quic_experiments import QUICExperiment, learn_quic, make_quic_sul


# ---------------------------------------------------------------------------
# Issue 1: RFC imprecision around post-RETRY packet-number-space resets
# ---------------------------------------------------------------------------

@dataclass
class Issue1Result:
    """Model-size divergence between strict and lenient implementations."""

    strict: QUICExperiment
    lenient: QUICExperiment
    diff: ModelDiff

    @property
    def sizes(self) -> tuple[int, int]:
        return self.strict.model.num_states, self.lenient.model.num_states


def issue1_retry_divergence(seed: int = 5) -> Issue1Result:
    """Learn Google-like (strict) and Quiche-like (lenient) models with the
    RETRY mechanism enabled and the reference client resetting its packet
    -number spaces on retry (QUIC-Tracker's behaviour).

    The paper noticed "vastly different sizes" between implementations'
    models; exploring the difference exposed the RFC ambiguity that was
    subsequently fixed ("a server MAY abort the connection when a client
    resets their Packet Number Spaces").
    """
    with learn_quic("google", seed=seed, retry_enabled=True) as strict, \
            learn_quic("quiche", seed=seed, retry_enabled=True) as lenient:
        return Issue1Result(
            strict=strict,
            lenient=lenient,
            diff=diff_models(strict.model, lenient.model),
        )


# ---------------------------------------------------------------------------
# Issue 2: nondeterministic stateless resets in mvfst
# ---------------------------------------------------------------------------

@dataclass
class Issue2Result:
    error: NondeterminismError
    distribution: Counter
    reset_rate: float
    expected_rate: float = MVFST_RESET_PROBABILITY


def issue2_nondeterminism(seed: int = 5, samples: int = 200) -> Issue2Result:
    """Reproduce the mvfst bug: after INITIAL[CRYPTO] followed by a
    client-sent HANDSHAKE_DONE the connection closes, and further packets
    are answered with a stateless RESET only ~82% of the time.

    Learning must abort with a NondeterminismError; the response
    distribution of the offending query quantifies the bug.
    """
    try:
        learn_quic("mvfst", seed=seed)
    except NondeterminismError as error:
        nondeterminism = error
    else:
        raise AssertionError("mvfst learning unexpectedly converged")

    # Quantify the reset rate on the paper's trigger sequence.
    sul = make_quic_sul("mvfst", seed=seed + 100)
    try:
        oracle = SULMembershipOracle(sul)
        word = (
            parse_quic_symbol("INITIAL(?,?)[CRYPTO]"),
            parse_quic_symbol("HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]"),
            parse_quic_symbol("SHORT(?,?)[ACK,HANDSHAKE_DONE]"),
        )
        distribution = estimate_response_distribution(oracle, word, samples)
    finally:
        sul.close()
    resets = sum(
        count
        for outputs, count in distribution.items()
        if "STATELESS_RESET" in str(outputs[-1])
    )
    return Issue2Result(
        error=nondeterminism,
        distribution=distribution,
        reset_rate=resets / samples,
    )


# ---------------------------------------------------------------------------
# Issue 3: QUIC-Tracker re-sends the RETRY token from a random port
# ---------------------------------------------------------------------------

@dataclass
class Issue3Result:
    buggy: QUICExperiment
    fixed: QUICExperiment
    diff: ModelDiff

    @property
    def buggy_establishes(self) -> bool:
        return _can_establish(self.buggy)

    @property
    def fixed_establishes(self) -> bool:
        return _can_establish(self.fixed)


def _can_establish(experiment: QUICExperiment) -> bool:
    """Does any handshake trace in the model produce a HANDSHAKE_DONE?"""
    ch = parse_quic_symbol("INITIAL(?,?)[CRYPTO]")
    hc = parse_quic_symbol("HANDSHAKE(?,?)[ACK,CRYPTO]")
    outputs = experiment.model.run((ch, hc))
    return any("HANDSHAKE_DONE" in str(output) for output in outputs)


def issue3_retry_port(seed: int = 5) -> Issue3Result:
    """Learn the same strict server with the buggy and fixed reference
    client.  With the bug, the token returns from a new random port,
    address validation fails, and the learned model shows connection
    establishment is impossible -- the discrepancy that exposed the bug in
    the *reference* implementation itself.
    """
    with learn_quic(
        "quiche",
        seed=seed,
        retry_enabled=True,
        tracker_config=TrackerConfig(
            retry_port_bug=True, reset_pn_spaces_on_retry=False
        ),
    ) as buggy, learn_quic(
        "quiche",
        seed=seed,
        retry_enabled=True,
        tracker_config=TrackerConfig(
            retry_port_bug=False, reset_pn_spaces_on_retry=False
        ),
    ) as fixed:
        return Issue3Result(
            buggy=buggy, fixed=fixed, diff=diff_models(buggy.model, fixed.model)
        )


# ---------------------------------------------------------------------------
# Issue 4: Google's STREAM_DATA_BLOCKED.maximum_stream_data is constant 0
# ---------------------------------------------------------------------------

@dataclass
class Issue4Result:
    buggy_synthesis: SynthesisResult
    fixed_synthesis: SynthesisResult
    buggy_constant: int | None
    fixed_constant: int | None


def _blocked_probe_words() -> list[tuple]:
    """Input words that block the server's response stream under *varied*
    flow-control limits (raise-then-block paths the learner's shortest
    -path exploration rarely takes).  These are the "more example traces"
    the paper's synthesis algorithm solicits."""
    ch = parse_quic_symbol("INITIAL(?,?)[CRYPTO]")
    hc = parse_quic_symbol("HANDSHAKE(?,?)[ACK,CRYPTO]")
    st = parse_quic_symbol("SHORT(?,?)[ACK,STREAM]")
    md = parse_quic_symbol("SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA]")
    return [
        (ch, hc, st, st),
        (ch, hc, md, st, st),
        (ch, hc, md, md, st, st),
        (ch, hc, st, st, md, st, st),
        (ch, hc, md, st, st, md, st, st),
    ]


def _synthesize_sdb(prognosis: Prognosis, model) -> SynthesisResult:
    for word in _blocked_probe_words():
        prognosis.sul.query(word)
    synthesis = prognosis.synthesize(
        model,
        register_names=("r0",),
        output_fields=("max_stream_data",),
        input_fields=("max_stream_data",),
    )
    assert synthesis is not None, "STREAM_DATA_BLOCKED synthesis failed"
    return synthesis


def issue4_stream_data_blocked(seed: int = 5) -> Issue4Result:
    """Synthesize extended machines over the ``max_stream_data`` field of
    STREAM_DATA_BLOCKED frames for the buggy Google-like server and a
    fixed variant (appendix B.1).

    The buggy synthesis yields the constant 0 -- the forgotten development
    placeholder; the fixed server's values track live flow-control state,
    so no single constant fits them.
    """
    with learn_quic("google", seed=seed) as buggy:
        buggy_synthesis = _synthesize_sdb(buggy.prognosis, buggy.model)

    from ..quic.connection import QUICServer
    from ..quic.impls.google import google_profile
    from ..adapter.quic_adapter import QUICAdapterSUL

    def fixed_factory(network):
        profile = google_profile()
        profile.sdb_reports_zero = False
        return QUICServer(network, profile, seed=seed + 11)

    fixed_sul = QUICAdapterSUL(fixed_factory, seed=seed)
    with Prognosis(fixed_sul, name="quic-google-fixed") as fixed_prognosis:
        fixed_report = fixed_prognosis.learn()
        fixed_synthesis = _synthesize_sdb(fixed_prognosis, fixed_report.model)
    return Issue4Result(
        buggy_synthesis=buggy_synthesis,
        fixed_synthesis=fixed_synthesis,
        buggy_constant=buggy_synthesis.constant_output("max_stream_data"),
        fixed_constant=fixed_synthesis.constant_output("max_stream_data"),
    )

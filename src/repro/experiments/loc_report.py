"""E11: instrumentation-cost accounting (paper section 3.2).

The paper quantifies the key modularity claim by lines of code: the TCP
reference-implementation instrumentation took ~300 lines versus the
2,700-line hand-written mapper of prior work [22], and the QUIC
instrumentation ~2,000 lines on top of QUIC-Tracker's ~10,000.

We report the same breakdown for this repository: the protocol-agnostic
adapter machinery, the per-protocol instrumentation (adapters + reference
-client hooks), and the protocol substrates they instrument.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

PAPER_TCP_INSTRUMENTATION_LOC = 300
PAPER_TCP_MAPPER_LOC = 2700
PAPER_QUIC_INSTRUMENTATION_LOC = 2000
PAPER_QUIC_REFERENCE_LOC = 10_000


def _package_root() -> Path:
    return Path(__file__).resolve().parent.parent


def count_loc(relative_paths: list[str]) -> int:
    """Non-blank, non-comment source lines across the given files."""
    total = 0
    root = _package_root()
    for relative in relative_paths:
        path = root / relative
        for line in path.read_text().splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                total += 1
    return total


@dataclass(frozen=True)
class LocReport:
    tcp_instrumentation: int
    quic_instrumentation: int
    quic_reference: int
    adapter_framework: int

    def render(self) -> str:
        return "\n".join(
            [
                "instrumentation cost (non-blank, non-comment LoC):",
                f"  adapter framework (protocol-agnostic): {self.adapter_framework}",
                f"  TCP instrumentation : {self.tcp_instrumentation} "
                f"(paper: ~{PAPER_TCP_INSTRUMENTATION_LOC} vs "
                f"{PAPER_TCP_MAPPER_LOC}-line mapper)",
                f"  QUIC instrumentation: {self.quic_instrumentation} "
                f"(paper: ~{PAPER_QUIC_INSTRUMENTATION_LOC})",
                f"  QUIC reference impl : {self.quic_reference} "
                f"(paper: ~{PAPER_QUIC_REFERENCE_LOC} lines of Go)",
            ]
        )


def loc_report() -> LocReport:
    """Measure this repository's equivalents of the paper's LoC claims."""
    return LocReport(
        tcp_instrumentation=count_loc(
            ["adapter/tcp_adapter.py", "tcp/client.py"]
        ),
        quic_instrumentation=count_loc(
            ["adapter/quic_adapter.py", "quic/impls/tracker.py"]
        ),
        quic_reference=count_loc(
            [
                "quic/varint.py",
                "quic/frames.py",
                "quic/packet.py",
                "quic/crypto.py",
                "quic/transport_params.py",
                "quic/flowcontrol.py",
                "quic/streams.py",
                "quic/packetspace.py",
                "quic/connection.py",
                "quic/behavior.py",
            ]
        ),
        adapter_framework=count_loc(["adapter/sul.py", "adapter/queue.py"]),
    )

"""HTTP/3 experiment drivers: the fourth closed-box workload.

HTTP/3 is the first target expressed with the layered-adapter API: the
same :class:`~repro.h3.server.H3Server` logic rides
:class:`~repro.adapter.layered.QuicStreamTransport` via
:func:`~repro.adapter.layered.compose`, and everything above the adapter
(learner, oracles, executors, store) is untouched -- the paper's
protocol-agnosticism claim exercised one layer deeper, on a protocol
that is itself defined as riding another protocol's streams.

The conformant server learns as a 10-state machine (control-stream
setup, request-open/trailer tracking, GOAWAY drain, and the error
states); seeding the :attr:`~repro.h3.server.H3ServerConfig
.goaway_teardown_bug` tears connections down instead of draining, which
collapses the drain-side states and yields 7.

The scenario probes exercise what only the QUIC substrate can do:
independent request streams under deterministic loss (no head-of-line
blocking, contrasted against HTTP/2 over the reliable pipe),
connection-ID routed address migration, and 0-RTT session resumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..spec import ComponentSpec, ExperimentSpec
from .base import Experiment

#: The conformant server's learned model (see module docstring).
EXPECTED_H3_STATES = 10
EXPECTED_H3_TRANSITIONS = 70
#: The ``goaway_teardown_bug`` server's model: the drain states collapse.
EXPECTED_H3_BUGGY_STATES = 7


@dataclass
class H3Experiment(Experiment):
    """One complete HTTP/3 learning run plus its framework object."""


def learn_http3(
    seed: int = 8,
    learner: str = "ttt",
    extra_states: int = 1,
    workers: int = 1,
    goaway_teardown_bug: bool = False,
) -> H3Experiment:
    """Learn the in-process HTTP/3 server over the 7-symbol frame alphabet.

    ``goaway_teardown_bug`` seeds the RFC 9114 section 5.2 violation
    (connection torn down instead of drained after a client GOAWAY);
    ``workers > 1`` fans membership-query batches across a pool of
    identically-seeded composed stacks (same model, parallel execution).
    """
    target_params: dict = {"seed": seed}
    if goaway_teardown_bug:
        target_params["goaway_teardown_bug"] = True
    return H3Experiment.run(
        ExperimentSpec(
            target="http3",
            target_params=target_params,
            learner=learner,
            equivalence=[ComponentSpec("wmethod", {"extra_states": extra_states})],
            workers=workers,
            name="http3-buggy" if goaway_teardown_bug else "http3",
        )
    )


def run_http3_request(model) -> list[tuple[str, str]]:
    """Drive a learned model through SETTINGS setup + one full request."""
    from ..core.alphabet import parse_h3_symbol

    settings = parse_h3_symbol("SETTINGS")
    request = parse_h3_symbol("HEADERS[FIN]")
    outputs = model.run((settings, request))
    return [
        (str(settings), str(outputs[0])),
        (str(request), str(outputs[1])),
    ]


# ---------------------------------------------------------------------------
# Scenario probes: what only the QUIC substrate can do
# ---------------------------------------------------------------------------

def _queue_two_h3_requests(sul) -> None:
    """Queue two independent HEADERS[FIN] requests without exchanging."""
    for _ in range(2):
        actions, _ = sul.client.build("HEADERS", True)
        for action in actions:
            sul.transport.send(action.stream_id, action.data, fin=action.fin)


def hol_blocking_probe(seed: int = 8) -> dict:
    """Head-of-line blocking: HTTP/3 vs HTTP/2 under one dropped datagram.

    Both stacks pipeline two requests into a single two-datagram flight
    and lose the *first* datagram (:meth:`~repro.netsim.network
    .SimulatedNetwork.drop_next`).  Over QUIC streams each request rides
    its own packet, so the surviving second request is answered in the
    same exchange -- loss on one stream never stalls another.  Over the
    reliable byte pipe the surviving segment sits behind the gap until
    retransmission: in-order delivery answers *neither* request in the
    first exchange.  Both recover fully on the next exchange.

    Returns first-exchange and post-recovery answered-request counts for
    each stack.
    """
    from ..core.alphabet import parse_h3_symbol
    from ..http2.frames import FrameType
    from ..registry import SUL_REGISTRY, load_builtins

    load_builtins()
    result: dict = {}

    # -- HTTP/3 over independent QUIC streams ---------------------------
    h3 = SUL_REGISTRY.create("http3", seed=seed)
    try:
        h3.transport.reset()
        h3.app.reset()
        h3.app.step(parse_h3_symbol("SETTINGS"))  # configure the connection
        _queue_two_h3_requests(h3)
        h3.transport.network.drop_next(1)  # kill the first request's packet
        first = {
            e.stream_id
            for e in h3.transport.exchange()
            if e.kind == "data" and e.stream_id % 4 == 0
        }
        recovered = {
            e.stream_id
            for e in h3.transport.exchange()  # retransmits the lost packet
            if e.kind == "data" and e.stream_id % 4 == 0
        }
        result["h3_first_exchange_answered"] = len(first)
        result["h3_after_recovery_answered"] = len(first | recovered)
    finally:
        h3.close()

    # -- HTTP/2 over the reliable ordered pipe --------------------------
    h2 = SUL_REGISTRY.create("http2", seed=seed)
    try:
        h2.transport.reset()
        h2.app.reset()
        h2.client.exchange("SETTINGS")  # connection preface + handshake
        for _ in range(2):
            frame = h2.client.build_frame(
                "HEADERS", ("END_HEADERS", "END_STREAM")
            )
            h2.client._note_sent(frame)
            h2.transport.send(0, frame.encode())
        h2.transport.network.drop_next(1)  # kill the first request's segment

        def answered(events) -> int:
            responses = []
            for event in events:
                responses.extend(h2.client._frames.feed(event.data))
            return sum(
                1 for f in responses if f.frame_type == FrameType.HEADERS
            )

        first_count = answered(h2.transport.exchange(max_rounds=1))
        recovered_count = answered(h2.transport.exchange())
        result["h2_first_exchange_answered"] = first_count
        result["h2_after_recovery_answered"] = first_count + recovered_count
    finally:
        h2.close()
    return result


def migration_probe(seed: int = 8) -> dict:
    """Connection-ID routed migration: requests survive an address change.

    The client completes one request, rebinds to a brand-new UDP port
    mid-session (:meth:`~repro.adapter.layered.QuicStreamTransport
    .migrate`), and issues a second request.  Because the server routes
    on the connection ID and replies to each datagram's source address,
    the second request is answered identically -- no new handshake.
    """
    from ..core.alphabet import parse_h3_symbol
    from ..registry import SUL_REGISTRY, load_builtins

    load_builtins()
    sul = SUL_REGISTRY.create("http3", seed=seed)
    try:
        sul.transport.reset()
        sul.app.reset()
        sul.app.step(parse_h3_symbol("SETTINGS"))
        request = parse_h3_symbol("HEADERS[FIN]")
        before, _, _ = sul.app.step(request)
        port_before = sul.transport._endpoint.address[1]
        sul.transport.migrate()
        port_after = sul.transport._endpoint.address[1]
        after, _, _ = sul.app.step(request)
        return {
            "response_before": str(before),
            "response_after": str(after),
            "answered_after_migration": str(after) == str(before) != "{}",
            "port_changed": port_after != port_before,
            "migrations": sul.transport.stats["migrations"],
            "handshake_rounds": sul.transport.stats["handshake_rounds"],
        }
    finally:
        sul.close()


def resumption_probe(seed: int = 8) -> dict:
    """0-RTT session resumption: the second connection skips the handshake.

    With ``resumption=True`` the transport keeps the NEW_TOKEN session
    ticket across :meth:`reset`.  The first connection pays the CRYPTO
    handshake round; the second sends the ticket alongside early
    application data in its very first flight, so the request round *is*
    the connection's first round.
    """
    from ..core.alphabet import parse_h3_symbol
    from ..registry import SUL_REGISTRY, load_builtins

    load_builtins()
    sul = SUL_REGISTRY.create("http3", seed=seed, resumption=True)
    try:
        settings = parse_h3_symbol("SETTINGS")
        request = parse_h3_symbol("HEADERS[FIN]")

        def one_connection() -> tuple[str, int]:
            sul.transport.reset()
            sul.app.reset()
            sul.app.step(settings)
            output, _, _ = sul.app.step(request)
            return str(output), sul.transport.last_connection_rounds

        first_response, first_rounds = one_connection()
        second_response, second_rounds = one_connection()
        return {
            "first_response": first_response,
            "second_response": second_response,
            "first_connection_rounds": first_rounds,
            "second_connection_rounds": second_rounds,
            "zero_rtt": second_rounds < first_rounds,
            "handshake_rounds": sul.transport.stats["handshake_rounds"],
        }
    finally:
        sul.close()

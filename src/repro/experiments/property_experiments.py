"""Property-campaign drivers: section-5 analyses at fleet scale.

The paper's analyses -- temporal properties, quantity properties,
oracle-table checks -- are the product; these drivers run them the same
way the learning drivers run experiments: declaratively, over the
registry, concurrently on the campaign runner.

:func:`check_target_properties` is the one-target path (learn, then run
the registered suite); :func:`property_sweep` fans a whole target list
out on a :class:`~repro.campaign.Campaign` (each run emits a
``properties.json`` artifact when ``output_dir`` is given); and
:func:`tcp_challenge_ack_properties` is the worked finding: the same
``tcp`` suite run against the Linux-like stack and its
no-challenge-ack-rate-limit ablation, where ``challenge-ack-rate
-limited`` separates the two with a minimized witness.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.property_api import PropertyReport
from ..campaign import Campaign, RunResult, evaluate_spec_properties
from ..spec import ExperimentSpec, PropertiesSpec
from .base import Experiment


def check_target_properties(
    target: str,
    depth: int = 5,
    learner: str = "ttt",
    formulas: Sequence[str] = (),
    include_probes: bool = True,
    **spec_kwargs,
) -> PropertyReport:
    """Learn one registered target and run its property suite.

    Oracle-kind properties see the run's Oracle Table, so
    below-abstraction checks run too.
    """
    spec = ExperimentSpec(target=target, learner=learner, name=target, **spec_kwargs)
    with Experiment.run(spec) as experiment:
        return experiment.prognosis.check_properties(
            experiment.model,
            depth=depth,
            formulas=formulas,
            include_probes=include_probes,
        )


def property_sweep(
    targets: Sequence[str],
    depth: int = 5,
    learner: str = "ttt",
    workers: int = 1,
    output_dir=None,
    include_probes: bool = False,
) -> list[RunResult]:
    """Run every target's suite concurrently on the campaign runner.

    Each :class:`~repro.campaign.RunResult` carries its
    :class:`~repro.analysis.property_api.PropertyReport`; with
    ``output_dir`` every run also writes a ``properties.json`` verdict
    artifact next to its model.
    """
    specs = [
        ExperimentSpec(
            target=target,
            learner=learner,
            name=target,
            properties=PropertiesSpec(depth=depth, include_probes=include_probes),
        )
        for target in targets
    ]
    return Campaign(specs, workers=workers, output_dir=output_dir).run()


def tcp_challenge_ack_properties(depth: int = 5) -> dict[str, PropertyReport]:
    """The TCP rate-limit finding as a property campaign.

    Returns reports keyed by target; ``challenge-ack-rate-limited``
    HOLDS on ``tcp`` and is VIOLATED (with a minimized witness: open,
    establish, SYN, SYN) on ``tcp-no-challenge-ack``.
    """
    reports: dict[str, PropertyReport] = {}
    for target in ("tcp", "tcp-no-challenge-ack"):
        spec = ExperimentSpec(
            target=target,
            name=target,
            properties=PropertiesSpec(depth=depth),
        )
        with Experiment.run(spec) as experiment:
            reports[target] = evaluate_spec_properties(
                spec,
                experiment.model,
                oracle_table=experiment.prognosis.sul.oracle_table,
            )
    return reports

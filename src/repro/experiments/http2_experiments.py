"""HTTP/2 experiment drivers: the third closed-box workload.

The paper's core claim is that the learner/oracle machinery is
protocol-agnostic: only the adapter pair (alpha, gamma) changes per
target.  These drivers exercise that claim with a protocol none of the
machinery was written against.  The conformant in-process server learns
as a minimal 5-state machine (handshake pending, ready, request open,
ready-after-response, closed); seeding the
RST_STREAM-on-closed-stream bug collapses ready and
ready-after-response into one state, yielding 4 -- a model-level diff a
property check pins to the offending transition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..spec import ComponentSpec, ExperimentSpec
from .base import Experiment

#: The conformant server's learned model (see module docstring).
EXPECTED_HTTP2_STATES = 5
EXPECTED_HTTP2_TRANSITIONS = 35
#: The ``rst_on_closed_bug`` server's model: two states merge.
EXPECTED_HTTP2_BUGGY_STATES = 4


@dataclass
class HTTP2Experiment(Experiment):
    """One complete HTTP/2 learning run plus its framework object."""


def learn_http2(
    seed: int = 9,
    learner: str = "ttt",
    extra_states: int = 1,
    workers: int = 1,
    rst_on_closed_bug: bool = False,
) -> HTTP2Experiment:
    """Learn the in-process HTTP/2 server over the 7-symbol frame alphabet.

    ``rst_on_closed_bug`` seeds the section 5.1 violation;
    ``workers > 1`` fans membership-query batches across a pool of
    identically-seeded adapter instances (same model, parallel execution).
    """
    target_params: dict = {"seed": seed}
    if rst_on_closed_bug:
        target_params["rst_on_closed_bug"] = True
    return HTTP2Experiment.run(
        ExperimentSpec(
            target="http2",
            target_params=target_params,
            learner=learner,
            equivalence=[ComponentSpec("wmethod", {"extra_states": extra_states})],
            workers=workers,
            name="http2-buggy" if rst_on_closed_bug else "http2",
        )
    )


def run_http2_handshake(model) -> list[tuple[str, str]]:
    """Drive a learned model through the SETTINGS handshake + one request."""
    from ..core.alphabet import parse_http2_symbol

    settings = parse_http2_symbol("SETTINGS[]")
    request = parse_http2_symbol("HEADERS[END_HEADERS,END_STREAM]")
    outputs = model.run((settings, request))
    return [
        (str(settings), str(outputs[0])),
        (str(request), str(outputs[1])),
    ]

"""TCP experiment drivers: E1 (Fig. 3b), E2 (Fig. 3c / Fig. 4), E3 (6.1).

Paper targets: the full TCP model has 6 states and 42 transitions (learned
with 4,726 membership queries on the authors' setup); the handshake
fragment is Fig. 3(b); the synthesized register machine recovers
``r = sn + 1`` -- the server acknowledging the client's sequence number.

The drivers are thin wrappers that build an
:class:`~repro.spec.ExperimentSpec` against the ``tcp`` /
``tcp-handshake`` registry targets and run it -- the same path ``repro
run`` and :class:`~repro.campaign.Campaign` use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.mealy import MealyMachine
from ..core.alphabet import parse_tcp_symbol
from ..spec import ComponentSpec, ExperimentSpec
from ..synth.synthesizer import SynthesisResult
from .base import Experiment

PAPER_TCP_STATES = 6
PAPER_TCP_TRANSITIONS = 42
PAPER_TCP_QUERIES = 4726


@dataclass
class TCPExperiment(Experiment):
    """One complete TCP learning run plus its framework object."""


def learn_tcp_full(
    seed: int = 3, learner: str = "ttt", extra_states: int = 1, workers: int = 1
) -> TCPExperiment:
    """E3: learn the 7-symbol model of the Linux-like stack.

    ``workers > 1`` runs the membership-query batches on a pool of
    identically-seeded adapter instances (same learned model, parallel
    execution).
    """
    return TCPExperiment.run(
        ExperimentSpec(
            target="tcp",
            target_params={"seed": seed},
            learner=learner,
            equivalence=[ComponentSpec("wmethod", {"extra_states": extra_states})],
            workers=workers,
            name="tcp-linux",
        )
    )


def learn_tcp_handshake(seed: int = 3, workers: int = 1) -> TCPExperiment:
    """E1: learn the Fig. 3(b) fragment over the 2-symbol alphabet."""
    return TCPExperiment.run(
        ExperimentSpec(
            target="tcp-handshake",
            target_params={"seed": seed},
            workers=workers,
            name="tcp-handshake",
        )
    )


def synthesize_handshake_registers(
    experiment: TCPExperiment | None = None,
    registers: tuple[str, ...] = ("r",),
) -> SynthesisResult | None:
    """E2: recover the sequence-number logic of Fig. 3(c).

    Synthesizes over the handshake model's oracle table; the expected
    solution outputs ``an = sn + 1`` on the SYN transition (the server
    acknowledges the client's ISN plus one).
    """
    if experiment is None:
        experiment = learn_tcp_handshake()
    return experiment.prognosis.synthesize(
        experiment.model,
        register_names=registers,
        output_fields=("an",),
    )


def handshake_expectation() -> list[tuple[str, str]]:
    """The Fig. 3(b) fragment as (input, output) labels for assertions."""
    return [
        ("SYN(?,?,0)", "ACK+SYN(?,?,0)"),
        ("ACK(?,?,0)", "NIL"),
    ]


def run_handshake(model: MealyMachine) -> list[tuple[str, str]]:
    """Drive the learned model through the 3-way handshake."""
    syn = parse_tcp_symbol("SYN(?,?,0)")
    ack = parse_tcp_symbol("ACK(?,?,0)")
    outputs = model.run((syn, ack))
    return [(str(syn), str(outputs[0])), (str(ack), str(outputs[1]))]

"""The shared shape of one finished learning run.

Every experiment driver returns an :class:`Experiment`: the framework
object (kept for synthesis and property checking) plus the
:class:`~repro.framework.LearningReport`.  Experiments own their
framework's resources -- use them as context managers (or call
:meth:`Experiment.close`) so pooled SULs release worker threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.mealy import MealyMachine
from ..framework import LearningReport, Prognosis
from ..spec import ExperimentSpec


@dataclass
class Experiment:
    """One complete learning run plus its framework object."""

    prognosis: Prognosis
    report: LearningReport

    @classmethod
    def run(cls, spec: ExperimentSpec) -> "Experiment":
        """Build the spec's pipeline, learn, and package the result.

        The SUL is released if learning raises (e.g. a
        :class:`~repro.learn.nondeterminism.NondeterminismError`); on
        success the caller owns the experiment and should close it.
        """
        prognosis = Prognosis.from_spec(spec)
        try:
            report = prognosis.learn()
        except BaseException:
            prognosis.close()
            raise
        return cls(prognosis=prognosis, report=report)

    @property
    def model(self) -> MealyMachine:
        return self.report.model

    def close(self) -> None:
        """Release the underlying SUL's resources (idempotent)."""
        self.prognosis.close()

    def __enter__(self) -> "Experiment":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

"""The Prognosis facade: learning + synthesis + analysis in one object.

This is the thin, backward-compatible front of the spec API: a
:class:`Prognosis` can be built the classic way (pass a SUL and keyword
knobs) or from a declarative :class:`~repro.spec.ExperimentSpec`
(:meth:`Prognosis.from_spec`); both paths assemble the identical pipeline
through :func:`repro.spec.assemble`, so a spec run and a hand-wired run
learn byte-identical models.  Construct, call :meth:`learn`, then hand the
learned model to the analysis helpers or :meth:`synthesize` richer
register machines from the Oracle Table.  ``Prognosis`` is a context
manager; use ``with`` (or call :meth:`close`) so pooled SULs release
their worker threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal, Sequence

from .adapter.pool import SULPool
from .adapter.sul import SUL
from .analysis.diff import ModelDiff, diff_models
from .analysis.ltl import parse_ltl
from .analysis.properties import PropertyViolation, check_property
from .analysis.statistics import TraceReduction, trace_reduction
from .core.extended import ConcreteStep
from .core.mealy import MealyMachine
from .core.trace import Word
from .learn.cache import CachedMembershipOracle, QueryCache
from .learn.lstar import LearningResult
from .learn.nondeterminism import MajorityVoteOracle, NondeterminismPolicy
from .spec import ComponentSpec, ExecutorSpec, ExperimentSpec, assemble
from .synth.synthesizer import SynthesisResult, synthesize, synthesize_with_cegis

LearnerKind = Literal["ttt", "lstar"]
EqKind = Literal["wmethod", "random", "random+wmethod"]

#: The target key recorded on specs synthesized from a directly-passed SUL
#: instance (such specs describe the pipeline but cannot rebuild the SUL).
CUSTOM_TARGET = "<custom-sul>"


@dataclass
class LearningReport:
    """Everything a benchmark or paper table needs about one learning run."""

    model: MealyMachine
    rounds: int
    counterexamples: list[Word]
    sul_queries: int
    sul_steps: int
    sul_resets: int
    oracle_queries: int
    cache_hit_rate: float
    #: Words answered without a SUL run because a longer batch member
    #: covered them (the batch planner's prefix collapse).
    prefix_collapsed: int = 0
    #: Duplicate words removed within batches before execution.
    batch_deduped: int = 0
    #: SUL instances the run executed on (1 = serial).
    workers: int = 1
    #: Membership queries answered by observations already in the
    #: persistent query store when the run began (0 without a store).
    store_hits: int = 0
    #: ``store_hits`` over all membership queries.
    store_hit_rate: float = 0.0
    #: Membership queries answered by bulk-corpus observations
    #: (0 without a ``corpus`` section; see :mod:`repro.learn.bulk`).
    corpus_hits: int = 0
    #: ``corpus_hits`` over all membership queries.
    corpus_hit_rate: float = 0.0
    #: Nondeterministic corpus traces skipped during seeding.
    corpus_skipped: int = 0
    #: Per-equivalence-oracle accounting: words submitted and
    #: counterexamples found, keyed by oracle name.
    eq_attribution: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def num_states(self) -> int:
        return self.model.num_states

    @property
    def num_transitions(self) -> int:
        return self.model.num_transitions

    def summary(self) -> str:
        return (
            f"{self.model.name}: {self.num_states} states, "
            f"{self.num_transitions} transitions, "
            f"{self.sul_queries} SUL queries "
            f"({self.oracle_queries} learner queries, "
            f"{self.cache_hit_rate:.0%} cache hits)"
        )

    def to_dict(self) -> dict:
        """A JSON-able accounting summary (campaign ``report.json``).

        The model itself is serialized separately via
        :meth:`~repro.core.mealy.MealyMachine.to_dict`; here only its
        headline numbers appear.
        """
        return {
            "model_name": self.model.name,
            "num_states": self.num_states,
            "num_transitions": self.num_transitions,
            "rounds": self.rounds,
            "counterexamples": [
                [str(symbol) for symbol in word] for word in self.counterexamples
            ],
            "sul_queries": self.sul_queries,
            "sul_steps": self.sul_steps,
            "sul_resets": self.sul_resets,
            "oracle_queries": self.oracle_queries,
            "cache_hit_rate": self.cache_hit_rate,
            "prefix_collapsed": self.prefix_collapsed,
            "batch_deduped": self.batch_deduped,
            "workers": self.workers,
            "store_hits": self.store_hits,
            "store_hit_rate": self.store_hit_rate,
            "corpus_hits": self.corpus_hits,
            "corpus_hit_rate": self.corpus_hit_rate,
            "corpus_skipped": self.corpus_skipped,
            "eq_attribution": {
                name: dict(stats) for name, stats in self.eq_attribution.items()
            },
        }


class Prognosis:
    """The framework: a SUL plus a configured learning pipeline.

    Three ways in:

    * classic -- pass a ready ``sul`` instance (serial execution);
    * pooled -- pass a ``sul_factory`` with ``workers=N`` to fan
      membership-query batches across a
      :class:`~repro.adapter.pool.SULPool` of N identical instances (the
      factory must build identically-seeded instances so pooled and serial
      runs learn the same model); ``executor`` picks the pool backend
      (``"thread"`` default, ``"process"`` for CPU-bound SULs -- the
      factory must then be picklable -- or ``"serial"``), ``timeout_s``
      bounds one shard on supervised backends;
    * declarative -- :meth:`from_spec` resolves every component from the
      registries, which is what campaigns and the ``repro run`` CLI use.

    ``batch_size`` bounds how many words the equivalence oracles submit
    per batch.  The object is a context manager; leaving the ``with``
    block releases pooled worker threads and simulated sockets.
    """

    def __init__(
        self,
        sul: SUL | None = None,
        learner: LearnerKind = "ttt",
        equivalence: EqKind = "wmethod",
        extra_states: int = 1,
        use_cache: bool = True,
        nondeterminism_policy: NondeterminismPolicy | None = None,
        random_words: int = 300,
        seed: int = 0,
        name: str | None = None,
        workers: int = 1,
        sul_factory: Callable[[], SUL] | None = None,
        batch_size: int = 64,
        *,
        executor: str | None = None,
        timeout_s: float | None = None,
        spec: ExperimentSpec | None = None,
        shared_cache: QueryCache | None = None,
    ) -> None:
        if spec is not None:
            if sul is not None or sul_factory is not None:
                raise ValueError("pass either a spec or a sul/sul_factory, not both")
            self.spec = spec.validate()
            pipeline = assemble(spec, shared_cache=shared_cache)
        else:
            if workers < 1:
                raise ValueError(f"need at least one worker, got {workers}")
            if sul_factory is not None:
                if sul is not None:
                    raise ValueError(
                        "pass either a sul or a sul_factory, not both"
                    )
                sul = SULPool(
                    sul_factory,
                    workers=workers,
                    name=name,
                    backend=executor or "thread",
                    timeout_s=timeout_s,
                )
            elif sul is None:
                raise ValueError("Prognosis needs a sul or a sul_factory")
            elif executor is not None:
                raise ValueError(
                    "an executor backend needs a sul_factory "
                    "(workers are built per thread/process)"
                )
            elif workers > 1:
                raise ValueError(
                    "workers > 1 needs a sul_factory (one SUL instance per worker)"
                )
            self.spec = self._legacy_spec(
                learner=learner,
                equivalence=equivalence,
                extra_states=extra_states,
                use_cache=use_cache,
                nondeterminism_policy=nondeterminism_policy,
                random_words=random_words,
                seed=seed,
                name=name,
                workers=workers,
                batch_size=batch_size,
                executor=executor,
                timeout_s=timeout_s,
            )
            pipeline = assemble(self.spec, sul=sul, shared_cache=shared_cache)

        self.sul = pipeline.sul
        self.workers = self.spec.effective_executor().workers
        self.name = self.spec.name or pipeline.sul.name
        self.base_oracle = pipeline.base_oracle
        self.oracle = pipeline.oracle
        self.middleware = pipeline.middleware
        self.cache_oracle: CachedMembershipOracle | None = next(
            (m for m in pipeline.middleware if isinstance(m, CachedMembershipOracle)),
            None,
        )
        self.majority_oracle: MajorityVoteOracle | None = next(
            (m for m in pipeline.middleware if isinstance(m, MajorityVoteOracle)),
            None,
        )
        self.equivalence_oracle = pipeline.equivalence_oracle
        self.learner = pipeline.learner

    @staticmethod
    def _legacy_spec(
        *,
        learner: str,
        equivalence: str,
        extra_states: int,
        use_cache: bool,
        nondeterminism_policy: NondeterminismPolicy | None,
        random_words: int,
        seed: int,
        name: str | None,
        workers: int,
        batch_size: int,
        executor: str | None = None,
        timeout_s: float | None = None,
    ) -> ExperimentSpec:
        """Translate the classic keyword knobs into spec component lists."""
        wmethod = ComponentSpec("wmethod", {"extra_states": extra_states})
        random = ComponentSpec("random", {"num_words": random_words})
        if equivalence == "wmethod":
            eq_chain = [wmethod]
        elif equivalence == "random":
            eq_chain = [random]
        else:  # "random+wmethod" (and historically any other value)
            eq_chain = [random, wmethod]
        middleware = []
        if nondeterminism_policy is not None:
            middleware.append(
                ComponentSpec(
                    "majority-vote",
                    {
                        "min_repeats": nondeterminism_policy.min_repeats,
                        "max_repeats": nondeterminism_policy.max_repeats,
                        "certainty": nondeterminism_policy.certainty,
                    },
                )
            )
        if use_cache:
            middleware.append(ComponentSpec("cache"))
        return ExperimentSpec(
            target=CUSTOM_TARGET,
            learner=learner,
            equivalence=eq_chain,
            middleware=middleware,
            workers=workers,
            seed=seed,
            batch_size=batch_size,
            name=name,
            executor=(
                None
                if executor is None
                else ExecutorSpec(kind=executor, timeout_s=timeout_s)
            ),
        )

    @classmethod
    def from_spec(
        cls,
        spec: ExperimentSpec,
        shared_cache: QueryCache | None = None,
    ) -> "Prognosis":
        """Build the framework from a declarative experiment spec.

        ``shared_cache`` pre-warms the cache middleware with observations
        from earlier runs of the same SUL (campaign cross-run sharing).
        """
        return cls(spec=spec, shared_cache=shared_cache)

    # ------------------------------------------------------------------
    def learn(self) -> LearningReport:
        """Run active learning to completion and package the accounting."""
        result: LearningResult = self.learner.learn()
        return LearningReport(
            model=result.model,
            rounds=result.rounds,
            counterexamples=result.counterexamples,
            sul_queries=self.sul.stats.queries,
            sul_steps=self.sul.stats.steps,
            sul_resets=self.sul.stats.resets,
            oracle_queries=(
                self.cache_oracle.stats.queries
                if self.cache_oracle is not None
                else self.base_oracle.stats.queries
            ),
            cache_hit_rate=(
                self.cache_oracle.hit_rate if self.cache_oracle is not None else 0.0
            ),
            prefix_collapsed=(
                self.cache_oracle.prefix_collapsed
                if self.cache_oracle is not None
                else 0
            ),
            batch_deduped=(
                self.cache_oracle.batch_deduped
                if self.cache_oracle is not None
                else 0
            ),
            workers=self.workers,
            store_hits=getattr(self.cache_oracle, "store_hits", 0),
            store_hit_rate=getattr(self.cache_oracle, "store_hit_rate", 0.0),
            corpus_hits=getattr(self.cache_oracle, "corpus_hits", 0),
            corpus_hit_rate=getattr(self.cache_oracle, "corpus_hit_rate", 0.0),
            corpus_skipped=getattr(self.cache_oracle, "corpus_skipped", 0),
            eq_attribution=self.equivalence_oracle.attribution(),
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the SUL's resources (pool threads, simulated sockets).

        Safe to call on any SUL; a no-op when the SUL has no ``close``.
        Middleware layers close too -- the store-backed cache flushes its
        append buffer and records usage here.  Long-running sweeps
        constructing many pooled ``Prognosis`` objects should use the
        context-manager protocol (or call this) after each run.
        """
        for layer in self.middleware:
            layer_close = getattr(layer, "close", None)
            if callable(layer_close):
                layer_close()
        close = getattr(self.sul, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "Prognosis":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    def synthesize(
        self,
        model: MealyMachine,
        register_names: Sequence[str] = ("r0",),
        cegis_words: Sequence[Word] = (),
        max_traces: int = 60,
        **problem_kwargs,
    ) -> SynthesisResult | None:
        """Synthesize an extended machine from the Oracle Table's traces.

        The table can hold thousands of traces; synthesis selects the ones
        relevant to the requested output fields (those observing at least
        one of them), longest first, capped at ``max_traces``.
        ``cegis_words`` optionally names extra input words to query (fresh
        concrete traces) for counterexample-guided refinement.
        """
        traces = self.sul.oracle_table.concrete_traces()
        output_fields = problem_kwargs.get("output_fields")
        wanted = set(output_fields) if output_fields else None
        if wanted:
            relevant = [
                t
                for t in traces
                if any(wanted & set(step.output_params) for step in t)
            ]
            if relevant:
                traces = relevant
        # Shortest traces first: they constrain the fewest unknowns per
        # replay, so the DFS pins down the critical terms cheaply before
        # long traces (which then mostly just validate).  Traces whose
        # constraint signature (inputs + the observed values of the fields
        # being synthesized) duplicates an earlier one add no information
        # and only multiply solver work, so they are dropped.
        def signature(trace) -> tuple:
            return tuple(
                (
                    step.input_symbol,
                    tuple(
                        sorted(
                            (k, v)
                            for k, v in step.output_params.items()
                            if wanted is None or k in wanted
                        )
                    ),
                )
                for step in trace
            )

        unique: dict[tuple, object] = {}
        for trace in sorted(traces, key=len):
            unique.setdefault(signature(trace), trace)
        traces = list(unique.values())[:max_traces]
        if not cegis_words:
            return synthesize(
                model, traces, register_names=register_names, **problem_kwargs
            )

        def provider(_round: int) -> list[list[ConcreteStep]]:
            fresh: list[list[ConcreteStep]] = []
            for word in cegis_words:
                self.sul.query(word)
                entry = self.sul.oracle_table.lookup(word)
                if entry is not None:
                    fresh.append(list(entry.steps))
            return fresh

        return synthesize_with_cegis(
            model,
            traces,
            provider,
            register_names=register_names,
            **problem_kwargs,
        )

    # ------------------------------------------------------------------
    def check(
        self, model: MealyMachine, formula: str, depth: int = 8
    ) -> PropertyViolation | None:
        """Check a textual LTLf property against a learned model."""
        return check_property(model, parse_ltl(formula), depth)

    def check_properties(
        self,
        model: MealyMachine,
        depth: int = 5,
        suite: str | None = None,
        formulas: Sequence[str] = (),
        include_probes: bool = True,
        minimize: bool = True,
    ):
        """Run the target's registered property suite against a model.

        The suite is resolved from :data:`repro.registry
        .PROPERTY_REGISTRY` by the spec's target name (or ``suite``
        explicitly); ``formulas`` adds ad-hoc LTLf formula strings.
        Oracle-kind properties read this framework's Oracle Table, so
        below-abstraction checks (stream-id monotonicity) run too.
        Returns a :class:`~repro.analysis.property_api.PropertyReport`
        whose VIOLATED verdicts carry ddmin-minimized witnesses.
        """
        from .analysis.property_api import check_properties, resolve_properties

        properties = resolve_properties(
            self.spec.target,
            suite=suite,
            formulas=formulas,
            include_probes=include_probes,
        )
        return check_properties(
            model,
            properties,
            depth=depth,
            oracle_table=self.sul.oracle_table,
            minimize=minimize,
            target=self.name,
        )

    def reduction(self, model: MealyMachine, max_length: int = 10) -> TraceReduction:
        """The section 6.2.2 trace-space reduction statistic."""
        return trace_reduction(model, max_length=max_length)

    @staticmethod
    def compare(a: MealyMachine, b: MealyMachine, max_witnesses: int = 5) -> ModelDiff:
        """Diff two learned models (the Issue 1 / Issue 3 analysis)."""
        return diff_models(a, b, max_witnesses=max_witnesses)

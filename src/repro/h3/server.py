"""An in-process HTTP/3 server (RFC 9114) over abstract stream events.

The server is transport-neutral: the app layer feeds it per-stream data
and reset notifications and carries back the :class:`~repro.h3.actions
.H3Action` responses.  It speaks the request/response subset the learning
workload exercises -- control-stream SETTINGS and GOAWAY, request streams
of HEADERS / DATA / trailers, graceful draining -- and enforces the RFC's
frame-sequencing rules: SETTINGS must open the control stream
(H3_MISSING_SETTINGS), appear exactly once (H3_FRAME_UNEXPECTED), DATA
may not precede HEADERS, and request frames may not ride the control
stream.

The seeded quirk ``goaway_teardown_bug`` mirrors a real class of HTTP/3
shutdown bugs: on receiving the client's GOAWAY the buggy server still
answers with its own GOAWAY -- indistinguishable at that step -- but then
tears the connection down instead of draining, so in-flight requests die
silently and new ones are neither rejected nor reset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..quic.varint import VarintError, decode_varint, encode_varint
from .actions import H3Action
from .frames import (
    H3_CLOSED_CRITICAL_STREAM,
    H3_FRAME_ERROR,
    H3_FRAME_UNEXPECTED,
    H3_MISSING_SETTINGS,
    H3_REQUEST_INCOMPLETE,
    H3_REQUEST_REJECTED,
    H3Frame,
    H3FrameDecoder,
    H3FrameType,
    STREAM_TYPE_CONTROL,
    data_frame,
    goaway_frame,
    headers_frame,
    parse_goaway,
    parse_settings,
    settings_frame,
)
from .qpack import QPACKDecoder, QPACKEncoder, QPACKError

#: The server's unidirectional control stream (first server-initiated uni).
SERVER_CONTROL_STREAM = 3
#: The client's unidirectional control stream (first client-initiated uni).
CLIENT_CONTROL_STREAM = 2


class ConnectionState(enum.Enum):
    READY = "ready"
    DRAINING = "draining"
    CLOSED = "closed"


@dataclass(frozen=True)
class H3ServerConfig:
    """Response content plus the optional seeded quirk."""

    response_headers: tuple[tuple[str, str], ...] = (
        (":status", "200"),
        ("content-type", "text/plain"),
    )
    response_body: bytes = b"hello-http3"
    settings: tuple[tuple[int, int], ...] = ((0x01, 0), (0x06, 16384))
    goaway_teardown_bug: bool = False


@dataclass
class _RequestState:
    headers_seen: bool = False
    trailers_seen: bool = False
    headers: list[tuple[str, str]] = field(default_factory=list)
    body: bytearray = field(default_factory=bytearray)


class H3Server:
    """One HTTP/3 server connection, reset between membership queries."""

    def __init__(self, config: H3ServerConfig | None = None, seed: int = 8) -> None:
        self.config = config or H3ServerConfig()
        self.seed = seed
        self._encoder = QPACKEncoder()
        self._qpack_decoder = QPACKDecoder()
        self.stats = {"frames_received": 0, "requests_answered": 0, "resets": 0}
        self.reset()

    def reset(self) -> None:
        self.stats["resets"] += 1
        self.state = ConnectionState.READY
        self.settings_received = False
        self.peer_settings: dict[int, int] = {}
        self.control_sent = False
        self.last_error = 0
        self.max_request_stream = -4  # so "+ 4" yields stream 0 when none seen
        self.drain_boundary: int | None = None
        self._control_type_buffer = bytearray()
        self._control_type_seen = False
        self._decoders: dict[int, H3FrameDecoder] = {}
        self._requests: dict[int, _RequestState] = {}

    # -- inbound events --------------------------------------------------
    def handle_data(self, stream_id: int, data: bytes, fin: bool) -> list[H3Action]:
        """Process reassembled stream bytes; returns response actions."""
        if self.state is ConnectionState.CLOSED:
            return []
        if stream_id == CLIENT_CONTROL_STREAM:
            return self._handle_control(data, fin)
        if stream_id % 4 == 0:
            return self._handle_request(stream_id, data, fin)
        return []  # other unidirectional stream types: ignored (section 6.2)

    def handle_reset(self, stream_id: int, error_code: int) -> list[H3Action]:
        """The peer abruptly terminated a stream."""
        if self.state is ConnectionState.CLOSED:
            return []
        if stream_id == CLIENT_CONTROL_STREAM:
            # Closing the control stream kills the connection (6.2.1).
            return self._connection_error(H3_CLOSED_CRITICAL_STREAM)
        self._requests.pop(stream_id, None)
        self._note_request_stream(stream_id)
        return []

    # -- control stream --------------------------------------------------
    def _handle_control(self, data: bytes, fin: bool) -> list[H3Action]:
        if fin:
            return self._connection_error(H3_CLOSED_CRITICAL_STREAM)
        if not self._control_type_seen:
            self._control_type_buffer.extend(data)
            parsed = self._try_parse_stream_type()
            if parsed is None:
                return []
            stream_type, data = parsed
            self._control_type_seen = True
            if stream_type != STREAM_TYPE_CONTROL:
                return []  # an unknown uni stream type: tolerated, ignored
        decoder = self._decoders.setdefault(CLIENT_CONTROL_STREAM, H3FrameDecoder())
        actions: list[H3Action] = []
        for frame in decoder.feed(data):
            self.stats["frames_received"] += 1
            actions.extend(self._control_frame(frame))
            if self.state is ConnectionState.CLOSED:
                break
        return actions

    def _try_parse_stream_type(self) -> tuple[int, bytes] | None:
        view = bytes(self._control_type_buffer)
        try:
            stream_type, offset = decode_varint(view, 0)
        except VarintError:
            return None
        self._control_type_buffer.clear()
        return stream_type, view[offset:]

    def _control_frame(self, frame: H3Frame) -> list[H3Action]:
        if frame.frame_type == H3FrameType.SETTINGS:
            if self.settings_received:
                return self._connection_error(H3_FRAME_UNEXPECTED)
            self.settings_received = True
            self.peer_settings = parse_settings(frame)
            return self._emit_control([])  # our SETTINGS ride the preamble
        if not self.settings_received:
            # SETTINGS MUST be the first control-stream frame (6.2.1).
            return self._connection_error(H3_MISSING_SETTINGS)
        if frame.frame_type == H3FrameType.GOAWAY:
            return self._peer_goaway(frame)
        if frame.frame_type in (H3FrameType.DATA, H3FrameType.HEADERS):
            return self._connection_error(H3_FRAME_UNEXPECTED)
        return []  # MAX_PUSH_ID, CANCEL_PUSH, unknown types: ignored

    def _peer_goaway(self, frame: H3Frame) -> list[H3Action]:
        parse_goaway(frame)  # validate; the client's boundary is advisory
        actions = self._emit_control([goaway_frame(self.max_request_stream + 4)])
        if self.config.goaway_teardown_bug:
            # The quirk: same GOAWAY on the wire, then a hard teardown --
            # no draining, no rejections, just silence ever after.
            self.state = ConnectionState.CLOSED
            self._requests.clear()
        else:
            self.state = ConnectionState.DRAINING
            self.drain_boundary = self.max_request_stream
        return actions

    # -- request streams -------------------------------------------------
    def _handle_request(self, stream_id: int, data: bytes, fin: bool) -> list[H3Action]:
        if (
            self.state is ConnectionState.DRAINING
            and stream_id not in self._requests
            and self.drain_boundary is not None
            and stream_id > self.drain_boundary
        ):
            # Draining: new requests are refused but cleanly, so the
            # client can retry them elsewhere (section 5.2).
            return [
                H3Action(
                    stream_id=stream_id,
                    reset=True,
                    error_code=H3_REQUEST_REJECTED,
                )
            ]
        self._note_request_stream(stream_id)
        request = self._requests.setdefault(stream_id, _RequestState())
        decoder = self._decoders.setdefault(stream_id, H3FrameDecoder())
        actions: list[H3Action] = []
        for frame in decoder.feed(data):
            self.stats["frames_received"] += 1
            error = self._request_frame(request, frame)
            if error is not None:
                return self._connection_error(error)
        if fin:
            actions.extend(self._complete_request(stream_id, request))
        return actions

    def _request_frame(self, request: _RequestState, frame: H3Frame) -> int | None:
        """Apply one request-stream frame; returns an error code on violation."""
        if frame.frame_type == H3FrameType.HEADERS:
            if request.trailers_seen:
                return H3_FRAME_UNEXPECTED  # nothing may follow trailers
            try:
                fields = self._qpack_decoder.decode(frame.payload)
            except QPACKError:
                return H3_FRAME_ERROR
            if request.headers_seen:
                request.trailers_seen = True
            else:
                request.headers_seen = True
                request.headers = fields
            return None
        if frame.frame_type == H3FrameType.DATA:
            if not request.headers_seen or request.trailers_seen:
                return H3_FRAME_UNEXPECTED  # DATA needs HEADERS before it
            request.body.extend(frame.payload)
            return None
        # SETTINGS, GOAWAY, MAX_PUSH_ID belong on the control stream.
        return H3_FRAME_UNEXPECTED

    def _complete_request(
        self, stream_id: int, request: _RequestState
    ) -> list[H3Action]:
        del self._requests[stream_id]
        if not request.headers_seen:
            return self._connection_error(H3_REQUEST_INCOMPLETE)
        response = headers_frame(
            self._encoder.encode(self.config.response_headers)
        ).encode() + data_frame(self.config.response_body).encode()
        self.stats["requests_answered"] += 1
        return [H3Action(stream_id=stream_id, data=response, fin=True)]

    # -- connection-level output ----------------------------------------
    def _emit_control(self, frames: list[H3Frame]) -> list[H3Action]:
        """Frames for our control stream, opening it (type + SETTINGS) first."""
        preamble = b""
        if not self.control_sent:
            self.control_sent = True
            preamble = encode_varint(STREAM_TYPE_CONTROL) + settings_frame(
                dict(self.config.settings)
            ).encode()
        payload = preamble + b"".join(frame.encode() for frame in frames)
        if not payload:
            return []
        return [H3Action(stream_id=SERVER_CONTROL_STREAM, data=payload)]

    def _connection_error(self, error_code: int) -> list[H3Action]:
        """Close the connection: GOAWAY on the control stream, then silence."""
        self.last_error = error_code
        self.state = ConnectionState.CLOSED
        self._requests.clear()
        return self._emit_control([goaway_frame(self.max_request_stream + 4)])

    def _note_request_stream(self, stream_id: int) -> None:
        if stream_id > self.max_request_stream:
            self.max_request_stream = stream_id

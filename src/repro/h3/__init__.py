"""HTTP/3 workload: frame codec, QPACK, server and client (RFC 9114/9204)."""

from .actions import H3Action
from .client import H3Client, H3ClientConfig
from .frames import (
    H3Frame,
    H3FrameDecoder,
    H3FrameError,
    H3FrameType,
    STREAM_TYPE_CONTROL,
    data_frame,
    goaway_frame,
    headers_frame,
    max_push_id_frame,
    parse_goaway,
    parse_settings,
    settings_frame,
)
from .qpack import (
    QPACK_STATIC,
    QPACK_STATIC_ENTRIES,
    QPACKDecoder,
    QPACKEncoder,
    QPACKError,
)
from .server import (
    CLIENT_CONTROL_STREAM,
    ConnectionState,
    H3Server,
    H3ServerConfig,
    SERVER_CONTROL_STREAM,
)

__all__ = [
    "CLIENT_CONTROL_STREAM",
    "ConnectionState",
    "H3Action",
    "H3Client",
    "H3ClientConfig",
    "H3Frame",
    "H3FrameDecoder",
    "H3FrameError",
    "H3FrameType",
    "H3Server",
    "H3ServerConfig",
    "QPACK_STATIC",
    "QPACK_STATIC_ENTRIES",
    "QPACKDecoder",
    "QPACKEncoder",
    "QPACKError",
    "SERVER_CONTROL_STREAM",
    "STREAM_TYPE_CONTROL",
    "data_frame",
    "goaway_frame",
    "headers_frame",
    "max_push_id_frame",
    "parse_goaway",
    "parse_settings",
    "settings_frame",
]

"""A static-table QPACK field-section codec (RFC 9204).

QPACK reuses HPACK's primitive encodings unchanged -- prefix-coded
integers and length-prefixed string literals -- so this module builds on
the shared table-codec interface of :mod:`repro.http2.hpack`
(:class:`~repro.http2.hpack.StaticTable` plus the integer/string codecs)
instead of copying it.  What differs is the table itself (99 entries,
0-indexed on the wire, RFC 9204 Appendix A) and the field-line
representations (section 4.5).

Like the HPACK codec, only the dynamic-table-free subset is spoken: the
encoder emits static-indexed and literal representations, the required
insert count is always zero, and the decoder rejects anything that would
reference a dynamic table.
"""

from __future__ import annotations

from ..http2.hpack import (
    StaticTable,
    decode_integer,
    decode_string,
    encode_integer,
    encode_string,
)


class QPACKError(ValueError):
    """A malformed or unsupported encoded field section."""


#: The QPACK static table of RFC 9204 Appendix A (0-indexed on the wire).
QPACK_STATIC_ENTRIES: tuple[tuple[str, str], ...] = (
    (":authority", ""),
    (":path", "/"),
    ("age", "0"),
    ("content-disposition", ""),
    ("content-length", "0"),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("referer", ""),
    ("set-cookie", ""),
    (":method", "CONNECT"),
    (":method", "DELETE"),
    (":method", "GET"),
    (":method", "HEAD"),
    (":method", "OPTIONS"),
    (":method", "POST"),
    (":method", "PUT"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "103"),
    (":status", "200"),
    (":status", "304"),
    (":status", "404"),
    (":status", "503"),
    ("accept", "*/*"),
    ("accept", "application/dns-message"),
    ("accept-encoding", "gzip, deflate, br"),
    ("accept-ranges", "bytes"),
    ("access-control-allow-headers", "cache-control"),
    ("access-control-allow-headers", "content-type"),
    ("access-control-allow-origin", "*"),
    ("cache-control", "max-age=0"),
    ("cache-control", "max-age=2592000"),
    ("cache-control", "max-age=604800"),
    ("cache-control", "no-cache"),
    ("cache-control", "no-store"),
    ("cache-control", "public, max-age=31536000"),
    ("content-encoding", "br"),
    ("content-encoding", "gzip"),
    ("content-type", "application/dns-message"),
    ("content-type", "application/javascript"),
    ("content-type", "application/json"),
    ("content-type", "application/x-www-form-urlencoded"),
    ("content-type", "image/gif"),
    ("content-type", "image/jpeg"),
    ("content-type", "image/png"),
    ("content-type", "text/css"),
    ("content-type", "text/html; charset=utf-8"),
    ("content-type", "text/plain"),
    ("content-type", "text/plain;charset=utf-8"),
    ("range", "bytes=0-"),
    ("strict-transport-security", "max-age=31536000"),
    ("strict-transport-security", "max-age=31536000; includesubdomains"),
    ("strict-transport-security", "max-age=31536000; includesubdomains; preload"),
    ("vary", "accept-encoding"),
    ("vary", "origin"),
    ("x-content-type-options", "nosniff"),
    ("x-xss-protection", "1; mode=block"),
    (":status", "100"),
    (":status", "204"),
    (":status", "206"),
    (":status", "302"),
    (":status", "400"),
    (":status", "403"),
    (":status", "421"),
    (":status", "425"),
    (":status", "500"),
    ("accept-language", ""),
    ("access-control-allow-credentials", "FALSE"),
    ("access-control-allow-credentials", "TRUE"),
    ("access-control-allow-headers", "*"),
    ("access-control-allow-methods", "get"),
    ("access-control-allow-methods", "get, post, options"),
    ("access-control-allow-methods", "options"),
    ("access-control-expose-headers", "content-length"),
    ("access-control-request-headers", "content-type"),
    ("access-control-request-method", "get"),
    ("access-control-request-method", "post"),
    ("alt-svc", "clear"),
    ("authorization", ""),
    (
        "content-security-policy",
        "script-src 'none'; object-src 'none'; base-uri 'none'",
    ),
    ("early-data", "1"),
    ("expect-ct", ""),
    ("forwarded", ""),
    ("if-range", ""),
    ("origin", ""),
    ("purpose", "prefetch"),
    ("server", ""),
    ("timing-allow-origin", "*"),
    ("upgrade-insecure-requests", "1"),
    ("user-agent", ""),
    ("x-forwarded-for", ""),
    ("x-frame-options", "deny"),
    ("x-frame-options", "sameorigin"),
)

#: The QPACK static table behind the shared interface (base 0).
QPACK_STATIC = StaticTable(QPACK_STATIC_ENTRIES, base=0)


class QPACKEncoder:
    """Encodes field sections against the static table only.

    The section prefix is always ``00 00`` (required insert count and
    base both zero -- no dynamic table).  Full matches become static
    indexed field lines, name matches become literals with a static name
    reference, and everything else is a literal with a literal name.
    """

    def encode(self, headers: list[tuple[str, str]] | tuple) -> bytes:
        section = bytearray(b"\x00\x00")  # required insert count 0, base 0
        for name, value in headers:
            index = QPACK_STATIC.field_index(name, value)
            if index is not None:
                encoded = encode_integer(index, 6)
                encoded[0] |= 0xC0  # '1' indexed, 'T'=1 static
                section.extend(encoded)
                continue
            name_index = QPACK_STATIC.name_index(name)
            if name_index is not None:
                encoded = encode_integer(name_index, 4)
                encoded[0] |= 0x50  # '01' literal w/ name ref, 'T'=1 static
                section.extend(encoded)
            else:
                encoded = encode_integer(len(name.encode("utf-8")), 3)
                encoded[0] |= 0x20  # '001' literal name, N=0, H=0
                section.extend(encoded)
                section.extend(name.encode("utf-8"))
            section.extend(encode_string(value))
        return bytes(section)


class QPACKDecoder:
    """Decodes field sections produced by a static-table-only encoder.

    Dynamic-table representations -- a non-zero required insert count,
    post-base lines, or name references with ``T=0`` -- raise
    :class:`QPACKError` instead of silently desynchronizing.
    """

    def decode(self, section: bytes) -> list[tuple[str, str]]:
        offset = self._check_prefix(section)
        headers: list[tuple[str, str]] = []
        try:
            while offset < len(section):
                first = section[offset]
                if first & 0x80:  # indexed field line
                    if not first & 0x40:
                        raise QPACKError(
                            "dynamic-table index requires a dynamic table"
                        )
                    index, offset = decode_integer(section, offset, 6)
                    headers.append(self._lookup(index))
                elif first & 0x40:  # literal with name reference
                    if not first & 0x10:
                        raise QPACKError(
                            "dynamic-table name reference is unsupported"
                        )
                    index, offset = decode_integer(section, offset, 4)
                    name = self._lookup(index)[0]
                    value, offset = decode_string(section, offset)
                    headers.append((name, value))
                elif first & 0x20:  # literal with literal name
                    if first & 0x08:
                        raise QPACKError("Huffman-coded names are unsupported")
                    length, offset = decode_integer(section, offset, 3)
                    end = offset + length
                    if end > len(section):
                        raise QPACKError("name literal overruns the section")
                    name = section[offset:end].decode("utf-8")
                    value, offset = decode_string(section, end)
                    headers.append((name, value))
                else:  # post-base representations (0x10 / 0x00 patterns)
                    raise QPACKError(
                        "post-base field lines require a dynamic table"
                    )
        except ValueError as exc:  # HPACKError from the shared primitives
            if isinstance(exc, QPACKError):
                raise
            raise QPACKError(str(exc)) from exc
        return headers

    @staticmethod
    def _check_prefix(section: bytes) -> int:
        """Validate the two-integer section prefix; returns the offset."""
        try:
            required_insert_count, offset = decode_integer(section, 0, 8)
        except ValueError as exc:
            raise QPACKError(f"truncated section prefix: {exc}") from exc
        if required_insert_count:
            raise QPACKError(
                "non-zero required insert count needs a dynamic table"
            )
        if offset >= len(section):
            raise QPACKError("section prefix missing the base")
        sign = section[offset] & 0x80
        try:
            base, offset = decode_integer(section, offset, 7)
        except ValueError as exc:
            raise QPACKError(f"truncated section prefix: {exc}") from exc
        if base or sign:
            raise QPACKError("non-zero base needs a dynamic table")
        return offset

    @staticmethod
    def _lookup(index: int) -> tuple[str, str]:
        try:
            return QPACK_STATIC.lookup(index)
        except IndexError:
            raise QPACKError(
                f"field index {index} outside the static table"
            ) from None

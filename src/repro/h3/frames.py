"""HTTP/3 frames (RFC 9114 section 7).

An HTTP/3 frame is ``varint type + varint length + payload`` and rides a
QUIC stream rather than a framed byte stream of its own, so -- unlike the
HTTP/2 codec -- there is no connection preface and no per-frame flags:
end-of-message is the transport's FIN bit.  :class:`H3FrameDecoder`
mirrors :class:`repro.http2.frames.FrameDecoder`: it is fed arbitrary
byte chunks (stream data arrives however the transport reassembled it)
and yields every completed frame, keeping partial frames buffered.

Unidirectional streams open with a varint *stream type*
(section 6.2); :data:`STREAM_TYPE_CONTROL` is the only one the workload
speaks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..quic.varint import VarintError, decode_varint, encode_varint


class H3FrameError(ValueError):
    """A malformed HTTP/3 frame encoding."""


class H3FrameType(enum.IntEnum):
    """Frame types of RFC 9114 section 7.2 (11.2.1 registry values)."""

    DATA = 0x00
    HEADERS = 0x01
    CANCEL_PUSH = 0x03
    SETTINGS = 0x04
    PUSH_PROMISE = 0x05
    GOAWAY = 0x07
    MAX_PUSH_ID = 0x0D


#: Unidirectional stream type of the control stream (section 6.2.1).
STREAM_TYPE_CONTROL = 0x00

#: HTTP/3 error codes (RFC 9114 section 8.1).
H3_NO_ERROR = 0x0100
H3_GENERAL_PROTOCOL_ERROR = 0x0101
H3_FRAME_UNEXPECTED = 0x0105
H3_FRAME_ERROR = 0x0106
H3_CLOSED_CRITICAL_STREAM = 0x0104
H3_MISSING_SETTINGS = 0x010A
H3_REQUEST_REJECTED = 0x010B
H3_REQUEST_CANCELLED = 0x010C
H3_REQUEST_INCOMPLETE = 0x010D

#: Settings identifiers (section 7.2.4.1); QPACK ones from RFC 9204.
SETTING_QPACK_MAX_TABLE_CAPACITY = 0x01
SETTING_MAX_FIELD_SECTION_SIZE = 0x06
SETTING_QPACK_BLOCKED_STREAMS = 0x07


@dataclass(frozen=True)
class H3Frame:
    """One HTTP/3 frame: a type plus its raw payload."""

    frame_type: int
    payload: bytes = b""

    def encode(self) -> bytes:
        return (
            encode_varint(self.frame_type)
            + encode_varint(len(self.payload))
            + self.payload
        )

    @property
    def kind(self) -> str:
        """The abstract frame-type name (``DATA``, ``HEADERS``, ...)."""
        try:
            return H3FrameType(self.frame_type).name
        except ValueError:
            return f"UNKNOWN_{self.frame_type:#x}"


class H3FrameDecoder:
    """Incremental frame parser over arbitrarily chunked stream data."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[H3Frame]:
        """Absorb ``data`` and return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[H3Frame] = []
        while True:
            frame, consumed = self._try_parse()
            if frame is None:
                break
            frames.append(frame)
            del self._buffer[:consumed]
        return frames

    def _try_parse(self) -> tuple[H3Frame | None, int]:
        view = bytes(self._buffer)
        try:
            frame_type, offset = decode_varint(view, 0)
            length, offset = decode_varint(view, offset)
        except VarintError:
            return None, 0  # header still incomplete
        end = offset + length
        if end > len(view):
            return None, 0  # payload still incomplete
        return H3Frame(frame_type=frame_type, payload=view[offset:end]), end

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)


# ---------------------------------------------------------------------------
# Typed constructors and payload parsers
# ---------------------------------------------------------------------------

def data_frame(body: bytes) -> H3Frame:
    return H3Frame(H3FrameType.DATA, body)


def headers_frame(field_section: bytes) -> H3Frame:
    """A HEADERS frame around an already QPACK-encoded field section."""
    return H3Frame(H3FrameType.HEADERS, field_section)


def settings_frame(settings: dict[int, int] | None = None) -> H3Frame:
    payload = bytearray()
    for identifier, value in (settings or {}).items():
        payload.extend(encode_varint(identifier))
        payload.extend(encode_varint(value))
    return H3Frame(H3FrameType.SETTINGS, bytes(payload))


def goaway_frame(stream_id: int) -> H3Frame:
    """GOAWAY carries the first unprocessed request-stream id (7.2.6)."""
    return H3Frame(H3FrameType.GOAWAY, encode_varint(stream_id))


def max_push_id_frame(push_id: int) -> H3Frame:
    return H3Frame(H3FrameType.MAX_PUSH_ID, encode_varint(push_id))


def parse_settings(frame: H3Frame) -> dict[int, int]:
    if frame.frame_type != H3FrameType.SETTINGS:
        raise H3FrameError(f"not a SETTINGS frame: {frame.kind}")
    settings: dict[int, int] = {}
    offset = 0
    try:
        while offset < len(frame.payload):
            identifier, offset = decode_varint(frame.payload, offset)
            value, offset = decode_varint(frame.payload, offset)
            settings[identifier] = value
    except VarintError as exc:
        raise H3FrameError(f"truncated SETTINGS payload: {exc}") from exc
    return settings


def parse_goaway(frame: H3Frame) -> int:
    if frame.frame_type != H3FrameType.GOAWAY:
        raise H3FrameError(f"not a GOAWAY frame: {frame.kind}")
    try:
        stream_id, offset = decode_varint(frame.payload, 0)
    except VarintError as exc:
        raise H3FrameError(f"truncated GOAWAY payload: {exc}") from exc
    if offset != len(frame.payload):
        raise H3FrameError("trailing bytes after GOAWAY stream id")
    return stream_id

"""An in-process HTTP/3 client: symbol concretization + response parsing.

The client turns the workload's abstract symbols (``SETTINGS``,
``HEADERS[FIN]``, ``DATA``, ``CANCEL``, ``GOAWAY``) into concrete stream
actions, following the same single-open-request discipline as the HTTP/2
client so the product automaton stays finite:

* ``HEADERS`` targets the open request stream (trailers) if one exists,
  otherwise opens the next client-bidirectional stream (0, 4, 8, ...);
* ``DATA`` likewise -- note that a *new* DATA-first stream is an RFC 9114
  violation the server answers with H3_FRAME_UNEXPECTED, giving the
  learner a reachable error path;
* ``CANCEL`` resets the open stream, or the next idle one;
* ``SETTINGS`` / ``GOAWAY`` ride the client's control stream (2), whose
  stream-type preamble is emitted lazily with the first control frame.

The client also reassembles server responses: per-stream incremental
frame decoding, with the stream-type varint stripped off server-initiated
unidirectional streams (3, 7, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..quic.varint import VarintError, decode_varint, encode_varint
from .actions import H3Action
from .frames import (
    H3_REQUEST_CANCELLED,
    H3Frame,
    H3FrameDecoder,
    STREAM_TYPE_CONTROL,
    data_frame,
    goaway_frame,
    headers_frame,
    settings_frame,
)
from .qpack import QPACKDecoder, QPACKEncoder
from .server import CLIENT_CONTROL_STREAM


@dataclass(frozen=True)
class H3ClientConfig:
    request_headers: tuple[tuple[str, str], ...] = (
        (":method", "GET"),
        (":scheme", "https"),
        (":authority", "h3client.example"),
        (":path", "/"),
    )
    request_body: bytes = b"ping"
    settings: tuple[tuple[int, int], ...] = ((0x01, 0), (0x06, 16384))


class H3Client:
    """Concretizes abstract symbols and parses per-stream responses."""

    def __init__(self, config: H3ClientConfig | None = None, seed: int = 10) -> None:
        self.config = config or H3ClientConfig()
        self.seed = seed
        self._encoder = QPACKEncoder()
        self.decoder = QPACKDecoder()
        self.stats = {"requests_sent": 0, "frames_received": 0}
        self.reset()

    def reset(self) -> None:
        self.next_request_stream = 0
        self.open_stream: int | None = None
        self._control_open = False
        self._decoders: dict[int, H3FrameDecoder] = {}
        self._uni_type_buffers: dict[int, bytearray] = {}
        self._uni_type_seen: set[int] = set()

    # -- concretization --------------------------------------------------
    def build(self, kind: str, fin: bool = False) -> tuple[list[H3Action], dict]:
        """Concretize one abstract symbol into stream actions.

        Returns ``(actions, in_params)`` where ``in_params`` records the
        concrete stream id for the Oracle Table.
        """
        if kind == "SETTINGS":
            payload = self._control_preamble() + settings_frame(
                dict(self.config.settings)
            ).encode()
            return (
                [H3Action(stream_id=CLIENT_CONTROL_STREAM, data=payload)],
                {"sid": CLIENT_CONTROL_STREAM},
            )
        if kind == "GOAWAY":
            payload = self._control_preamble() + goaway_frame(
                self.next_request_stream
            ).encode()
            return (
                [H3Action(stream_id=CLIENT_CONTROL_STREAM, data=payload)],
                {"sid": CLIENT_CONTROL_STREAM},
            )
        if kind == "HEADERS":
            stream_id = self._target_stream()
            frame = headers_frame(self._encoder.encode(self.config.request_headers))
            self.open_stream = None if fin else stream_id
            if fin:
                self.stats["requests_sent"] += 1
            return (
                [H3Action(stream_id=stream_id, data=frame.encode(), fin=fin)],
                {"sid": stream_id},
            )
        if kind == "DATA":
            stream_id = self._target_stream()
            frame = data_frame(self.config.request_body)
            self.open_stream = None if fin else stream_id
            return (
                [H3Action(stream_id=stream_id, data=frame.encode(), fin=fin)],
                {"sid": stream_id},
            )
        if kind == "CANCEL":
            stream_id = self._target_stream()
            self.open_stream = None
            return (
                [
                    H3Action(
                        stream_id=stream_id,
                        reset=True,
                        error_code=H3_REQUEST_CANCELLED,
                    )
                ],
                {"sid": stream_id},
            )
        raise ValueError(f"no HTTP/3 concretization for symbol kind {kind!r}")

    def _target_stream(self) -> int:
        """The open request stream, or a freshly allocated one."""
        if self.open_stream is not None:
            return self.open_stream
        stream_id = self.next_request_stream
        self.next_request_stream += 4
        return stream_id

    def _control_preamble(self) -> bytes:
        if self._control_open:
            return b""
        self._control_open = True
        return encode_varint(STREAM_TYPE_CONTROL)

    # -- response parsing ------------------------------------------------
    def decode_stream_data(self, stream_id: int, data: bytes) -> list[H3Frame]:
        """Feed reassembled response bytes; returns completed frames.

        Server-initiated unidirectional streams (3, 7, ...) open with a
        stream-type varint, which is consumed before frame parsing.
        """
        if stream_id % 4 == 3 and stream_id not in self._uni_type_seen:
            buffer = self._uni_type_buffers.setdefault(stream_id, bytearray())
            buffer.extend(data)
            view = bytes(buffer)
            try:
                _, offset = decode_varint(view, 0)
            except VarintError:
                return []
            del self._uni_type_buffers[stream_id]
            self._uni_type_seen.add(stream_id)
            data = view[offset:]
        decoder = self._decoders.setdefault(stream_id, H3FrameDecoder())
        frames = decoder.feed(data)
        self.stats["frames_received"] += len(frames)
        return frames

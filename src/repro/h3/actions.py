"""The transport-neutral action type HTTP/3 endpoints speak.

The :mod:`repro.h3` package is pure protocol logic -- it neither imports
nor knows about any transport.  Endpoints express "put these bytes (or
this reset) on that stream" as :class:`H3Action` values; the app layer in
:mod:`repro.adapter.h3_adapter` translates them onto whatever
:class:`~repro.adapter.layered.Transport` carries the connection.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class H3Action:
    """One outbound stream operation: data (with optional FIN) or a reset."""

    stream_id: int
    data: bytes = b""
    fin: bool = False
    reset: bool = False
    error_code: int = 0

"""HTTP/2 workload: frame codec, HPACK, streams, server and client."""

from .client import HTTP2Client, HTTP2ClientConfig
from .frames import (
    CONNECTION_PREFACE,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameError,
    FrameType,
    Setting,
)
from .hpack import (
    HPACK_STATIC,
    HPACKDecoder,
    HPACKEncoder,
    HPACKError,
    STATIC_TABLE,
    StaticTable,
)
from .server import ConnectionState, HTTP2Server, HTTP2ServerConfig
from .stream import H2Stream, StreamError, StreamState

__all__ = [
    "CONNECTION_PREFACE",
    "ConnectionState",
    "ErrorCode",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "FrameType",
    "H2Stream",
    "HPACK_STATIC",
    "HPACKDecoder",
    "HPACKEncoder",
    "HPACKError",
    "HTTP2Client",
    "HTTP2ClientConfig",
    "HTTP2Server",
    "HTTP2ServerConfig",
    "STATIC_TABLE",
    "Setting",
    "StaticTable",
    "StreamError",
    "StreamState",
]

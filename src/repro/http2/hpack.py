"""A minimal static-table HPACK codec (RFC 7541).

Implements exactly the subset the in-process workload needs: the 61-entry
static table, prefix-coded integers (section 5.1) and plain (non-Huffman)
string literals (section 5.2).  The encoder emits only representations a
dynamic-table-free decoder can read -- indexed fields and literals
*without* indexing -- and the decoder rejects representations that would
require a dynamic table, loudly rather than silently mis-decoding.

The table-codec primitives are shared across header-compression schemes:
:class:`StaticTable` wraps any entry list with a configurable wire base
index (HPACK indexes from 1, QPACK from 0) and the integer/string codecs
are exactly RFC 7541 section 5, which RFC 9204 reuses unchanged.  The
QPACK codec in :mod:`repro.h3.qpack` builds on these instead of copying
them.
"""

from __future__ import annotations

from typing import Iterator


class HPACKError(ValueError):
    """A malformed or unsupported header block."""


class StaticTable:
    """An immutable (name, value) table addressed by wire index.

    ``base`` is the index of the first entry on the wire: 1 for HPACK
    (RFC 7541 Appendix A), 0 for QPACK (RFC 9204 Appendix A).  Lookup
    helpers return ``None`` on a miss so encoders can fall back to
    literal representations; :meth:`lookup` raises :class:`IndexError`
    for out-of-range wire indices, which decoders wrap in their own
    error type.
    """

    def __init__(self, entries: tuple[tuple[str, str], ...], base: int = 1) -> None:
        self.entries = tuple(entries)
        self.base = base
        self._field_index: dict[tuple[str, str], int] = {}
        self._name_index: dict[str, int] = {}
        for i, field in enumerate(self.entries):
            self._field_index.setdefault(field, base + i)
            self._name_index.setdefault(field[0], base + i)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self.entries)

    def field_index(self, name: str, value: str) -> int | None:
        """Wire index of a full (name, value) match, or ``None``."""
        return self._field_index.get((name, value))

    def name_index(self, name: str) -> int | None:
        """Wire index of the first entry with this name, or ``None``."""
        return self._name_index.get(name)

    def lookup(self, index: int) -> tuple[str, str]:
        """The entry at wire ``index``; raises :class:`IndexError`."""
        position = index - self.base
        if not 0 <= position < len(self.entries):
            raise IndexError(
                f"wire index {index} outside table "
                f"[{self.base}, {self.base + len(self.entries) - 1}]"
            )
        return self.entries[position]


#: The static table of RFC 7541 Appendix A (1-indexed on the wire).
STATIC_TABLE: tuple[tuple[str, str], ...] = (
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
)

#: The static table behind the :class:`StaticTable` interface (base 1).
HPACK_STATIC = StaticTable(STATIC_TABLE, base=1)


# ---------------------------------------------------------------------------
# Primitive codecs
# ---------------------------------------------------------------------------

def encode_integer(value: int, prefix_bits: int) -> bytearray:
    """Prefix-code ``value`` into ``prefix_bits`` low bits plus continuation
    octets (RFC 7541 section 5.1).  High prefix bits are left zero for the
    caller to OR the representation pattern into."""
    if value < 0:
        raise HPACKError(f"cannot encode negative integer: {value}")
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return bytearray([value])
    out = bytearray([limit])
    value -= limit
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return out


def decode_integer(data: bytes, offset: int, prefix_bits: int) -> tuple[int, int]:
    """Decode a prefix-coded integer; returns ``(value, next_offset)``."""
    limit = (1 << prefix_bits) - 1
    try:
        value = data[offset] & limit
        offset += 1
        if value < limit:
            return value, offset
        shift = 0
        while True:
            octet = data[offset]
            offset += 1
            value += (octet & 0x7F) << shift
            shift += 7
            if not octet & 0x80:
                return value, offset
    except IndexError:
        raise HPACKError("truncated integer") from None


def encode_string(text: str) -> bytearray:
    """A plain (non-Huffman) length-prefixed string literal."""
    raw = text.encode("utf-8")
    out = encode_integer(len(raw), 7)  # H bit stays 0: no Huffman
    out.extend(raw)
    return out


def decode_string(data: bytes, offset: int) -> tuple[str, int]:
    if offset >= len(data):
        raise HPACKError("truncated string literal")
    if data[offset] & 0x80:
        raise HPACKError("Huffman-coded strings are not supported")
    length, offset = decode_integer(data, offset, 7)
    if offset + length > len(data):
        raise HPACKError("string literal overruns the header block")
    return data[offset : offset + length].decode("utf-8"), offset + length


# ---------------------------------------------------------------------------
# Header-block codec
# ---------------------------------------------------------------------------

class HPACKEncoder:
    """Encodes header lists against the static table only.

    Full (name, value) matches become indexed fields; name-only matches
    become literals without indexing with an indexed name; everything else
    is a literal without indexing with a literal name.  No representation
    the encoder emits requires the peer to maintain a dynamic table.
    """

    def encode(self, headers: list[tuple[str, str]] | tuple) -> bytes:
        block = bytearray()
        for name, value in headers:
            index = HPACK_STATIC.field_index(name, value)
            if index is not None:
                encoded = encode_integer(index, 7)
                encoded[0] |= 0x80  # indexed field: '1' pattern
                block.extend(encoded)
                continue
            name_index = HPACK_STATIC.name_index(name)
            if name_index is not None:
                encoded = encode_integer(name_index, 4)  # '0000' pattern
                block.extend(encoded)
            else:
                block.append(0x00)  # literal name, '0000' pattern, index 0
                block.extend(encode_string(name))
            block.extend(encode_string(value))
        return bytes(block)


class HPACKDecoder:
    """Decodes header blocks produced by a static-table-only encoder.

    Representations that require a dynamic table -- incremental-indexing
    literals, table-size updates, or indices beyond the static table --
    raise :class:`HPACKError` instead of silently desynchronizing.
    """

    def decode(self, block: bytes) -> list[tuple[str, str]]:
        headers: list[tuple[str, str]] = []
        offset = 0
        while offset < len(block):
            first = block[offset]
            if first & 0x80:  # indexed header field
                index, offset = decode_integer(block, offset, 7)
                headers.append(self._lookup(index))
            elif first & 0x40:
                raise HPACKError(
                    "incremental indexing requires a dynamic table (unsupported)"
                )
            elif first & 0x20:
                raise HPACKError(
                    "dynamic table size update is unsupported (static table only)"
                )
            else:  # literal without indexing (0x00) or never indexed (0x10)
                index, offset = decode_integer(block, offset, 4)
                if index:
                    name = self._lookup(index)[0]
                else:
                    name, offset = decode_string(block, offset)
                value, offset = decode_string(block, offset)
                headers.append((name, value))
        return headers

    @staticmethod
    def _lookup(index: int) -> tuple[str, str]:
        try:
            return HPACK_STATIC.lookup(index)
        except IndexError:
            raise HPACKError(
                f"header index {index} outside the static table"
            ) from None

"""The per-stream state machine of RFC 9113 section 5.1.

Each :class:`H2Stream` tracks one stream through
``idle -> open -> half-closed -> closed`` as frames are received from the
peer and sent by the local endpoint.  Invalid frames raise
:class:`StreamError` carrying the RFC error code and whether the RFC
classifies the violation as a *stream* error (answered with RST_STREAM)
or a *connection* error (answered with GOAWAY) -- the server turns that
classification directly into wire behaviour.

The server half of the diagram is implemented (no PUSH_PROMISE, so the
``reserved`` states are reachable only if a caller constructs them
explicitly).
"""

from __future__ import annotations

import enum

from .frames import ErrorCode


class StreamState(enum.Enum):
    IDLE = "idle"
    RESERVED_LOCAL = "reserved-local"
    RESERVED_REMOTE = "reserved-remote"
    OPEN = "open"
    HALF_CLOSED_LOCAL = "half-closed-local"
    HALF_CLOSED_REMOTE = "half-closed-remote"
    CLOSED = "closed"


class StreamError(Exception):
    """A frame was illegal in the stream's current state.

    ``connection_error`` distinguishes the RFC's two severities: a stream
    error resets one stream; a connection error tears the whole
    connection down with GOAWAY.
    """

    def __init__(
        self, error_code: ErrorCode, message: str, connection_error: bool = False
    ) -> None:
        super().__init__(message)
        self.error_code = error_code
        self.connection_error = connection_error


class H2Stream:
    """One stream's lifecycle, driven by received and sent frames."""

    def __init__(self, stream_id: int, state: StreamState = StreamState.IDLE) -> None:
        self.stream_id = stream_id
        self.state = state
        self.received_data = bytearray()
        self.trailers_received = False

    # ------------------------------------------------------------------
    # Receiving (peer -> local)
    # ------------------------------------------------------------------
    def receive_headers(self, end_stream: bool) -> None:
        """HEADERS from the peer: opens an idle stream, or carries trailers
        (which must bear END_STREAM) on an open one."""
        if self.state is StreamState.IDLE:
            self.state = (
                StreamState.HALF_CLOSED_REMOTE if end_stream else StreamState.OPEN
            )
            return
        if self.state is StreamState.RESERVED_REMOTE:
            self.state = StreamState.HALF_CLOSED_LOCAL
            return
        if self.state is StreamState.OPEN:
            if not end_stream:
                raise StreamError(
                    ErrorCode.PROTOCOL_ERROR,
                    f"trailers without END_STREAM on stream {self.stream_id}",
                )
            self.trailers_received = True
            self.state = StreamState.HALF_CLOSED_REMOTE
            return
        if self.state is StreamState.HALF_CLOSED_LOCAL:
            if end_stream:
                self.state = StreamState.CLOSED
            return
        raise StreamError(
            ErrorCode.STREAM_CLOSED,
            f"HEADERS on {self.state.value} stream {self.stream_id}",
            connection_error=True,
        )

    def receive_data(self, payload: bytes, end_stream: bool) -> None:
        if self.state is StreamState.IDLE:
            raise StreamError(
                ErrorCode.PROTOCOL_ERROR,
                f"DATA on idle stream {self.stream_id}",
                connection_error=True,
            )
        if self.state not in (StreamState.OPEN, StreamState.HALF_CLOSED_LOCAL):
            raise StreamError(
                ErrorCode.STREAM_CLOSED,
                f"DATA on {self.state.value} stream {self.stream_id}",
                connection_error=True,
            )
        self.received_data.extend(payload)
        if end_stream:
            self.state = (
                StreamState.CLOSED
                if self.state is StreamState.HALF_CLOSED_LOCAL
                else StreamState.HALF_CLOSED_REMOTE
            )

    def receive_rst(self) -> None:
        """RST_STREAM from the peer: legal on any non-idle stream."""
        if self.state is StreamState.IDLE:
            raise StreamError(
                ErrorCode.PROTOCOL_ERROR,
                f"RST_STREAM on idle stream {self.stream_id}",
                connection_error=True,
            )
        self.state = StreamState.CLOSED

    # ------------------------------------------------------------------
    # Sending (local -> peer)
    # ------------------------------------------------------------------
    def send_headers(self, end_stream: bool) -> None:
        if self.state is StreamState.IDLE:
            self.state = (
                StreamState.HALF_CLOSED_LOCAL if end_stream else StreamState.OPEN
            )
            return
        if self.state in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE):
            if end_stream:
                self._close_local()
            return
        raise StreamError(
            ErrorCode.INTERNAL_ERROR,
            f"cannot send HEADERS on {self.state.value} stream {self.stream_id}",
        )

    def send_data(self, end_stream: bool) -> None:
        if self.state not in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE):
            raise StreamError(
                ErrorCode.INTERNAL_ERROR,
                f"cannot send DATA on {self.state.value} stream {self.stream_id}",
            )
        if end_stream:
            self._close_local()

    def send_rst(self) -> None:
        self.state = StreamState.CLOSED

    def _close_local(self) -> None:
        self.state = (
            StreamState.CLOSED
            if self.state is StreamState.HALF_CLOSED_REMOTE
            else StreamState.HALF_CLOSED_LOCAL
        )

    @property
    def closed(self) -> bool:
        return self.state is StreamState.CLOSED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"H2Stream(id={self.stream_id}, {self.state.value})"

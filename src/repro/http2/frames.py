"""HTTP/2 frame codec (RFC 9113 section 4).

Every frame is a 9-octet header -- 24-bit payload length, 8-bit type,
8-bit flags, 31-bit stream identifier -- followed by the payload.  The
module provides the :class:`Frame` wire codec, typed constructors and
payload parsers for the frame types the workload exercises
(DATA/HEADERS/RST_STREAM/SETTINGS/PING/GOAWAY/WINDOW_UPDATE), and a
stateful :class:`FrameDecoder` that reassembles frames from arbitrary
byte-stream chunks (the simulated network delivers datagram-sized pieces
of what is logically a TCP stream).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: The 24-octet client connection preface (RFC 9113 section 3.4).
CONNECTION_PREFACE = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

FRAME_HEADER_LEN = 9
DEFAULT_MAX_FRAME_SIZE = 16_384
MAX_STREAM_ID = 2**31 - 1


class FrameError(ValueError):
    """A malformed frame: bad length, bad flags, or a truncated payload."""


class FrameType(enum.IntEnum):
    DATA = 0x0
    HEADERS = 0x1
    PRIORITY = 0x2
    RST_STREAM = 0x3
    SETTINGS = 0x4
    PUSH_PROMISE = 0x5
    PING = 0x6
    GOAWAY = 0x7
    WINDOW_UPDATE = 0x8
    CONTINUATION = 0x9


class ErrorCode(enum.IntEnum):
    """Connection/stream error codes (RFC 9113 section 7)."""

    NO_ERROR = 0x0
    PROTOCOL_ERROR = 0x1
    INTERNAL_ERROR = 0x2
    FLOW_CONTROL_ERROR = 0x3
    SETTINGS_TIMEOUT = 0x4
    STREAM_CLOSED = 0x5
    FRAME_SIZE_ERROR = 0x6
    REFUSED_STREAM = 0x7
    CANCEL = 0x8
    COMPRESSION_ERROR = 0x9


class Setting(enum.IntEnum):
    """SETTINGS parameter identifiers (RFC 9113 section 6.5.2)."""

    HEADER_TABLE_SIZE = 0x1
    ENABLE_PUSH = 0x2
    MAX_CONCURRENT_STREAMS = 0x3
    INITIAL_WINDOW_SIZE = 0x4
    MAX_FRAME_SIZE = 0x5
    MAX_HEADER_LIST_SIZE = 0x6


FLAG_END_STREAM = 0x1
FLAG_ACK = 0x1
FLAG_END_HEADERS = 0x4
FLAG_PADDED = 0x8
FLAG_PRIORITY = 0x20

#: Which flag bits are defined for which frame type, in render order.
_FLAG_NAMES: dict[int, tuple[tuple[int, str], ...]] = {
    FrameType.DATA: ((FLAG_END_STREAM, "END_STREAM"), (FLAG_PADDED, "PADDED")),
    FrameType.HEADERS: (
        (FLAG_END_STREAM, "END_STREAM"),
        (FLAG_END_HEADERS, "END_HEADERS"),
        (FLAG_PADDED, "PADDED"),
        (FLAG_PRIORITY, "PRIORITY"),
    ),
    FrameType.SETTINGS: ((FLAG_ACK, "ACK"),),
    FrameType.PING: ((FLAG_ACK, "ACK"),),
    FrameType.CONTINUATION: ((FLAG_END_HEADERS, "END_HEADERS"),),
}


@dataclass(frozen=True)
class Frame:
    """One HTTP/2 frame: type, flags, stream id and raw payload."""

    frame_type: int
    flags: int = 0
    stream_id: int = 0
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.stream_id <= MAX_STREAM_ID:
            raise FrameError(f"stream id out of range: {self.stream_id}")
        if len(self.payload) > 0xFFFFFF:
            raise FrameError(f"payload too long: {len(self.payload)} octets")

    # -- flags -----------------------------------------------------------
    def has_flag(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @property
    def end_stream(self) -> bool:
        return self.frame_type in (FrameType.DATA, FrameType.HEADERS) and self.has_flag(
            FLAG_END_STREAM
        )

    def flag_names(self) -> tuple[str, ...]:
        """The set flag names defined for this frame type (render order)."""
        defined = _FLAG_NAMES.get(self.frame_type, ())
        return tuple(name for bit, name in defined if self.flags & bit)

    # -- wire codec ------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the 9-octet header plus payload."""
        header = (
            len(self.payload).to_bytes(3, "big")
            + bytes((self.frame_type & 0xFF, self.flags & 0xFF))
            + self.stream_id.to_bytes(4, "big")
        )
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["Frame | None", int]:
        """Decode one frame starting at ``offset``.

        Returns ``(frame, octets_consumed)``; ``(None, 0)`` when the buffer
        does not yet hold a complete frame.
        """
        if len(data) - offset < FRAME_HEADER_LEN:
            return None, 0
        length = int.from_bytes(data[offset : offset + 3], "big")
        if length > DEFAULT_MAX_FRAME_SIZE:
            raise FrameError(f"frame exceeds max size: {length} octets")
        if len(data) - offset < FRAME_HEADER_LEN + length:
            return None, 0
        frame_type = data[offset + 3]
        flags = data[offset + 4]
        stream_id = int.from_bytes(data[offset + 5 : offset + 9], "big") & MAX_STREAM_ID
        payload = bytes(data[offset + 9 : offset + 9 + length])
        frame = cls(
            frame_type=frame_type, flags=flags, stream_id=stream_id, payload=payload
        )
        return frame, FRAME_HEADER_LEN + length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            kind = FrameType(self.frame_type).name
        except ValueError:
            kind = f"0x{self.frame_type:x}"
        flags = ",".join(self.flag_names())
        return f"Frame({kind}[{flags}], sid={self.stream_id}, {len(self.payload)}B)"


class FrameDecoder:
    """Reassembles frames from arbitrary byte-stream chunks."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        """Append ``data`` and return every frame now complete, in order."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        offset = 0
        while True:
            frame, consumed = Frame.decode(self._buffer, offset)
            if frame is None:
                break
            frames.append(frame)
            offset += consumed
        if offset:
            del self._buffer[:offset]
        return frames

    @property
    def buffered(self) -> int:
        """Octets held back waiting for the rest of a frame."""
        return len(self._buffer)


# ---------------------------------------------------------------------------
# Typed constructors
# ---------------------------------------------------------------------------

def settings_frame(settings: dict[int, int] | None = None, ack: bool = False) -> Frame:
    """A SETTINGS frame; an ACK must carry no parameters (section 6.5)."""
    if ack and settings:
        raise FrameError("a SETTINGS ACK must have an empty payload")
    payload = b"".join(
        int(ident).to_bytes(2, "big") + int(value).to_bytes(4, "big")
        for ident, value in (settings or {}).items()
    )
    return Frame(FrameType.SETTINGS, FLAG_ACK if ack else 0, 0, payload)


def headers_frame(
    stream_id: int,
    header_block: bytes,
    end_stream: bool = False,
    end_headers: bool = True,
) -> Frame:
    flags = (FLAG_END_STREAM if end_stream else 0) | (
        FLAG_END_HEADERS if end_headers else 0
    )
    return Frame(FrameType.HEADERS, flags, stream_id, bytes(header_block))


def data_frame(stream_id: int, data: bytes, end_stream: bool = False) -> Frame:
    return Frame(
        FrameType.DATA, FLAG_END_STREAM if end_stream else 0, stream_id, bytes(data)
    )


def rst_stream_frame(stream_id: int, error_code: int) -> Frame:
    return Frame(FrameType.RST_STREAM, 0, stream_id, int(error_code).to_bytes(4, "big"))


def goaway_frame(last_stream_id: int, error_code: int, debug: bytes = b"") -> Frame:
    payload = last_stream_id.to_bytes(4, "big") + int(error_code).to_bytes(4, "big")
    return Frame(FrameType.GOAWAY, 0, 0, payload + debug)


def ping_frame(data: bytes = b"\x00" * 8, ack: bool = False) -> Frame:
    if len(data) != 8:
        raise FrameError(f"PING payload must be 8 octets, got {len(data)}")
    return Frame(FrameType.PING, FLAG_ACK if ack else 0, 0, data)


def window_update_frame(stream_id: int, increment: int) -> Frame:
    if not 0 < increment <= MAX_STREAM_ID:
        raise FrameError(f"window increment out of range: {increment}")
    return Frame(FrameType.WINDOW_UPDATE, 0, stream_id, increment.to_bytes(4, "big"))


# ---------------------------------------------------------------------------
# Payload parsers
# ---------------------------------------------------------------------------

def parse_settings(frame: Frame) -> dict[int, int]:
    """The identifier -> value mapping of a SETTINGS payload."""
    if len(frame.payload) % 6:
        raise FrameError(f"SETTINGS payload not a multiple of 6: {len(frame.payload)}")
    settings = {}
    for offset in range(0, len(frame.payload), 6):
        ident = int.from_bytes(frame.payload[offset : offset + 2], "big")
        settings[ident] = int.from_bytes(frame.payload[offset + 2 : offset + 6], "big")
    return settings


def parse_rst_stream(frame: Frame) -> int:
    if len(frame.payload) != 4:
        raise FrameError(f"RST_STREAM payload must be 4 octets, got {len(frame.payload)}")
    return int.from_bytes(frame.payload, "big")


def parse_goaway(frame: Frame) -> tuple[int, int]:
    """The (last stream id, error code) pair of a GOAWAY payload."""
    if len(frame.payload) < 8:
        raise FrameError(f"GOAWAY payload too short: {len(frame.payload)} octets")
    last_stream_id = int.from_bytes(frame.payload[:4], "big") & MAX_STREAM_ID
    return last_stream_id, int.from_bytes(frame.payload[4:8], "big")


def parse_window_update(frame: Frame) -> int:
    if len(frame.payload) != 4:
        raise FrameError(
            f"WINDOW_UPDATE payload must be 4 octets, got {len(frame.payload)}"
        )
    return int.from_bytes(frame.payload, "big") & MAX_STREAM_ID

"""A reference HTTP/2 client used as the concretization oracle.

The HTTP/2 counterpart of the instrumented reference implementations in
paper section 3.2: it owns the protocol logic needed to turn an abstract
symbol like ``HEADERS[END_HEADERS,END_STREAM]`` into *valid* concrete
frames for the current connection state -- the connection preface before
the first frame, monotonically increasing odd stream identifiers, HPACK
header blocks, and sensible stream targeting for DATA/RST_STREAM (the
open stream if one exists, else the most recent stream, else the next
idle one).  It keeps that state up to date by parsing every response
byte the server sends.

The HTTP/2 adapter instruments this client; the client itself knows
nothing about learning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim import Address, SimulatedNetwork
from .frames import (
    CONNECTION_PREFACE,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    Setting,
    data_frame,
    goaway_frame,
    headers_frame,
    ping_frame,
    rst_stream_frame,
    settings_frame,
    window_update_frame,
)
from .hpack import HPACKDecoder, HPACKEncoder


@dataclass
class HTTP2ClientConfig:
    host: str = "h2client"
    port: int = 40080
    request_headers: tuple = (
        (":method", "GET"),
        (":path", "/"),
        (":scheme", "http"),
        (":authority", "h2server"),
    )
    request_body: bytes = b"ping"
    ping_data: bytes = b"prognosi"  # exactly 8 octets
    window_increment: int = 1024


class HTTP2Client:
    """Protocol-state-tracking client for building concrete frames."""

    def __init__(
        self,
        network: SimulatedNetwork | None = None,
        server_address: Address | None = None,
        config: HTTP2ClientConfig | None = None,
        seed: int = 11,
    ) -> None:
        self.config = config or HTTP2ClientConfig()
        self._network = network
        self._seed = seed  # interface symmetry with the TCP/QUIC clients
        self.server_address = server_address
        # Standalone mode (network=None): a subclass overrides _transmit
        # to route bytes through a composed transport instead.
        self.endpoint = (
            network.bind(self.config.host, self.config.port)
            if network is not None
            else None
        )
        self._encoder = HPACKEncoder()
        self._decoder = HPACKDecoder()
        self.preface_sent = False
        self.next_stream_id = 1
        self.open_stream: int | None = None
        self.last_stream_id = 0
        self._frames = FrameDecoder()
        self.last_response_headers: list[tuple[str, str]] = []
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle (adapter property 3: full reset between queries)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Start a fresh logical connection."""
        self.preface_sent = False
        self.next_stream_id = 1
        self.open_stream = None
        self.last_stream_id = 0
        self._frames = FrameDecoder()
        self.last_response_headers = []
        if self.endpoint is not None:
            self.endpoint.receive_all()  # drop any stale datagrams

    def close(self) -> None:
        if self.endpoint is not None:
            self.endpoint.close()

    # ------------------------------------------------------------------
    # Concretization: abstract frame kind + flags -> valid concrete frame
    # ------------------------------------------------------------------
    def _target_stream(self) -> int:
        """The stream a stream-addressed frame refers to right now.

        The open stream if the client has one, else the most recently
        used (now closed) stream, else the next -- still idle -- stream.
        Deterministic, so the learner sees a deterministic SUL.
        """
        if self.open_stream is not None:
            return self.open_stream
        if self.last_stream_id:
            return self.last_stream_id
        return self.next_stream_id

    def build_frame(self, kind: str, flags: tuple[str, ...] = ()) -> Frame:
        """Produce a concrete frame matching the abstract request."""
        end_stream = "END_STREAM" in flags
        if kind == "SETTINGS":
            if "ACK" in flags:
                return settings_frame(ack=True)
            return settings_frame({Setting.ENABLE_PUSH: 0})
        if kind == "PING":
            return ping_frame(self.config.ping_data, ack="ACK" in flags)
        if kind == "GOAWAY":
            return goaway_frame(self.last_stream_id, ErrorCode.NO_ERROR)
        if kind == "WINDOW_UPDATE":
            return window_update_frame(0, self.config.window_increment)
        if kind == "HEADERS":
            sid = (
                self.open_stream
                if self.open_stream is not None
                else self.next_stream_id
            )
            block = self._encoder.encode(list(self.config.request_headers))
            return headers_frame(sid, block, end_stream=end_stream, end_headers=True)
        if kind == "DATA":
            return data_frame(
                self._target_stream(), self.config.request_body, end_stream=end_stream
            )
        if kind == "RST_STREAM":
            return rst_stream_frame(self._target_stream(), ErrorCode.CANCEL)
        raise ValueError(f"cannot concretize frame kind {kind!r}")

    def _note_sent(self, frame: Frame) -> None:
        """Track stream allocation and half-closes for frames we emitted."""
        if frame.frame_type == FrameType.HEADERS:
            if frame.stream_id == self.next_stream_id:
                # A fresh client-initiated stream: ids grow 1, 3, 5, ...
                self.last_stream_id = frame.stream_id
                self.next_stream_id += 2
                self.open_stream = None if frame.end_stream else frame.stream_id
            elif frame.end_stream and frame.stream_id == self.open_stream:
                self.open_stream = None  # trailers closed our side
        elif frame.frame_type == FrameType.DATA:
            if frame.end_stream and frame.stream_id == self.open_stream:
                self.open_stream = None
        elif frame.frame_type == FrameType.RST_STREAM:
            if frame.stream_id == self.open_stream:
                self.open_stream = None

    def _note_received(self, frame: Frame) -> None:
        """Track the server's view from its responses."""
        if frame.frame_type == FrameType.RST_STREAM:
            if frame.stream_id == self.open_stream:
                self.open_stream = None
        elif frame.frame_type == FrameType.HEADERS:
            self.last_response_headers = self._decoder.decode(frame.payload)

    # ------------------------------------------------------------------
    # Exchange
    # ------------------------------------------------------------------
    def exchange(
        self, kind: str, flags: tuple[str, ...] = ()
    ) -> tuple[Frame, list[Frame]]:
        """Send one concrete frame and collect the server's responses.

        The connection preface is prepended to the first frame of each
        logical connection.  Runs the simulated network to quiescence, so
        every response caused by this input (and nothing else -- adapter
        property 1) is returned, already reassembled from the byte stream.
        """
        frame = self.build_frame(kind, flags)
        payload = frame.encode()
        if not self.preface_sent:
            payload = CONNECTION_PREFACE + payload
            self.preface_sent = True
        self._note_sent(frame)
        responses: list[Frame] = []
        for chunk in self._transmit(payload):
            responses.extend(self._frames.feed(chunk))
        for response in responses:
            self._note_received(response)
        return frame, responses

    def _transmit(self, payload: bytes) -> list[bytes]:
        """Put request bytes on the wire; returns the response byte chunks.

        The default routes through the client's own network endpoint and
        runs the simulated network to quiescence; transport-composed
        clients override this to ride a
        :class:`~repro.adapter.layered.Transport` instead.
        """
        if self.endpoint is None or self.server_address is None:
            raise RuntimeError(
                "standalone HTTP2Client has no endpoint; override _transmit"
            )
        self.endpoint.send(payload, self.server_address)
        self._network.run()
        return [datagram.payload for datagram in self.endpoint.receive_all()]

"""An in-process HTTP/2 server (the HTTP/2 System Under Learning).

The server is a real byte-stream processor bound to the simulated
network: it checks the 24-octet connection preface, reassembles frames
from arbitrary chunks, enforces the connection-level handshake (the first
frame after the preface must be SETTINGS), runs every stream through the
RFC 9113 section 5.1 state machine, and answers completed requests with
an HPACK-encoded ``:status: 200`` HEADERS frame plus a DATA frame.

Behaviour quirks are configuration, mirroring the paper's Issue-style bug
hunts: :attr:`HTTP2ServerConfig.rst_on_closed_bug` makes the server treat
RST_STREAM on an already-closed stream as a connection error (GOAWAY)
instead of ignoring it as section 5.1 requires ("An endpoint MUST ignore
frames of type RST_STREAM in the closed state") -- a difference a learner
surfaces as a merged state and a property checker flags as a violation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..netsim import Datagram, Endpoint, SimulatedNetwork
from .frames import (
    CONNECTION_PREFACE,
    FLAG_ACK,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameError,
    FrameType,
    Setting,
    data_frame,
    goaway_frame,
    headers_frame,
    ping_frame,
    rst_stream_frame,
    settings_frame,
)
from .hpack import HPACKDecoder, HPACKEncoder, HPACKError
from .stream import H2Stream, StreamError, StreamState


class ConnectionState(enum.Enum):
    AWAIT_PREFACE = "await-preface"
    AWAIT_SETTINGS = "await-settings"
    READY = "ready"
    CLOSED = "closed"


@dataclass
class HTTP2ServerConfig:
    """Tunable behaviour knobs for the in-process server."""

    host: str = "h2server"
    port: int = 8443
    max_concurrent_streams: int = 16
    initial_window_size: int = 65_535
    response_headers: tuple = ((":status", "200"), ("content-type", "text/plain"))
    response_body: bytes = b"hello-http2"
    #: Quirk: treat RST_STREAM on an already-closed stream as a connection
    #: error (GOAWAY STREAM_CLOSED) instead of ignoring it per RFC 9113
    #: section 5.1 -- the seeded bug the property suite flags.
    rst_on_closed_bug: bool = False


@dataclass
class ServerStats:
    """Counters the adapter and tests inspect."""

    frames_received: int = 0
    frames_sent: int = 0
    requests_served: int = 0
    protocol_errors: int = 0
    streams_opened: int = 0
    closed_stream_ids: list = field(default_factory=list)


class HTTP2Server:
    """Single-connection HTTP/2 responder bound to a simulated network."""

    def __init__(
        self,
        network: SimulatedNetwork | None = None,
        config: HTTP2ServerConfig | None = None,
        seed: int = 7,
    ) -> None:
        self.config = config or HTTP2ServerConfig()
        self._network = network
        self._seed = seed  # interface symmetry with the TCP/QUIC servers
        # Standalone mode (network=None): a composed transport feeds bytes
        # through :meth:`process_bytes` instead of a bound endpoint.
        self.endpoint: Endpoint | None = None
        if network is not None:
            self.endpoint = network.bind(self.config.host, self.config.port)
            self.endpoint.handler = self._handle
        self._encoder = HPACKEncoder()
        self._decoder = HPACKDecoder()
        self.state = ConnectionState.AWAIT_PREFACE
        self._preface_buffer = bytearray()
        self._frames = FrameDecoder()
        self.streams: dict[int, H2Stream] = {}
        self.max_client_stream = 0
        self.stats = ServerStats()
        self.last_request_headers: list[tuple[str, str]] = []
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to a fresh connection awaiting the client preface."""
        self.state = ConnectionState.AWAIT_PREFACE
        self._preface_buffer = bytearray()
        self._frames = FrameDecoder()
        self.streams = {}
        self.max_client_stream = 0
        self.last_request_headers = []

    def close(self) -> None:
        if self.endpoint is not None:
            self.endpoint.close()

    # ------------------------------------------------------------------
    # Byte-stream processing
    # ------------------------------------------------------------------
    def _handle(self, datagram: Datagram) -> None:
        payload = self.process_bytes(datagram.payload)
        if payload:
            self.endpoint.send(payload, datagram.source)

    def process_bytes(self, data: bytes) -> bytes:
        """The transport-neutral entry point: request bytes -> response bytes.

        Exactly the processing :meth:`_handle` performs on a datagram,
        exposed so a composed transport can carry this server without a
        network endpoint.
        """
        responses = self._process_bytes(data)
        if not responses:
            return b""
        self.stats.frames_sent += len(responses)
        return b"".join(frame.encode() for frame in responses)

    def _process_bytes(self, data: bytes) -> list[Frame]:
        if self.state is ConnectionState.CLOSED:
            return []  # connection torn down: everything is ignored
        if self.state is ConnectionState.AWAIT_PREFACE:
            data = self._consume_preface(data)
            if data is None:
                return self._connection_error(ErrorCode.PROTOCOL_ERROR)
            if self.state is ConnectionState.AWAIT_PREFACE:
                return []  # preface still incomplete
        try:
            frames = self._frames.feed(data)
        except FrameError:
            return self._connection_error(ErrorCode.PROTOCOL_ERROR)
        responses: list[Frame] = []
        for frame in frames:
            self.stats.frames_received += 1
            responses.extend(self._react(frame))
            if self.state is ConnectionState.CLOSED:
                break
        return responses

    def _consume_preface(self, data: bytes) -> bytes | None:
        """Absorb preface octets; None on mismatch, the remainder on match."""
        self._preface_buffer.extend(data)
        have = len(self._preface_buffer)
        expected = CONNECTION_PREFACE[:have]
        if bytes(self._preface_buffer[: len(expected)]) != expected:
            return None
        if have < len(CONNECTION_PREFACE):
            return b""
        remainder = bytes(self._preface_buffer[len(CONNECTION_PREFACE) :])
        self._preface_buffer = bytearray()
        self.state = ConnectionState.AWAIT_SETTINGS
        return remainder

    # ------------------------------------------------------------------
    # Frame reactions
    # ------------------------------------------------------------------
    def _react(self, frame: Frame) -> list[Frame]:
        if self.state is ConnectionState.AWAIT_SETTINGS:
            # RFC 9113 3.4: the first frame after the preface MUST be the
            # client's SETTINGS frame.
            if frame.frame_type == FrameType.SETTINGS and not frame.has_flag(FLAG_ACK):
                self.state = ConnectionState.READY
                return [
                    settings_frame(
                        {
                            Setting.MAX_CONCURRENT_STREAMS: self.config.max_concurrent_streams,
                            Setting.INITIAL_WINDOW_SIZE: self.config.initial_window_size,
                        }
                    ),
                    settings_frame(ack=True),
                ]
            return self._connection_error(ErrorCode.PROTOCOL_ERROR)

        if frame.frame_type == FrameType.SETTINGS:
            return [] if frame.has_flag(FLAG_ACK) else [settings_frame(ack=True)]
        if frame.frame_type == FrameType.PING:
            if frame.has_flag(FLAG_ACK):
                return []
            if len(frame.payload) != 8:
                return self._connection_error(ErrorCode.FRAME_SIZE_ERROR)
            return [ping_frame(frame.payload, ack=True)]
        if frame.frame_type == FrameType.GOAWAY:
            # The client is going away: stop answering, drain silently.
            self.state = ConnectionState.CLOSED
            return []
        if frame.frame_type == FrameType.PRIORITY:
            return []  # advisory; ignored
        if frame.frame_type == FrameType.WINDOW_UPDATE and frame.stream_id == 0:
            return []  # connection-level flow control credit
        if frame.frame_type == FrameType.PUSH_PROMISE:
            # Clients cannot push (RFC 9113 8.4).
            return self._connection_error(ErrorCode.PROTOCOL_ERROR)
        if frame.frame_type == FrameType.CONTINUATION:
            # We never leave a header block open, so CONTINUATION is always
            # unexpected (RFC 9113 6.10).
            return self._connection_error(ErrorCode.PROTOCOL_ERROR)
        return self._stream_frame(frame)

    def _stream_frame(self, frame: Frame) -> list[Frame]:
        sid = frame.stream_id
        if sid == 0 or sid % 2 == 0:
            # Stream-addressed frames need a client-initiated (odd) stream.
            return self._connection_error(ErrorCode.PROTOCOL_ERROR)

        stream = self.streams.get(sid)
        if stream is None:
            if sid <= self.max_client_stream:
                return self._closed_stream_frame(frame)
            if frame.frame_type != FrameType.HEADERS:
                # DATA / RST_STREAM / WINDOW_UPDATE on an idle stream.
                return self._connection_error(ErrorCode.PROTOCOL_ERROR)
            self.max_client_stream = sid
            stream = H2Stream(sid)
            self.streams[sid] = stream
            self.stats.streams_opened += 1

        try:
            return self._drive_stream(stream, frame)
        except StreamError as error:
            if error.connection_error:
                return self._connection_error(error.error_code)
            self._forget(stream)
            return [rst_stream_frame(sid, error.error_code)]

    def _closed_stream_frame(self, frame: Frame) -> list[Frame]:
        """A frame addressed to a stream that already finished."""
        if frame.frame_type == FrameType.RST_STREAM:
            if self.config.rst_on_closed_bug:
                # The seeded bug: section 5.1 says closed-state RST_STREAM
                # MUST be ignored; this server escalates it instead.
                return self._connection_error(ErrorCode.STREAM_CLOSED)
            return []
        if frame.frame_type == FrameType.WINDOW_UPDATE:
            return []  # permitted "for a short period" after closing
        # DATA or HEADERS after END_STREAM: connection error (RFC 9113 5.1).
        return self._connection_error(ErrorCode.STREAM_CLOSED)

    def _drive_stream(self, stream: H2Stream, frame: Frame) -> list[Frame]:
        if frame.frame_type == FrameType.HEADERS:
            stream.receive_headers(frame.end_stream)
            if not stream.trailers_received:
                try:
                    self.last_request_headers = self._decoder.decode(frame.payload)
                except HPACKError:
                    # A header block we cannot decode desynchronizes the
                    # whole compression context: connection error
                    # (RFC 7541 section 2.2 / RFC 9113 section 4.3).
                    self._forget(stream)
                    return self._connection_error(ErrorCode.COMPRESSION_ERROR)
        elif frame.frame_type == FrameType.DATA:
            stream.receive_data(frame.payload, frame.end_stream)
        elif frame.frame_type == FrameType.RST_STREAM:
            stream.receive_rst()
            self._forget(stream)
            return []
        elif frame.frame_type == FrameType.WINDOW_UPDATE:
            return []
        if stream.state is StreamState.HALF_CLOSED_REMOTE:
            return self._respond(stream)
        return []

    def _respond(self, stream: H2Stream) -> list[Frame]:
        """Answer a completed request: HEADERS + DATA, closing our side."""
        block = self._encoder.encode(list(self.config.response_headers))
        response = [
            headers_frame(stream.stream_id, block, end_stream=False),
            data_frame(stream.stream_id, self.config.response_body, end_stream=True),
        ]
        stream.send_headers(end_stream=False)
        stream.send_data(end_stream=True)
        self.stats.requests_served += 1
        self._forget(stream)
        return response

    def _forget(self, stream: H2Stream) -> None:
        self.stats.closed_stream_ids.append(stream.stream_id)
        self.streams.pop(stream.stream_id, None)

    def _connection_error(self, code: ErrorCode) -> list[Frame]:
        self.stats.protocol_errors += 1
        self.state = ConnectionState.CLOSED
        return [goaway_frame(self.max_client_stream, code)]

"""Persistent query/model store: learning results that outlive a process.

* :class:`~repro.store.query_store.QueryStore` -- durable sqlite-backed
  membership observations keyed by SUL fingerprint (WAL, append-only);
* :class:`~repro.store.middleware.StoreBackedCache` -- the ``store``
  oracle middleware wiring that store under the prefix-tree cache;
* :class:`~repro.store.model_store.ModelStore` -- versioned learned-model
  lineage in the same sqlite file;
* :func:`~repro.store.incremental.incremental_learn` -- re-learning that
  seeds from the lineage and reports drift (the ``repro ci`` engine).
"""

from .incremental import (
    MODE_COLD,
    MODE_RELEARNED,
    MODE_REVALIDATED,
    IncrementalResult,
    incremental_learn,
)
from .middleware import StoreBackedCache
from .model_store import ModelRecord, ModelStore
from .query_store import (
    FingerprintStats,
    QueryStore,
    StoreError,
    decode_word,
    encode_word,
)

__all__ = [
    "MODE_COLD",
    "MODE_RELEARNED",
    "MODE_REVALIDATED",
    "FingerprintStats",
    "IncrementalResult",
    "ModelRecord",
    "ModelStore",
    "QueryStore",
    "StoreBackedCache",
    "StoreError",
    "decode_word",
    "encode_word",
    "incremental_learn",
]

"""The durable membership-query store (sqlite, WAL, append-only).

Campaigns re-learn from scratch because :class:`~repro.learn.cache
.QueryCache` lives and dies with one process.  A :class:`QueryStore`
persists the same ``(word, outputs)`` observations in a sqlite file keyed
by :meth:`~repro.spec.ExperimentSpec.sul_fingerprint`, so a spec learned
today warm-starts tomorrow's run -- in another process, on another
machine sharing the file, or under the process executor where several
campaign workers append concurrently.

Design points:

* **Append-only.**  Observations are immutable facts about a
  deterministic SUL; rows are only ever inserted (``INSERT OR IGNORE``
  on the ``(fingerprint, word)`` primary key) or dropped wholesale by
  :meth:`QueryStore.gc`.  Two processes racing on the same word write
  the same row.
* **WAL mode.**  Readers never block writers and concurrent writers
  serialize briefly per transaction -- the property that lets campaign
  workers share one store file.
* **Batched flush.**  :meth:`append` buffers in memory and writes
  ``flush_every`` rows per transaction, keeping the hot query path off
  the disk.
* **Consistency at load.**  :meth:`load` replays rows into a prefix
  trie; conflicting observations under one fingerprint (the SUL changed
  behind an unchanged fingerprint, or it is nondeterministic) raise
  :class:`~repro.learn.cache.CacheInconsistencyError` instead of
  silently answering with stale outputs.  ``repro store --gc`` drops
  the poisoned fingerprint.

Words and outputs are stored as canonical JSON arrays of the
``{"kind", "text"}`` symbol encoding from :mod:`repro.core.alphabet`,
so store files are human-inspectable with the sqlite3 CLI.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from ..core.alphabet import (
    AbstractSymbol,
    deserialize_symbol,
    serialize_symbol,
)
from ..core.trace import Word
from ..learn.cache import QueryCache


class StoreError(Exception):
    """A malformed or unusable persistent store."""


def encode_word(word: Sequence[AbstractSymbol]) -> str:
    """Canonical JSON text for a word (the sqlite key/value encoding)."""
    return json.dumps(
        [serialize_symbol(symbol) for symbol in word],
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_word(text: str) -> Word:
    """Inverse of :func:`encode_word`."""
    return tuple(deserialize_symbol(data) for data in json.loads(text))


@dataclass
class FingerprintStats:
    """One ``repro store --stats`` row."""

    fingerprint: str
    observations: int
    models: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS observations (
        fingerprint TEXT NOT NULL,
        word        TEXT NOT NULL,
        outputs     TEXT NOT NULL,
        PRIMARY KEY (fingerprint, word)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS usage (
        fingerprint TEXT PRIMARY KEY,
        hits        INTEGER NOT NULL DEFAULT 0,
        misses      INTEGER NOT NULL DEFAULT 0
    )
    """,
)


def open_connection(path: str | Path, timeout_s: float = 30.0) -> sqlite3.Connection:
    """A WAL-mode connection shared by the query and model stores.

    ``check_same_thread=False`` because campaign runs construct their
    store in one executor thread and may close it from another; each
    run still owns exactly one connection (sqlite connections must
    never cross a *process* boundary -- workers open their own).
    """
    try:
        conn = sqlite3.connect(
            str(path), timeout=timeout_s, check_same_thread=False
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
    except sqlite3.Error as error:
        raise StoreError(f"cannot open store {path}: {error}") from None
    return conn


class QueryStore:
    """Durable ``(fingerprint, word) -> outputs`` observations.

    Context manager; :meth:`close` flushes the append buffer.  One
    instance wraps one sqlite connection -- cheap enough to open per
    learning run, and the WAL lets many such instances (across threads
    *and* processes) share the file.
    """

    def __init__(
        self,
        path: str | Path,
        flush_every: int = 256,
        timeout_s: float = 30.0,
    ) -> None:
        if flush_every < 1:
            raise StoreError(f"need a positive flush_every, got {flush_every}")
        self.path = str(path)
        self.flush_every = flush_every
        self._conn = open_connection(path, timeout_s)
        with self._conn:
            for statement in _SCHEMA:
                self._conn.execute(statement)
        self._buffer: list[tuple[str, str, str]] = []

    # -- writing -----------------------------------------------------------
    def append(
        self,
        fingerprint: str,
        word: Sequence[AbstractSymbol],
        outputs: Sequence[AbstractSymbol],
    ) -> None:
        """Buffer one observation; flushes every ``flush_every`` rows."""
        self._buffer.append(
            (fingerprint, encode_word(word), encode_word(outputs))
        )
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write the buffered observations in one transaction."""
        if not self._buffer:
            return
        rows, self._buffer = self._buffer, []
        with self._conn:
            self._conn.executemany(
                "INSERT OR IGNORE INTO observations"
                " (fingerprint, word, outputs) VALUES (?, ?, ?)",
                rows,
            )

    def record_usage(self, fingerprint: str, hits: int, misses: int) -> None:
        """Accumulate one session's hit/miss counters for ``--stats``."""
        with self._conn:
            self._conn.execute(
                "INSERT INTO usage (fingerprint, hits, misses)"
                " VALUES (?, ?, ?)"
                " ON CONFLICT(fingerprint) DO UPDATE SET"
                " hits = hits + excluded.hits,"
                " misses = misses + excluded.misses",
                (fingerprint, hits, misses),
            )

    def gc(self, fingerprint: str) -> int:
        """Drop every observation (and usage row) for ``fingerprint``.

        Returns the number of observations removed.  This is the repair
        path for a fingerprint whose rows became inconsistent (the
        implementation changed behind an unchanged fingerprint).
        """
        self.flush()
        with self._conn:
            cursor = self._conn.execute(
                "DELETE FROM observations WHERE fingerprint = ?", (fingerprint,)
            )
            self._conn.execute(
                "DELETE FROM usage WHERE fingerprint = ?", (fingerprint,)
            )
        return cursor.rowcount

    # -- reading -----------------------------------------------------------
    def observations(self, fingerprint: str) -> Iterator[tuple[Word, Word]]:
        """All stored ``(word, outputs)`` pairs for one fingerprint."""
        self.flush()
        cursor = self._conn.execute(
            "SELECT word, outputs FROM observations"
            " WHERE fingerprint = ? ORDER BY word",
            (fingerprint,),
        )
        for word_text, outputs_text in cursor:
            yield decode_word(word_text), decode_word(outputs_text)

    def load(self, fingerprint: str) -> QueryCache:
        """The fingerprint's observations as a warm prefix-tree cache.

        Raises :class:`~repro.learn.cache.CacheInconsistencyError` when
        stored rows conflict -- stale entries must be ``gc``-ed, never
        silently merged.
        """
        cache = QueryCache()
        for word, outputs in self.observations(fingerprint):
            cache.insert(word, outputs)
        return cache

    def word_count(self, fingerprint: str) -> int:
        self.flush()
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM observations WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        return count

    def fingerprints(self) -> list[str]:
        """Every fingerprint with observations or recorded usage."""
        self.flush()
        cursor = self._conn.execute(
            "SELECT fingerprint FROM observations"
            " UNION SELECT fingerprint FROM usage ORDER BY fingerprint"
        )
        return [row[0] for row in cursor]

    def usage(self, fingerprint: str) -> tuple[int, int]:
        """Accumulated ``(hits, misses)`` recorded for the fingerprint."""
        row = self._conn.execute(
            "SELECT hits, misses FROM usage WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        return (0, 0) if row is None else (row[0], row[1])

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self.flush()
        self._conn.close()

    def __enter__(self) -> "QueryStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryStore({self.path!r})"

"""Incremental re-learning against the stored model lineage (``repro ci``).

A spec that has been learned before does not need a cold L*/TTT run to
find out whether its SUL still behaves the same.  :func:`incremental_learn`
seeds from the last :class:`~repro.store.model_store.ModelStore` record,
replays the stored model's own W-method suite (``extra_states=0``) as
membership queries through the store-backed cache -- cheap when nothing
changed, because every answer comes from the :class:`~repro.store
.query_store.QueryStore` -- and only falls back to a full learning run
when an answer diverges.  The result carries a :class:`~repro.analysis
.diff.ModelDiff` whose witnesses are product-BFS shortest diverging
words, i.e. already minimized.

``baseline`` lets a CI pipeline diff one target against another's lineage
(``repro ci http2-buggy --baseline http2``): observations and the new
model stay keyed by the spec's *own* fingerprint, only the reference
model comes from the baseline's.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..analysis.diff import ModelDiff, diff_models
from ..core.mealy import MealyMachine
from ..framework import LearningReport, Prognosis
from ..spec import ExperimentSpec
from .model_store import ModelStore

#: ``mode`` values of an :class:`IncrementalResult`.
MODE_COLD = "cold"            # no stored baseline: a full learning run
MODE_REVALIDATED = "revalidated"  # stored model confirmed query-by-query
MODE_RELEARNED = "relearned"  # divergence found: full re-learn + diff


@dataclass
class IncrementalResult:
    """What one incremental learning run established."""

    spec: ExperimentSpec
    fingerprint: str
    baseline_fingerprint: str
    mode: str
    drifted: bool
    model: MealyMachine
    baseline_version: int | None = None
    saved_version: int | None = None
    diff: ModelDiff | None = None
    report: LearningReport | None = None
    #: Stored-model transitions re-validated as membership queries.
    revalidated_words: int = 0
    #: SUL queries the revalidation itself needed (0 = fully store-served).
    revalidation_sul_queries: int = 0
    store_hits: int = 0
    store_hit_rate: float = 0.0

    def summary(self) -> str:
        name = self.spec.display_name()
        if self.mode == MODE_COLD:
            return (
                f"{name}: cold learn, no stored baseline "
                f"(saved v{self.saved_version})"
            )
        if self.mode == MODE_REVALIDATED:
            return (
                f"{name}: v{self.baseline_version} revalidated "
                f"({self.revalidated_words} words, "
                f"{self.revalidation_sul_queries} SUL queries) -- no drift"
            )
        witnesses = len(self.diff.witnesses) if self.diff is not None else 0
        return (
            f"{name}: DRIFT from v{self.baseline_version} "
            f"({witnesses} witnesses; saved v{self.saved_version})"
        )

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "fingerprint": self.fingerprint,
            "baseline_fingerprint": self.baseline_fingerprint,
            "mode": self.mode,
            "drifted": self.drifted,
            "model": self.model.to_dict(),
            "baseline_version": self.baseline_version,
            "saved_version": self.saved_version,
            "diff": None if self.diff is None else self.diff.to_dict(),
            "report": None if self.report is None else self.report.to_dict(),
            "revalidated_words": self.revalidated_words,
            "revalidation_sul_queries": self.revalidation_sul_queries,
            "store_hits": self.store_hits,
            "store_hit_rate": self.store_hit_rate,
        }


def _revalidate(
    prognosis: Prognosis, baseline: MealyMachine, batch_size: int
) -> tuple[bool, int, int]:
    """Replay the baseline's own W-method suite against the live oracle.

    Returns ``(matches, words_checked, sul_queries_spent)``.  The suite
    with ``extra_states=0`` covers every transition of the stored model,
    so an unchanged SUL answers every word exactly as the model predicts
    -- and a fully-populated store answers all of them without a SUL run.
    """
    suite = baseline.w_method_suite(extra_states=0)
    before = prognosis.sul.stats.queries
    matches = True
    for start in range(0, len(suite), batch_size):
        batch = suite[start : start + batch_size]
        answers = prognosis.oracle.query_batch(batch)
        for word, outputs in zip(batch, answers):
            if tuple(outputs) != tuple(baseline.run(word)):
                matches = False
                break
        if not matches:
            break
    return matches, len(suite), prognosis.sul.stats.queries - before


def incremental_learn(
    spec: ExperimentSpec,
    store_path: str | Path,
    *,
    baseline: str | None = None,
    save: bool = True,
) -> IncrementalResult:
    """Learn ``spec`` incrementally against the store at ``store_path``.

    With no stored baseline model this is a plain (store-backed) learning
    run that seeds the lineage.  Otherwise the stored model is
    re-validated transition-by-transition; on any divergence the spec is
    fully re-learned (through the already-warm store cache) and the two
    models are diffed.  ``baseline`` names another SUL target whose
    lineage serves as the reference (cross-variant drift demos); ``save``
    controls whether a *changed* model is appended to the lineage
    (revalidated runs never append -- the model is byte-identical).
    """
    spec = spec.validate()
    fingerprint = spec.sul_fingerprint()
    baseline_fingerprint = (
        fingerprint
        if baseline is None
        else spec.clone(target=baseline, name=None).sul_fingerprint()
    )
    working = spec if spec.store is not None else spec.clone(store=str(store_path))

    with ModelStore(store_path) as models:
        record = models.latest(baseline_fingerprint)

        with Prognosis.from_spec(working) as prognosis:
            if record is None:
                report = prognosis.learn()
                result = IncrementalResult(
                    spec=working,
                    fingerprint=fingerprint,
                    baseline_fingerprint=baseline_fingerprint,
                    mode=MODE_COLD,
                    drifted=False,
                    model=report.model,
                    report=report,
                )
            else:
                baseline_model = record.machine()
                compatible = tuple(baseline_model.input_alphabet) == tuple(
                    prognosis.oracle.input_alphabet
                )
                matches, words, sul_queries = (
                    _revalidate(prognosis, baseline_model, working.batch_size)
                    if compatible
                    else (False, 0, 0)
                )
                if matches:
                    result = IncrementalResult(
                        spec=working,
                        fingerprint=fingerprint,
                        baseline_fingerprint=baseline_fingerprint,
                        mode=MODE_REVALIDATED,
                        drifted=False,
                        model=baseline_model,
                        baseline_version=record.version,
                        revalidated_words=words,
                        revalidation_sul_queries=sul_queries,
                    )
                else:
                    # The revalidation observations already warmed the
                    # cache, so the full re-learn only pays for what the
                    # baseline could not predict.
                    report = prognosis.learn()
                    diff = (
                        diff_models(baseline_model, report.model)
                        if compatible
                        else None
                    )
                    result = IncrementalResult(
                        spec=working,
                        fingerprint=fingerprint,
                        baseline_fingerprint=baseline_fingerprint,
                        mode=MODE_RELEARNED,
                        drifted=True,
                        model=report.model,
                        baseline_version=record.version,
                        diff=diff,
                        report=report,
                        revalidated_words=words,
                        revalidation_sul_queries=sul_queries,
                    )

            cache = prognosis.cache_oracle
            result.store_hits = getattr(cache, "store_hits", 0)
            result.store_hit_rate = getattr(cache, "store_hit_rate", 0.0)

        if save and result.mode != MODE_REVALIDATED:
            result.saved_version = models.save(
                fingerprint,
                result.model,
                spec=working.to_dict(),
                stats=(
                    {} if result.report is None else result.report.to_dict()
                ),
            )
    return result

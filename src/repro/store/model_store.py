"""Versioned learned-model lineage (the other half of the store file).

A :class:`ModelStore` keeps every model ever learned for a SUL
fingerprint, together with the spec that produced it, its accounting
stats and a timestamp -- the lineage ``repro ci`` diffs against.  It
shares the sqlite file (and WAL) with :class:`~repro.store.query_store
.QueryStore`; versions are a per-fingerprint sequence starting at 1.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from ..core.mealy import MealyMachine
from .query_store import StoreError, open_connection

_SCHEMA = """
CREATE TABLE IF NOT EXISTS models (
    fingerprint TEXT NOT NULL,
    version     INTEGER NOT NULL,
    created     REAL NOT NULL,
    spec        TEXT NOT NULL,
    model       TEXT NOT NULL,
    stats       TEXT NOT NULL,
    PRIMARY KEY (fingerprint, version)
)
"""


@dataclass
class ModelRecord:
    """One stored model version with its provenance."""

    fingerprint: str
    version: int
    created: float
    spec: dict
    model: dict
    stats: dict

    def machine(self) -> MealyMachine:
        """The stored model as a live machine."""
        return MealyMachine.from_dict(self.model)

    def summary(self) -> str:
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(self.created))
        states = len({t["source"] for t in self.model.get("transitions", ())})
        return (
            f"v{self.version} ({when}Z): {states} states, "
            f"{len(self.model.get('transitions', ()))} transitions"
        )


class ModelStore:
    """Append-only model lineage keyed by SUL fingerprint."""

    def __init__(self, path: str | Path, timeout_s: float = 30.0) -> None:
        self.path = str(path)
        self._conn = open_connection(path, timeout_s)
        with self._conn:
            self._conn.execute(_SCHEMA)

    # -- writing -----------------------------------------------------------
    def save(
        self,
        fingerprint: str,
        model: MealyMachine | Mapping,
        spec: Mapping | None = None,
        stats: Mapping | None = None,
    ) -> int:
        """Store a new model version; returns the version number.

        Two processes saving concurrently race on the version sequence;
        the ``(fingerprint, version)`` primary key turns the race into a
        retry instead of a silent overwrite.
        """
        model_dict = model.to_dict() if isinstance(model, MealyMachine) else dict(model)
        payload = (
            json.dumps(dict(spec or {}), sort_keys=True),
            json.dumps(model_dict, sort_keys=True),
            json.dumps(dict(stats or {}), sort_keys=True),
        )
        for _ in range(16):
            (current,) = self._conn.execute(
                "SELECT COALESCE(MAX(version), 0) FROM models"
                " WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            version = current + 1
            try:
                with self._conn:
                    self._conn.execute(
                        "INSERT INTO models"
                        " (fingerprint, version, created, spec, model, stats)"
                        " VALUES (?, ?, ?, ?, ?, ?)",
                        (fingerprint, version, time.time(), *payload),
                    )
                return version
            except sqlite3.IntegrityError:  # another writer took it: retry
                continue
        raise StoreError(
            f"could not allocate a model version for {fingerprint!r}"
        )

    def gc(self, fingerprint: str) -> int:
        """Drop the fingerprint's whole model lineage; returns row count."""
        with self._conn:
            cursor = self._conn.execute(
                "DELETE FROM models WHERE fingerprint = ?", (fingerprint,)
            )
        return cursor.rowcount

    # -- reading -----------------------------------------------------------
    def _record(self, row) -> ModelRecord:
        fingerprint, version, created, spec, model, stats = row
        return ModelRecord(
            fingerprint=fingerprint,
            version=version,
            created=created,
            spec=json.loads(spec),
            model=json.loads(model),
            stats=json.loads(stats),
        )

    def latest(self, fingerprint: str) -> ModelRecord | None:
        """The newest stored model for a fingerprint, or ``None``."""
        row = self._conn.execute(
            "SELECT fingerprint, version, created, spec, model, stats"
            " FROM models WHERE fingerprint = ?"
            " ORDER BY version DESC LIMIT 1",
            (fingerprint,),
        ).fetchone()
        return None if row is None else self._record(row)

    def history(self, fingerprint: str) -> list[ModelRecord]:
        """Every stored version, oldest first (the lineage)."""
        cursor = self._conn.execute(
            "SELECT fingerprint, version, created, spec, model, stats"
            " FROM models WHERE fingerprint = ? ORDER BY version",
            (fingerprint,),
        )
        return [self._record(row) for row in cursor]

    def version_count(self, fingerprint: str) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM models WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        return count

    def fingerprints(self) -> list[str]:
        cursor = self._conn.execute(
            "SELECT DISTINCT fingerprint FROM models ORDER BY fingerprint"
        )
        return [row[0] for row in cursor]

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ModelStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelStore({self.path!r})"

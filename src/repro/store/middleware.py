"""The ``store`` oracle middleware: a query cache that survives processes.

:class:`StoreBackedCache` is the prefix-tree cache layer with a durable
sqlite backing: on construction it warm-starts its trie from every
observation the :class:`~repro.store.query_store.QueryStore` holds for
the SUL fingerprint, and every fresh observation is appended back
(batched, WAL).  A spec opts in declaratively via its ``store`` section
(:func:`repro.spec.assemble` swaps the plain ``cache`` layer for this
one), or explicitly as a ``{"kind": "store"}`` middleware entry.

Hit accounting distinguishes *store-served* hits (the word was already
in the store when this run began) from ordinary within-run hits, which
is what the warm-start identity guarantee measures: a re-learn of an
unchanged spec must serve >= 90% of its membership queries from the
store and never reset the SUL.
"""

from __future__ import annotations

from ..core.trace import Word
from ..learn.cache import CachedMembershipOracle, QueryCache
from ..learn.teacher import MembershipOracle
from ..registry import MIDDLEWARE_REGISTRY
from .query_store import QueryStore


@MIDDLEWARE_REGISTRY.register("store")
class StoreBackedCache(CachedMembershipOracle):
    """Cache middleware persisting observations to a :class:`QueryStore`.

    ``path`` locates the sqlite store file and ``fingerprint`` keys this
    SUL's observations in it (:func:`repro.spec.assemble` injects the
    spec's :meth:`~repro.spec.ExperimentSpec.sul_fingerprint`).  A
    pre-warmed ``cache`` (campaign cross-run sharing) merges with the
    stored observations; a conflict between the two raises
    :class:`~repro.learn.cache.CacheInconsistencyError` -- stale store
    rows must be garbage-collected, never silently preferred.

    Call :meth:`close` (the :class:`~repro.framework.Prognosis` context
    manager does) to flush the append buffer and record hit/miss usage.
    """

    def __init__(
        self,
        inner: MembershipOracle,
        path: str,
        fingerprint: str,
        flush_every: int = 256,
        collapse_prefixes: bool = True,
        cache: QueryCache | None = None,
    ) -> None:
        super().__init__(
            inner, collapse_prefixes=collapse_prefixes, cache=cache
        )
        self.store = QueryStore(path, flush_every=flush_every)
        self.fingerprint = fingerprint
        self.store_hits = 0
        #: The observations present in the store when this run began;
        #: kept as a second trie so hit accounting can tell store-served
        #: answers apart from within-run ones (prefix hits included).
        self._preloaded = QueryCache()
        try:
            for word, outputs in self.store.observations(fingerprint):
                self._preloaded.insert(word, outputs)
                self.cache.insert(word, outputs)
        except Exception:
            self.store.close()
            raise
        self._closed = False

    # -- hooks -------------------------------------------------------------
    def _note_hits(self, word: Word, count: int = 1) -> None:
        super()._note_hits(word, count)
        if self._preloaded.lookup(word) is not None:
            self.store_hits += count

    def _record(self, word: Word, outputs: Word) -> None:
        super()._record(word, outputs)
        if self._preloaded.lookup(word) is None:
            self.store.append(self.fingerprint, word, outputs)

    # -- accounting --------------------------------------------------------
    @property
    def store_hit_rate(self) -> float:
        """Share of membership queries served from the *persistent* store."""
        total = self.hits + self.misses
        return self.store_hits / total if total else 0.0

    @property
    def preloaded_words(self) -> int:
        return self._preloaded.entries

    # -- lifecycle ---------------------------------------------------------
    def flush(self) -> None:
        self.store.flush()

    def close(self) -> None:
        """Flush buffered observations and record this session's usage."""
        if self._closed:
            return
        self._closed = True
        if self.hits or self.misses:
            self.store.record_usage(
                self.fingerprint, hits=self.store_hits, misses=self.misses
            )
        self.store.close()

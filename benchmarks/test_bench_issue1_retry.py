"""E6 -- Issue 1: RFC imprecision on post-RETRY packet-number resets."""

from conftest import report, run_once

from repro.experiments import issue1_retry_divergence


def test_issue1_model_size_divergence(benchmark):
    result = run_once(benchmark, issue1_retry_divergence)
    strict_states, lenient_states = result.sizes
    report(
        "E6 Issue1 RETRY divergence",
        [
            ("models differ", "yes", "yes" if not result.diff.equivalent else "no"),
            ("strict (aborts) model states", "(small)", strict_states),
            ("lenient (continues) model states", "(full)", lenient_states),
            ("size gap", "vastly different", result.diff.size_gap),
        ],
    )
    # The paper noticed "vastly different sizes"; the strict implementation
    # aborts the connection so its model collapses.
    assert not result.diff.equivalent
    assert strict_states < lenient_states
    assert result.diff.size_gap >= 3
    assert result.diff.witnesses, "expected concrete divergence witnesses"

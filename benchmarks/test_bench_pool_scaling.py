"""S1 -- Scaling: executor backends vs serial, and prefix collapse.

The batch-first pipeline's levers, measured separately:

* **SUL pooling** -- a latency-injected TCP adapter (0.3 ms per step,
  standing in for the network round-trips a real closed-box SUL pays)
  learned serially vs on a 4-worker thread pool.  Learned models must be
  identical; pooled wall-clock must beat serial; the ``i mod n`` sharding
  must keep per-worker load balanced.
* **Executor matrix** -- serial vs thread vs process backends on a
  CPU-bound simulator SUL (where the GIL caps threads and only processes
  scale) and on the real-boundary socket SUL (where threads scale fine,
  because queries wait on the wire).  Every cell's model must equal
  serial's; the wall-clocks and speedups land in the machine-readable
  ``bench_executor_scaling.json`` artifact CI uploads.
* **Prefix collapse** -- one W-method suite submitted through the cache
  planner with collapse on vs off: within-batch prefix-closure answers a
  measurable share of the suite without touching the SUL.

``BENCH_EXECUTOR_SMALL=1`` shrinks the matrix work (CI smoke): the
model-identity assertions still run but the timing assertions are
skipped, because a loaded runner proves nothing about speedups.  Timing
assertions also need >= 4 usable cores -- a 1-core box cannot exhibit
process parallelism regardless of backend correctness.
``BENCH_EXECUTOR_OUT`` overrides the artifact path.
"""

import json
import os
import time
from pathlib import Path

from conftest import report, run_once

from repro.adapter.mealy_sul import MealySUL
from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.framework import Prognosis
from repro.learn.cache import CachedMembershipOracle
from repro.learn.equivalence import WMethodEquivalenceOracle
from repro.learn.teacher import SULMembershipOracle
from repro.registry import RegistryFactory
from repro.spec import ExperimentSpec

STEP_LATENCY = 0.0003  # 0.3 ms per exchanged symbol
POOL_WORKERS = 4
SMALL = bool(os.environ.get("BENCH_EXECUTOR_SMALL"))
#: CPU-bound speedup needs actual CPUs: a 1-core box cannot run worker
#: processes in parallel no matter how correct the backend is, so the
#: timing assertions (never the identity ones) are gated on core count.
CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)
ASSERT_TIMINGS = not SMALL and CORES >= POOL_WORKERS
#: Iterations of pure-Python arithmetic per step: ~0.3-0.5 ms of work the
#: GIL refuses to parallelize.  The small (CI smoke) variant keeps the
#: same code path at a fraction of the cost.
BUSY_LOOP = 300 if SMALL else 4000
#: W-method extra states for the matrix learns (0 shrinks the suite ~7x).
MATRIX_EXTRA_STATES = 0 if SMALL else 1
ARTIFACT_PATH = Path(os.environ.get("BENCH_EXECUTOR_OUT", "bench_executor_scaling.json"))

MATRIX_CELLS = (("serial", 1), ("thread", POOL_WORKERS), ("process", POOL_WORKERS))


class LatentTCPSUL(TCPAdapterSUL):
    """TCP adapter with a per-step delay standing in for network RTT."""

    def _step_impl(self, symbol):
        time.sleep(STEP_LATENCY)
        return super()._step_impl(symbol)


class BusyTCPSUL(TCPAdapterSUL):
    """TCP adapter that *computes* per step: the CPU-bound scaling case.

    Module-level (hence picklable) so the process backend can build it
    inside its worker processes.
    """

    def _step_impl(self, symbol):
        acc = 0
        for i in range(BUSY_LOOP):
            acc += i * i
        return super()._step_impl(symbol)


def _busy_sul():
    return BusyTCPSUL(seed=3)


def _latent_sul():
    return LatentTCPSUL(seed=3)


def _socket_sul_factory():
    """The real-boundary SUL: the TCP simulator behind its own server
    process, reached over the wire protocol.  A RegistryFactory so the
    process backend can rebuild it in its children."""
    return RegistryFactory(
        "remote", {"target": "tcp", "seed": 3, "step_delay": STEP_LATENCY}
    )


def _learn_on(kind, workers, sul_factory, name):
    prognosis = Prognosis(
        sul_factory=sul_factory,
        workers=workers,
        executor=kind,
        extra_states=MATRIX_EXTRA_STATES,
        name=name,
    )
    start = time.perf_counter()
    try:
        learning_report = prognosis.learn()
        per_worker = prognosis.sul.per_worker_queries()
    finally:
        prognosis.close()
    return learning_report, time.perf_counter() - start, per_worker


def _merge_artifact(section: str, data: dict) -> None:
    """Merge one section into the scaling artifact (tests run in any order)."""
    existing = (
        json.loads(ARTIFACT_PATH.read_text()) if ARTIFACT_PATH.exists() else {}
    )
    existing[section] = data
    existing["meta"] = {"workers": POOL_WORKERS, "cores": CORES, "small": SMALL}
    ARTIFACT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True))


def _assert_balanced(per_worker):
    """``i mod n`` sharding skews by at most one word per batch, so tiny
    totals get absolute slack; real runs must stay within a tight ratio."""
    assert min(per_worker) > 0
    spread_ok = max(per_worker) - min(per_worker) <= 2
    ratio_ok = max(per_worker) / min(per_worker) < 1.6
    assert spread_ok or ratio_ok, f"unbalanced shards: {per_worker}"


def _run_matrix(sul_factory, label):
    serial_model = None
    rows = {}
    for kind, workers in MATRIX_CELLS:
        learning_report, wall, per_worker = _learn_on(
            kind, workers, sul_factory, name=label
        )
        if kind == "serial":
            serial_model = learning_report.model
            serial_wall = wall
        rows[kind] = {
            "workers": workers,
            "wall_s": round(wall, 4),
            "speedup_vs_serial": round(serial_wall / wall, 3),
            "sul_queries": learning_report.sul_queries,
            "states": learning_report.num_states,
            "model_matches_serial": (
                learning_report.model.to_dict() == serial_model.to_dict()
            ),
            "per_worker_queries": per_worker,
        }
    return rows


def test_pool_scaling_vs_serial(benchmark):
    def run_both():
        serial = _learn_on("serial", 1, _latent_sul, "tcp")
        pooled = _learn_on("thread", POOL_WORKERS, _latent_sul, "tcp")
        return serial, pooled

    (
        (serial_report, serial_wall, _),
        (pooled_report, pooled_wall, per_worker),
    ) = run_once(benchmark, run_both)
    report(
        "S1 SUL pool scaling",
        [
            ("serial wall-clock", "-", f"{serial_wall:.2f}s"),
            (f"pooled wall-clock (w={POOL_WORKERS})", "-", f"{pooled_wall:.2f}s"),
            ("speedup", f"< {POOL_WORKERS}x", f"{serial_wall / pooled_wall:.2f}x"),
            ("serial SUL queries", "-", serial_report.sul_queries),
            ("pooled SUL queries", "same", pooled_report.sul_queries),
            ("per-worker queries", "balanced", per_worker),
        ],
    )
    # Parallelism must not change what is learned ...
    assert serial_report.model.states == pooled_report.model.states
    assert serial_report.counterexamples == pooled_report.counterexamples
    assert serial_report.sul_queries == pooled_report.sul_queries
    # ... nor skew the deterministic i mod n sharding: every worker gets
    # its fair share (small batches pin to low workers, hence the slack).
    assert sum(per_worker) == pooled_report.sul_queries
    _assert_balanced(per_worker)
    # ... only how fast (generous margin: CI boxes are noisy).
    assert pooled_wall < serial_wall


def test_executor_matrix_cpu_bound(benchmark):
    """Serial vs thread vs process on a SUL that burns CPU per step.

    The paper-level claim behind the process backend: pure-Python SUL
    work is GIL-bound, so threads cannot scale it -- worker processes
    can, while learning the exact same model.
    """
    rows = run_once(benchmark, _run_matrix, _busy_sul, "tcp")
    report(
        "S1 executor matrix (CPU-bound SUL)",
        [
            (
                f"{kind} wall-clock (w={row['workers']})",
                "-",
                f"{row['wall_s']:.2f}s ({row['speedup_vs_serial']:.2f}x)",
            )
            for kind, row in rows.items()
        ],
    )
    _merge_artifact("cpu_bound", rows)
    for kind, row in rows.items():
        assert row["model_matches_serial"], f"{kind} learned a different model"
        assert row["sul_queries"] == rows["serial"]["sul_queries"]
    _assert_balanced(rows["process"]["per_worker_queries"])
    if ASSERT_TIMINGS:
        assert rows["process"]["speedup_vs_serial"] > 2.0
        assert rows["thread"]["speedup_vs_serial"] < 1.3


def test_executor_matrix_socket_sul(benchmark):
    """The same matrix across the real process/socket boundary.

    Socket queries wait on the wire, so here the *thread* backend scales
    too -- and the boundary must not change the learned model either.
    """
    rows = run_once(benchmark, _run_matrix, _socket_sul_factory(), "tcp")
    report(
        "S1 executor matrix (socket SUL)",
        [
            (
                f"{kind} wall-clock (w={row['workers']})",
                "-",
                f"{row['wall_s']:.2f}s ({row['speedup_vs_serial']:.2f}x)",
            )
            for kind, row in rows.items()
        ],
    )
    _merge_artifact("socket", rows)
    for kind, row in rows.items():
        assert row["model_matches_serial"], f"{kind} learned a different model"
        assert row["sul_queries"] == rows["serial"]["sul_queries"]
    if ASSERT_TIMINGS:
        assert rows["thread"]["speedup_vs_serial"] > 1.5


IDENTITY_TARGETS = ("tcp", "http2") if SMALL else ("tcp", "quic-google", "http2")


def test_executor_model_identity_across_targets(benchmark):
    """serial == thread == process model bytes on every paper target.

    This is the acceptance gate: the executor is a scheduling decision,
    and scheduling must never leak into what gets learned.
    """
    from repro.campaign import run_spec

    def run_matrix():
        out = {}
        for target in IDENTITY_TARGETS:
            models = {}
            queries = {}
            for kind, workers in MATRIX_CELLS:
                spec = ExperimentSpec(
                    target=target,
                    seed=7,
                    name=target,
                    workers=workers,
                    executor={"kind": kind, "workers": workers},
                )
                result = run_spec(spec)
                assert result.ok, f"{target}/{kind}: {result.error}"
                models[kind] = json.dumps(
                    result.model.minimize().to_dict(), sort_keys=True
                )
                queries[kind] = result.report.sul_queries
            out[target] = {
                "identical": len(set(models.values())) == 1,
                "states": result.model.minimize().num_states,
                "sul_queries": queries,
            }
        return out

    out = run_once(benchmark, run_matrix)
    report(
        "S1 executor model identity",
        [
            (
                target,
                "identical",
                f"{'identical' if row['identical'] else 'DIVERGED'} "
                f"({row['states']} states)",
            )
            for target, row in out.items()
        ],
    )
    _merge_artifact("model_identity", out)
    assert all(row["identical"] for row in out.values())


def test_prefix_collapse_reduces_sul_queries(benchmark, tcp_full):
    model = tcp_full.model

    def run_suite(collapse: bool):
        sul = MealySUL(model)
        oracle = CachedMembershipOracle(
            SULMembershipOracle(sul), collapse_prefixes=collapse
        )
        eq = WMethodEquivalenceOracle(oracle, extra_states=1, batch_size=256)
        assert eq.find_counterexample(model) is None
        return eq.last_suite_size, sul.stats.queries, oracle.prefix_collapsed

    def run_both():
        return run_suite(collapse=True), run_suite(collapse=False)

    (suite, with_collapse, collapsed), (_, without_collapse, _) = run_once(
        benchmark, run_both
    )
    report(
        "S1 prefix collapse (W-method suite)",
        [
            ("suite words", "-", suite),
            ("SUL runs without collapse", "-", without_collapse),
            ("SUL runs with collapse", "fewer", with_collapse),
            ("words answered by a longer run", "-", collapsed),
            ("saving", "-", f"{1 - with_collapse / without_collapse:.0%}"),
        ],
    )
    assert with_collapse < without_collapse
    assert collapsed == without_collapse - with_collapse

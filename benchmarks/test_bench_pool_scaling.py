"""S1 -- Scaling: pooled batch execution vs serial, and prefix collapse.

The batch-first pipeline's two levers, measured separately:

* **SUL pooling** -- a latency-injected TCP adapter (0.3 ms per step,
  standing in for the network round-trips a real closed-box SUL pays)
  learned serially vs on a 4-worker pool.  Learned models must be
  identical; pooled wall-clock must beat serial.
* **Prefix collapse** -- one W-method suite submitted through the cache
  planner with collapse on vs off: within-batch prefix-closure answers a
  measurable share of the suite without touching the SUL.
"""

import time

from conftest import report, run_once

from repro.adapter.mealy_sul import MealySUL
from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.framework import Prognosis
from repro.learn.cache import CachedMembershipOracle
from repro.learn.equivalence import WMethodEquivalenceOracle
from repro.learn.teacher import SULMembershipOracle

STEP_LATENCY = 0.0003  # 0.3 ms per exchanged symbol
POOL_WORKERS = 4


class LatentTCPSUL(TCPAdapterSUL):
    """TCP adapter with a per-step delay standing in for network RTT."""

    def _step_impl(self, symbol):
        time.sleep(STEP_LATENCY)
        return super()._step_impl(symbol)


def _learn(workers: int):
    prognosis = Prognosis(
        sul_factory=lambda: LatentTCPSUL(seed=3),
        workers=workers,
        name=f"tcp-w{workers}",
    )
    start = time.perf_counter()
    try:
        learning_report = prognosis.learn()
    finally:
        prognosis.close()
    return learning_report, time.perf_counter() - start


def test_pool_scaling_vs_serial(benchmark):
    def run_both():
        serial_report, serial_wall = _learn(workers=1)
        pooled_report, pooled_wall = _learn(workers=POOL_WORKERS)
        return serial_report, serial_wall, pooled_report, pooled_wall

    serial_report, serial_wall, pooled_report, pooled_wall = run_once(
        benchmark, run_both
    )
    report(
        "S1 SUL pool scaling",
        [
            ("serial wall-clock", "-", f"{serial_wall:.2f}s"),
            (f"pooled wall-clock (w={POOL_WORKERS})", "-", f"{pooled_wall:.2f}s"),
            ("speedup", f"< {POOL_WORKERS}x", f"{serial_wall / pooled_wall:.2f}x"),
            ("serial SUL queries", "-", serial_report.sul_queries),
            ("pooled SUL queries", "same", pooled_report.sul_queries),
        ],
    )
    # Parallelism must not change what is learned ...
    assert serial_report.model.states == pooled_report.model.states
    assert serial_report.counterexamples == pooled_report.counterexamples
    assert serial_report.sul_queries == pooled_report.sul_queries
    # ... only how fast (generous margin: CI boxes are noisy).
    assert pooled_wall < serial_wall


def test_prefix_collapse_reduces_sul_queries(benchmark, tcp_full):
    model = tcp_full.model

    def run_suite(collapse: bool):
        sul = MealySUL(model)
        oracle = CachedMembershipOracle(
            SULMembershipOracle(sul), collapse_prefixes=collapse
        )
        eq = WMethodEquivalenceOracle(oracle, extra_states=1, batch_size=256)
        assert eq.find_counterexample(model) is None
        return eq.last_suite_size, sul.stats.queries, oracle.prefix_collapsed

    def run_both():
        return run_suite(collapse=True), run_suite(collapse=False)

    (suite, with_collapse, collapsed), (_, without_collapse, _) = run_once(
        benchmark, run_both
    )
    report(
        "S1 prefix collapse (W-method suite)",
        [
            ("suite words", "-", suite),
            ("SUL runs without collapse", "-", without_collapse),
            ("SUL runs with collapse", "fewer", with_collapse),
            ("words answered by a longer run", "-", collapsed),
            ("saving", "-", f"{1 - with_collapse / without_collapse:.0%}"),
        ],
    )
    assert with_collapse < without_collapse
    assert collapsed == without_collapse - with_collapse

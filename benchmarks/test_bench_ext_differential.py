"""Extension bench -- model-based differential testing (paper sections 5/7).

The learned Quiche model's test suite is replayed against both a fresh
Quiche-like SUL (conformance: zero divergences) and the Google-like SUL
(differential testing: the design differences of section 6.2 surface as
divergences with concrete witnesses).
"""

from conftest import report, run_once

from repro.analysis.testgen import differential_test, generate_test_suite
from repro.experiments import make_quic_sul


def test_differential_testing_quic(benchmark, quic_quiche):
    model = quic_quiche.model
    suite = generate_test_suite(model, "transition-cover")

    def run_both():
        conformance = differential_test(
            model, make_quic_sul("quiche", seed=321), suite
        )
        cross = differential_test(model, make_quic_sul("google", seed=321), suite)
        return conformance, cross

    conformance, cross = run_once(benchmark, run_both)
    report(
        "EXT differential testing",
        [
            ("suite size (transition cover)", "-", conformance.suite_size),
            ("self-conformance divergences", 0, len(conformance.divergences)),
            ("cross-implementation divergences", "> 0", len(cross.divergences)),
            (
                "first divergence",
                "design difference",
                cross.divergences[0].render()[:60] if cross.divergences else "-",
            ),
        ],
    )
    assert conformance.conforms
    assert not cross.conforms
    assert cross.divergence_rate > 0.3

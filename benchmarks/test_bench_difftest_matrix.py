"""S2 -- Differential conformance matrix: pooled vs serial wall-clock.

A :class:`~repro.campaign.DiffCampaign` has three parallelism levers:
concurrent learning runs, concurrent (row, column) replay pairs, and SUL
pools inside each run/replay.  This benchmark measures the full matrix
over two latency-injected toy implementations (1 ms per exchanged
symbol, standing in for the network round-trips a real closed-box SUL
pays) serially and with all three levers at ``workers=4``.  Verdicts and
witnesses must be identical; only wall-clock may change.
"""

import time

from conftest import report, run_once

from repro.adapter.mealy_sul import MealySUL, toy_machine
from repro.campaign import DiffCampaign
from repro.core.mealy import MealyMachine
from repro.registry import SUL_REGISTRY
from repro.spec import ExperimentSpec

STEP_LATENCY = 0.001  # 1 ms per exchanged symbol
POOL_WORKERS = 4


class _LatentMealySUL(MealySUL):
    """A machine-backed SUL with a per-step delay standing in for RTT."""

    def _step_impl(self, symbol):
        time.sleep(STEP_LATENCY)
        return super()._step_impl(symbol)


def _mutant_machine() -> MealyMachine:
    """The toy machine except the established state RSTs an ACK."""
    base = toy_machine()
    syn, ack = base.input_alphabet.symbols
    rst = base.step("s1", syn)[1]
    table = {
        (t.source, t.input): (t.target, t.output) for t in base.transitions()
    }
    table[("s1", ack)] = (table[("s1", ack)][0], rst)
    return MealyMachine("s0", base.input_alphabet, table, "bench-latent-mutant")


def _campaign(workers: int) -> DiffCampaign:
    specs = [
        ExperimentSpec(
            target="bench-latent-toy", workers=workers, name="latent-toy"
        ),
        ExperimentSpec(
            target="bench-latent-mutant", workers=workers, name="latent-mutant"
        ),
    ]
    return DiffCampaign(specs, kinds=("wmethod",), workers=workers)


def _run_matrix(workers: int):
    start = time.perf_counter()
    result = _campaign(workers).run()
    return result, time.perf_counter() - start


def test_difftest_matrix_pooled_beats_serial(benchmark):
    SUL_REGISTRY.register(
        "bench-latent-toy",
        lambda: _LatentMealySUL(toy_machine(), name="bench-latent-toy"),
    )
    SUL_REGISTRY.register(
        "bench-latent-mutant",
        lambda: _LatentMealySUL(_mutant_machine(), name="bench-latent-mutant"),
    )
    try:
        def run_both():
            serial_result, serial_wall = _run_matrix(workers=1)
            pooled_result, pooled_wall = _run_matrix(workers=POOL_WORKERS)
            return serial_result, serial_wall, pooled_result, pooled_wall

        serial_result, serial_wall, pooled_result, pooled_wall = run_once(
            benchmark, run_both
        )
    finally:
        SUL_REGISTRY.unregister("bench-latent-toy")
        SUL_REGISTRY.unregister("bench-latent-mutant")

    divergent = serial_result.matrix.divergent_pairs()
    report(
        "S2 difftest matrix scaling",
        [
            ("serial wall-clock", "-", f"{serial_wall:.2f}s"),
            (f"pooled wall-clock (w={POOL_WORKERS})", "-", f"{pooled_wall:.2f}s"),
            ("speedup", "> 1x", f"{serial_wall / pooled_wall:.2f}x"),
            ("divergent pairs", 2, len(divergent)),
            (
                "witness length",
                2,
                len(divergent[0].witness) if divergent else "-",
            ),
        ],
    )
    # Parallelism must not change the matrix ...
    assert len(serial_result.matrix.cells) == len(pooled_result.matrix.cells)
    for key, cell in serial_result.matrix.cells.items():
        other = pooled_result.matrix.cells[key]
        assert cell.verdict == other.verdict
        assert cell.witness == other.witness
        assert cell.suite_size == other.suite_size
    assert len(divergent) == 2
    for cell in divergent:
        assert cell.witness_validated
    # ... only how fast (generous margin: CI boxes are noisy).
    assert pooled_wall < serial_wall

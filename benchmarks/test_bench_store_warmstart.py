"""S2 -- Persistent store warm-start: cold vs warm learning cost.

A learning run through an empty :class:`~repro.store.query_store
.QueryStore` pays the full SUL bill once; re-learning the same spec
through the populated store must answer (nearly) every membership query
from sqlite and touch the SUL **zero** times, while producing a
byte-identical model.  Measured per target (tcp, quic-google, http2):
cold vs warm wall-clock, SUL query/reset counts, and the warm store hit
rate -- written to the machine-readable ``bench_store_warmstart.json``
artifact CI uploads.

``BENCH_STORE_OUT`` overrides the artifact path.  Identity assertions
always run; wall-clock numbers are reported but never asserted (a loaded
runner proves nothing about sqlite being faster than a simulator).
"""

import json
import os
import time
from pathlib import Path

from conftest import report, run_once

from repro.campaign import run_spec
from repro.spec import ExperimentSpec
from repro.store import QueryStore

TARGETS = ("tcp", "quic-google", "http2")
ARTIFACT_PATH = Path(
    os.environ.get("BENCH_STORE_OUT", "bench_store_warmstart.json")
)


def _timed_run(spec: ExperimentSpec, store: Path):
    start = time.perf_counter()
    result = run_spec(spec, store=str(store))
    elapsed = time.perf_counter() - start
    assert result.ok, result.error
    return result, elapsed


def _measure(tmp_path: Path) -> dict:
    sections = {}
    for target in TARGETS:
        store = tmp_path / f"{target}.sqlite"
        spec = ExperimentSpec(target=target, name=target)
        cold, cold_s = _timed_run(spec, store)
        warm, warm_s = _timed_run(spec, store)

        assert json.dumps(warm.model.to_dict(), sort_keys=True) == json.dumps(
            cold.model.to_dict(), sort_keys=True
        ), f"{target}: warm model differs from cold"
        assert warm.report.sul_queries == 0, target
        assert warm.report.sul_resets == 0, target
        assert warm.report.store_hit_rate >= 0.9, target

        with QueryStore(store) as qs:
            stored_words = qs.word_count(spec.sul_fingerprint())
        sections[target] = {
            "cold_wall_s": round(cold_s, 4),
            "warm_wall_s": round(warm_s, 4),
            "cold_sul_queries": cold.report.sul_queries,
            "warm_sul_queries": warm.report.sul_queries,
            "cold_sul_resets": cold.report.sul_resets,
            "warm_sul_resets": warm.report.sul_resets,
            "warm_store_hit_rate": round(warm.report.store_hit_rate, 4),
            "stored_words": stored_words,
            "states": warm.report.num_states,
        }
    return sections


def test_store_warmstart_cold_vs_warm(benchmark, tmp_path):
    sections = run_once(benchmark, _measure, tmp_path)
    ARTIFACT_PATH.write_text(json.dumps(sections, indent=2, sort_keys=True))
    rows = []
    for target, data in sections.items():
        rows.append(
            (
                f"{target} SUL queries cold->warm",
                f"{data['cold_sul_queries']} -> 0",
                f"{data['cold_sul_queries']} -> {data['warm_sul_queries']}",
            )
        )
        rows.append(
            (
                f"{target} wall-clock cold->warm",
                "warm ~free",
                f"{data['cold_wall_s']:.2f}s -> {data['warm_wall_s']:.2f}s",
            )
        )
    report("store-warmstart", rows)

"""Shared benchmark plumbing.

Each benchmark runs its experiment exactly once through pytest-benchmark's
pedantic mode (learning runs are seconds, not microseconds) and prints a
``paper vs measured`` row that ends up in bench_output.txt, feeding
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (results are cached runs)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(experiment_id: str, rows: list[tuple[str, object, object]]) -> None:
    """Print a paper-vs-measured table row block."""
    print(f"\n[{experiment_id}]")
    for name, paper, measured in rows:
        print(f"  {name:<38} paper: {paper!s:>14}  measured: {measured!s:>14}")


@pytest.fixture(scope="session")
def quic_google():
    from repro.experiments import learn_quic

    return learn_quic("google")


@pytest.fixture(scope="session")
def quic_quiche():
    from repro.experiments import learn_quic

    return learn_quic("quiche")


@pytest.fixture(scope="session")
def tcp_full():
    from repro.experiments import learn_tcp_full

    return learn_tcp_full()

"""E7 -- Issue 2: mvfst's nondeterministic stateless resets (~82%)."""

from conftest import report, run_once

from repro.experiments import issue2_nondeterminism


def test_issue2_nondeterministic_resets(benchmark):
    result = run_once(benchmark, issue2_nondeterminism, samples=200)
    report(
        "E7 Issue2 mvfst nondeterminism",
        [
            ("learning aborts", "yes", "yes"),
            ("RESET response rate", "0.82", f"{result.reset_rate:.2f}"),
            ("back-off present", "no (DoS risk)", "no"),
        ],
    )
    # The paper measured 82%; with 200 seeded samples we accept +-10pp.
    assert 0.72 <= result.reset_rate <= 0.92
    assert result.error.frequency_of_most_common() < 0.95

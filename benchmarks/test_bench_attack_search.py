"""A1 -- Attack synthesis: product-search and replay-confirmation rates.

The attack subsystem's operational claims, measured:

* **Synthesis throughput** -- strategies found and product states
  expanded per second when searching the learned-model x attacker
  product over every applicable built-in adversary.
* **Replay confirmation throughput** -- confirmed strategies per second
  when replaying candidate sets against the live SUL, serial vs a
  thread-pooled executor, with the usual identity bar: pooling may only
  change wall-clock, never a verdict or a strategy byte.

Everything lands in the machine-readable ``bench_attack_search.json``
artifact CI uploads.  ``BENCH_ATTACK_SMALL=1`` shrinks the matrix (CI
smoke); ``BENCH_ATTACK_OUT`` overrides the artifact path.
"""

import json
import os
import time
from pathlib import Path

from conftest import report, run_once

from repro.attack.automata import resolve_attacker
from repro.attack.replay import VERDICT_CONFIRMED, replay_strategies
from repro.attack.search import synthesize_attack
from repro.framework import Prognosis
from repro.registry import attacks_for
from repro.spec import ExperimentSpec

SMALL = bool(os.environ.get("BENCH_ATTACK_SMALL"))
TARGETS = (
    ("tcp", "http2-buggy")
    if SMALL
    else ("tcp", "tcp-no-challenge-ack", "http2-buggy", "http3-buggy")
)
SYNTH_ROUNDS = 20 if SMALL else 100
REPLAY_ROUNDS = 5 if SMALL else 20
ARTIFACT_PATH = Path(
    os.environ.get("BENCH_ATTACK_OUT", "bench_attack_search.json")
)


def _merge_artifact(section: str, data: dict) -> None:
    """Merge one section into the artifact (tests run in any order)."""
    existing = (
        json.loads(ARTIFACT_PATH.read_text()) if ARTIFACT_PATH.exists() else {}
    )
    existing[section] = data
    existing["meta"] = {"small": SMALL, "targets": list(TARGETS)}
    ARTIFACT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True))


def _learn(target: str, **overrides):
    # name is pinned: pool SULs embed worker info in their name, which
    # would leak into model bytes and mask real (non-)identity.
    spec = ExperimentSpec(target=target, seed=7, name=target, **overrides)
    return Prognosis.from_spec(spec)


def test_synthesis_throughput(benchmark):
    """Strategies found and product states expanded per second, offline."""

    def run_all():
        out = {}
        for target in TARGETS:
            with _learn(target) as prognosis:
                model = prognosis.learn().model
            attackers = [resolve_attacker(n) for n in attacks_for(target)]
            start = time.perf_counter()
            strategies = 0
            expanded = 0
            for _ in range(SYNTH_ROUNDS):
                for attacker in attackers:
                    strategy = synthesize_attack(model, attacker)
                    if strategy is not None:
                        strategies += 1
                        expanded += strategy.states_expanded
            elapsed = time.perf_counter() - start
            out[target] = {
                "attackers": len(attackers),
                "strategies_found": strategies,
                "states_expanded": expanded,
                "strategies_per_s": round(strategies / elapsed, 1),
                "states_expanded_per_s": round(expanded / elapsed, 1),
            }
        return out

    out = run_once(benchmark, run_all)
    report(
        "A1 synthesis throughput",
        [
            (
                target,
                f"{row['attackers']} attackers",
                f"{row['strategies_per_s']}/s strategies, "
                f"{row['states_expanded_per_s']}/s product states",
            )
            for target, row in out.items()
        ],
    )
    _merge_artifact("synthesis", out)
    for target, row in out.items():
        assert row["strategies_found"] > 0, f"{target}: nothing synthesized"
        assert row["states_expanded_per_s"] > 0


def test_replay_confirmation_serial_vs_pooled(benchmark):
    """Confirmed replays per second, serial vs thread pool; identical bytes."""
    cells = (("serial", 1), ("thread", 4))

    def run_all():
        out = {}
        for target in TARGETS:
            with _learn(target) as prognosis:
                model = prognosis.learn().model
            pairs = []
            for name in attacks_for(target):
                attacker = resolve_attacker(name)
                strategy = synthesize_attack(model, attacker)
                if strategy is not None:
                    pairs.append((attacker, strategy))
            if not pairs:
                continue
            per_executor = {}
            for kind, workers in cells:
                with _learn(
                    target,
                    workers=workers,
                    executor={"kind": kind, "workers": workers},
                ) as prognosis:
                    prognosis.learn()
                    start = time.perf_counter()
                    for _ in range(REPLAY_ROUNDS):
                        results = replay_strategies(pairs, prognosis.oracle)
                    elapsed = time.perf_counter() - start
                confirmed = sum(
                    1 for r in results if r.verdict == VERDICT_CONFIRMED
                )
                per_executor[kind] = {
                    "confirmed": confirmed,
                    "confirmations_per_s": round(
                        REPLAY_ROUNDS * confirmed / elapsed, 1
                    ),
                    "verdicts": [r.verdict for r in results],
                    "strategy_json": json.dumps(
                        [r.strategy.to_dict() for r in results],
                        sort_keys=True,
                    ),
                }
            out[target] = per_executor
        return out

    out = run_once(benchmark, run_all)
    report(
        "A1 replay confirmation",
        [
            (
                target,
                f"{row['serial']['confirmations_per_s']}/s serial",
                f"{row['thread']['confirmations_per_s']}/s pooled",
            )
            for target, row in out.items()
        ],
    )
    _merge_artifact(
        "replay",
        {
            target: {
                kind: {
                    key: value
                    for key, value in cell.items()
                    if key != "strategy_json"
                }
                for kind, cell in row.items()
            }
            for target, row in out.items()
        },
    )
    for target, row in out.items():
        assert row["serial"]["confirmed"] > 0, f"{target}: nothing confirmed"
        # The identity bar: pooling never changes a verdict or a byte.
        assert row["serial"]["verdicts"] == row["thread"]["verdicts"]
        assert row["serial"]["strategy_json"] == row["thread"]["strategy_json"]

"""A2 -- Ablation: the query cache of section 3.2's optimizations."""

from conftest import report, run_once

from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.framework import Prognosis


def test_ablation_cache_on_off(benchmark):
    def run_both():
        cached = Prognosis(TCPAdapterSUL(seed=3), use_cache=True, name="cached")
        cached_report = cached.learn()
        uncached = Prognosis(TCPAdapterSUL(seed=3), use_cache=False, name="uncached")
        uncached_report = uncached.learn()
        return cached_report, uncached_report

    cached_report, uncached_report = run_once(benchmark, run_both)
    report(
        "A2 query cache",
        [
            ("SUL queries with cache", "-", cached_report.sul_queries),
            ("SUL queries without cache", "-", uncached_report.sul_queries),
            ("cache hit rate", "-", f"{cached_report.cache_hit_rate:.0%}"),
            (
                "query savings",
                "substantial",
                f"{uncached_report.sul_queries / cached_report.sul_queries:.2f}x",
            ),
        ],
    )
    assert cached_report.model.num_states == uncached_report.model.num_states
    assert cached_report.sul_queries < uncached_report.sul_queries
    assert cached_report.cache_hit_rate > 0.3

"""E8 -- Issue 3: the reference client's RETRY-from-wrong-port bug."""

from conftest import report, run_once

from repro.experiments import issue3_retry_port


def test_issue3_retry_port_bug(benchmark):
    result = run_once(benchmark, issue3_retry_port)
    report(
        "E8 Issue3 retry port bug",
        [
            ("buggy client can establish", "no", "yes" if result.buggy_establishes else "no"),
            ("fixed client can establish", "yes", "yes" if result.fixed_establishes else "no"),
            ("models equivalent", "no", "yes" if result.diff.equivalent else "no"),
            ("buggy model states", "(collapsed)", result.buggy.model.num_states),
            ("fixed model states", "(full)", result.fixed.model.num_states),
        ],
    )
    # With the bug, address validation fails and the model transitions to a
    # state where connection establishment is impossible.
    assert not result.buggy_establishes
    assert result.fixed_establishes
    assert not result.diff.equivalent
    assert result.buggy.model.num_states < result.fixed.model.num_states

"""E2 -- Figure 3(c) / Figure 4: synthesized register machines."""

from conftest import report, run_once

from repro.experiments import learn_tcp_handshake, synthesize_handshake_registers
from repro.synth.terms import PlusOne, InputTerm, RegisterTerm


def test_fig3c_handshake_registers(benchmark):
    experiment = learn_tcp_handshake()
    result = run_once(benchmark, synthesize_handshake_registers, experiment)
    assert result is not None

    # The SYN transition from the initial state must acknowledge sn + 1:
    # either directly (an = sn+1) or through a register holding sn + 1.
    syn_key = next(
        key
        for key in result.output_terms("an")
        if key[0] == result.machine.skeleton.initial_state
    )
    term = result.output_terms("an")[syn_key]
    direct = term == PlusOne(InputTerm("sn"))
    via_register = isinstance(term, (RegisterTerm, PlusOne))
    report(
        "E2 Fig3c register synthesis",
        [
            ("an term on SYN", "sn+1 (or register)", str(term)),
            ("solver branches", "(Z3 in paper)", result.stats.branches),
            ("search space", "8^11 in paper", result.problem.search_space()),
        ],
    )
    assert direct or via_register
    # Semantics: prediction for a fresh handshake must be ISS+1 (rebased: 1).
    entry_traces = result.training_traces
    assert any(result.machine.consistent_with(t) for t in entry_traces)


def test_fig4_worked_example(benchmark):
    """The paper's section 4.3 toy traces synthesize consistently."""
    from repro.core.alphabet import Alphabet, parse_tcp_symbol
    from repro.core.extended import ConcreteStep
    from repro.core.mealy import mealy_from_table
    from repro.synth import synthesize

    SYN = parse_tcp_symbol("SYN(?,?,0)")
    ACK = parse_tcp_symbol("ACK(?,?,0)")
    SYNACK = parse_tcp_symbol("ACK+SYN(?,?,0)")
    NIL = parse_tcp_symbol("NIL")
    alphabet = Alphabet.of([SYN, ACK])
    skeleton = mealy_from_table(
        "s0",
        alphabet,
        [
            ("s0", ACK, NIL, "s0"),
            ("s0", SYN, SYNACK, "s1"),
            ("s1", SYN, NIL, "s1"),
            ("s1", ACK, NIL, "s1"),
        ],
        "fig4",
    )

    def step(symbol, out, sn, an, **outputs):
        return ConcreteStep(symbol, out, {"sn": sn, "an": an}, outputs)

    t1 = [step(ACK, NIL, 0, 3), step(SYN, SYNACK, 2, 5, o1=4, o2=5)]
    t2 = [step(SYN, SYNACK, 1, 3, o1=3, o2=4)]

    result = run_once(
        benchmark,
        synthesize,
        skeleton,
        [t1, t2],
        register_names=("r", "pr"),
    )
    assert result is not None
    assert result.machine.consistent_with(t1)
    assert result.machine.consistent_with(t2)
    report(
        "E2 Fig4 worked example",
        [
            ("consistent machine found", True, True),
            ("solver branches", "(Z3 in paper)", result.stats.branches),
        ],
    )

"""E9 -- Issue 4 / Appendix B.1: the constant-zero STREAM_DATA_BLOCKED."""

from conftest import report, run_once

from repro.experiments import issue4_stream_data_blocked


def test_issue4_constant_zero_field(benchmark):
    result = run_once(benchmark, issue4_stream_data_blocked)
    report(
        "E9 Issue4 STREAM_DATA_BLOCKED",
        [
            ("buggy max_stream_data", "constant 0", f"constant {result.buggy_constant}"),
            (
                "fixed max_stream_data",
                "state-dependent",
                "state-dependent"
                if result.fixed_constant is None
                else f"constant {result.fixed_constant}",
            ),
        ],
    )
    assert result.buggy_constant == 0
    assert result.fixed_constant is None
    # The synthesized buggy machine reproduces its training traces.
    traces = result.buggy_synthesis.training_traces
    assert any(result.buggy_synthesis.machine.consistent_with(t) for t in traces)

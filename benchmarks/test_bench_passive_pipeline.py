"""P1 -- Bulk-trace passive pipeline: recovery rate, coverage, identity.

The bulk passive->active pipeline's paper-level claims, measured:

* **Recovery rate** -- how many states RPNI recovers per logged input
  symbol ("trace token") as netsim session corpora grow, against the
  pure-active baseline's query bill for the same targets.
* **Full-corpus warm path** -- a covering corpus (one active run's
  observation set) must carry refinement to completion with **zero** SUL
  resets, mirroring ``repro ci``'s warm store path.
* **Identity** -- the refined model must be byte-identical to the
  pure-active model on every target and every executor backend
  (serial == thread == process): corpus seeding and scheduling change
  where answers come from, never what is learned.

Everything lands in the machine-readable ``bench_passive_pipeline.json``
artifact CI uploads.  ``BENCH_PASSIVE_SMALL=1`` shrinks the matrix (CI
smoke); ``BENCH_PASSIVE_OUT`` overrides the artifact path.
"""

import json
import os
from pathlib import Path

from conftest import report, run_once

from repro.framework import Prognosis
from repro.learn.bulk import (
    bulk_passive_learn,
    generate_corpus,
    record_full_corpus,
)
from repro.spec import ExperimentSpec

SMALL = bool(os.environ.get("BENCH_PASSIVE_SMALL"))
TARGETS = ("tcp", "http2") if SMALL else ("tcp", "http2", "http3")
CORPUS_SESSIONS = (50, 200) if SMALL else (50, 200, 800)
EXECUTOR_CELLS = (("serial", 1), ("thread", 2), ("process", 2))
ARTIFACT_PATH = Path(
    os.environ.get("BENCH_PASSIVE_OUT", "bench_passive_pipeline.json")
)


def _merge_artifact(section: str, data: dict) -> None:
    """Merge one section into the artifact (tests run in any order)."""
    existing = (
        json.loads(ARTIFACT_PATH.read_text()) if ARTIFACT_PATH.exists() else {}
    )
    existing[section] = data
    existing["meta"] = {"small": SMALL, "targets": list(TARGETS)}
    ARTIFACT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True))


def _active_baseline(target: str):
    # name is pinned everywhere: pool SULs embed worker info in their name,
    # which would leak into model bytes and mask real (non-)identity.
    with Prognosis.from_spec(
        ExperimentSpec(target=target, seed=7, name=target)
    ) as prognosis:
        return prognosis.learn()


def test_states_recovered_per_trace_token(benchmark, tmp_path_factory):
    """RPNI recovery rate on growing netsim corpora vs the active bill."""
    tmp = tmp_path_factory.mktemp("passive-recovery")

    def run_all():
        out = {}
        for target in TARGETS:
            active = _active_baseline(target)
            curve = []
            for sessions in CORPUS_SESSIONS:
                corpus = tmp / f"{target}-{sessions}.jsonl"
                spec = ExperimentSpec(
                    target=target,
                    seed=7,
                    name=target,
                    middleware=["cache"],
                    corpus=str(corpus),
                )
                generate_corpus(spec, corpus, num_sessions=sessions)
                result = bulk_passive_learn(spec, refine=False)
                stats = result.corpus_stats
                curve.append(
                    {
                        "sessions": sessions,
                        "tokens": stats.tokens,
                        "passive_states": result.passive_model.num_states,
                        "completeness": round(result.passive_model.completeness, 3),
                        "states_per_kilo_token": round(
                            1000 * result.passive_model.num_states / stats.tokens, 3
                        ),
                    }
                )
            out[target] = {
                "active_states": active.num_states,
                "active_sul_queries": active.sul_queries,
                "curve": curve,
            }
        return out

    out = run_once(benchmark, run_all)
    report(
        "P1 passive recovery rate",
        [
            (
                f"{target} ({row['curve'][-1]['tokens']} tokens)",
                f"{row['active_states']} states",
                f"{row['curve'][-1]['passive_states']} states "
                f"({row['curve'][-1]['states_per_kilo_token']}/ktoken)",
            )
            for target, row in out.items()
        ],
    )
    _merge_artifact("recovery", out)
    for target, row in out.items():
        curve = row["curve"]
        # More sessions never lose states, and the largest corpus should
        # recover most of the true machine.
        states = [point["passive_states"] for point in curve]
        assert states == sorted(states), f"{target}: recovery regressed {states}"
        assert states[-1] >= row["active_states"] - 1


def test_full_corpus_needs_zero_resets(benchmark, tmp_path_factory):
    """A covering corpus pre-answers everything: 0 SUL resets, same model."""
    tmp = tmp_path_factory.mktemp("passive-full")

    def run_all():
        out = {}
        for target in TARGETS:
            corpus = tmp / f"{target}-full.jsonl"
            spec = ExperimentSpec(
                target=target,
                seed=7,
                name=target,
                middleware=["cache"],
                corpus=str(corpus),
            )
            traces = record_full_corpus(spec, corpus)
            result = bulk_passive_learn(spec)
            active = _active_baseline(target)
            out[target] = {
                "corpus_traces": traces,
                "sul_resets": result.refined.sul_resets,
                "sul_queries": result.refined.sul_queries,
                "corpus_hit_rate": round(result.refined.corpus_hit_rate, 4),
                "identical": json.dumps(result.model.to_dict(), sort_keys=True)
                == json.dumps(active.model.to_dict(), sort_keys=True),
                "states": result.model.num_states,
            }
        return out

    out = run_once(benchmark, run_all)
    report(
        "P1 full-corpus warm path",
        [
            (
                target,
                "0 resets, identical",
                f"{row['sul_resets']} resets, "
                f"{'identical' if row['identical'] else 'DIVERGED'} "
                f"({row['states']} states)",
            )
            for target, row in out.items()
        ],
    )
    _merge_artifact("full_corpus", out)
    for target, row in out.items():
        assert row["sul_resets"] == 0, f"{target}: warm path touched the SUL"
        assert row["sul_queries"] == 0
        assert row["identical"], f"{target}: refined model diverged from active"
        assert row["corpus_hit_rate"] > 0.99


def test_refined_identity_across_executors(benchmark, tmp_path_factory):
    """serial == thread == process == pure-active refined model bytes."""
    tmp = tmp_path_factory.mktemp("passive-executors")
    targets = ("http2",) if SMALL else TARGETS

    def run_all():
        out = {}
        for target in targets:
            corpus = tmp / f"{target}.jsonl"
            base = ExperimentSpec(
                target=target,
                seed=7,
                name=target,
                middleware=["cache"],
                corpus=str(corpus),
            )
            generate_corpus(base, corpus, num_sessions=120)
            active = json.dumps(
                _active_baseline(target).model.to_dict(), sort_keys=True
            )
            models = {}
            for kind, workers in EXECUTOR_CELLS:
                spec = base.clone(
                    workers=workers, executor={"kind": kind, "workers": workers}
                )
                result = bulk_passive_learn(spec)
                models[kind] = json.dumps(
                    result.model.to_dict(), sort_keys=True
                )
            out[target] = {
                "identical_across_executors": len(set(models.values())) == 1,
                "matches_active": all(m == active for m in models.values()),
            }
        return out

    out = run_once(benchmark, run_all)
    report(
        "P1 refined-model identity",
        [
            (
                target,
                "identical",
                "identical"
                if row["identical_across_executors"] and row["matches_active"]
                else "DIVERGED",
            )
            for target, row in out.items()
        ],
    )
    _merge_artifact("executor_identity", out)
    for target, row in out.items():
        assert row["identical_across_executors"], f"{target}: executors diverged"
        assert row["matches_active"], f"{target}: refined != active"

"""A1 -- Ablation: TTT vs L* query cost (the design choice of section 4.2)."""

from conftest import report, run_once

from repro.experiments import learn_tcp_full


def test_ablation_ttt_vs_lstar(benchmark):
    def run_both():
        ttt = learn_tcp_full(learner="ttt")
        lstar = learn_tcp_full(learner="lstar")
        return ttt, lstar

    ttt, lstar = run_once(benchmark, run_both)
    report(
        "A1 TTT vs L*",
        [
            ("TTT SUL queries", "-", ttt.report.sul_queries),
            ("L* SUL queries", "-", lstar.report.sul_queries),
            (
                "TTT advantage",
                ">= 1x",
                f"{lstar.report.sul_queries / ttt.report.sul_queries:.2f}x",
            ),
        ],
    )
    # Both learn the same 6-state machine...
    assert ttt.model.num_states == lstar.model.num_states == 6
    # ...but TTT needs no more queries than L* (usually far fewer).
    assert ttt.report.sul_queries <= lstar.report.sul_queries

"""E3 -- Section 6.1: the full TCP model (6 states, 42 transitions)."""

from conftest import report, run_once

from repro.experiments import (
    PAPER_TCP_QUERIES,
    PAPER_TCP_STATES,
    PAPER_TCP_TRANSITIONS,
    learn_tcp_full,
)


def test_sec61_tcp_model(benchmark):
    experiment = run_once(benchmark, learn_tcp_full)
    model = experiment.model
    rep = experiment.report
    report(
        "E3 Sec6.1 TCP",
        [
            ("states", PAPER_TCP_STATES, model.num_states),
            ("transitions", PAPER_TCP_TRANSITIONS, model.num_transitions),
            ("membership queries (SUL)", PAPER_TCP_QUERIES, rep.sul_queries),
            ("learner queries (incl. cached)", "-", rep.oracle_queries),
            ("cache hit rate", "-", f"{rep.cache_hit_rate:.0%}"),
        ],
    )
    assert model.num_states == PAPER_TCP_STATES
    assert model.num_transitions == PAPER_TCP_TRANSITIONS
    assert model.minimize().num_states == model.num_states
    # Same order of magnitude as the paper's query count.
    assert 100 <= rep.sul_queries <= 50_000

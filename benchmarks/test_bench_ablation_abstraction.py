"""A4 -- Ablation: abstraction granularity (section 5, reason 1).

An abstract symbol that under-specifies its concrete packet lets the
adapter concretize arbitrarily; if the implementation reacts differently
to the variants, the same abstract query returns different answers and
learning must abort.  Refining the abstraction restores determinism --
the user-facing workflow the paper describes for nondeterminism reason (1).
"""

from conftest import report, run_once

from repro.experiments import learn_quic
from repro.learn.nondeterminism import NondeterminismError, NondeterminismPolicy
from repro.quic.impls.tracker import TrackerConfig


def test_ablation_abstraction_granularity(benchmark):
    def run_both():
        policy = NondeterminismPolicy(min_repeats=3, max_repeats=8, certainty=0.95)
        try:
            learn_quic(
                "quiche",
                tracker_config=TrackerConfig(ambiguous_stream_abstraction=True),
                nondeterminism_policy=policy,
            )
            coarse_failed = False
        except NondeterminismError:
            coarse_failed = True
        refined = learn_quic(
            "quiche",
            tracker_config=TrackerConfig(ambiguous_stream_abstraction=False),
            nondeterminism_policy=policy,
        )
        return coarse_failed, refined

    coarse_failed, refined = run_once(benchmark, run_both)
    report(
        "A4 abstraction granularity",
        [
            ("coarse abstraction learnable", "no", "no" if coarse_failed else "yes"),
            ("refined abstraction learnable", "yes", "yes"),
            ("refined model states", 8, refined.model.num_states),
        ],
    )
    assert coarse_failed
    assert refined.model.num_states == 8

"""E11 -- Section 3.2: instrumentation cost in lines of code."""

from conftest import report, run_once

from repro.experiments import loc_report
from repro.experiments.loc_report import (
    PAPER_QUIC_INSTRUMENTATION_LOC,
    PAPER_QUIC_REFERENCE_LOC,
    PAPER_TCP_INSTRUMENTATION_LOC,
    PAPER_TCP_MAPPER_LOC,
)


def test_instrumentation_loc(benchmark):
    measured = run_once(benchmark, loc_report)
    report(
        "E11 instrumentation LoC",
        [
            ("TCP instrumentation", PAPER_TCP_INSTRUMENTATION_LOC, measured.tcp_instrumentation),
            ("prior-work TCP mapper", PAPER_TCP_MAPPER_LOC, "(not needed)"),
            ("QUIC instrumentation", PAPER_QUIC_INSTRUMENTATION_LOC, measured.quic_instrumentation),
            ("QUIC reference impl", PAPER_QUIC_REFERENCE_LOC, measured.quic_reference),
        ],
    )
    # The shape claim: instrumentation is a small fraction of the reference
    # implementation, and far below the prior-work mapper.
    assert measured.tcp_instrumentation < PAPER_TCP_MAPPER_LOC / 2
    assert measured.quic_instrumentation < measured.quic_reference
    assert measured.tcp_instrumentation < measured.quic_instrumentation

"""E4 -- Section 6.2.2: learned QUIC models and the mvfst failure."""

import pytest
from conftest import report, run_once

from repro.experiments import (
    PAPER_GOOGLE_QUERIES,
    PAPER_GOOGLE_STATES,
    PAPER_GOOGLE_TRANSITIONS,
    PAPER_QUICHE_QUERIES,
    PAPER_QUICHE_STATES,
    PAPER_QUICHE_TRANSITIONS,
    learn_quic,
)
from repro.learn.nondeterminism import NondeterminismError


def test_sec622_google_model(benchmark, quic_google):
    model = quic_google.model
    rep = quic_google.report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report(
        "E4 Sec6.2.2 Google QUIC",
        [
            ("states", PAPER_GOOGLE_STATES, model.num_states),
            ("transitions", PAPER_GOOGLE_TRANSITIONS, model.num_transitions),
            ("queries (SUL)", PAPER_GOOGLE_QUERIES, rep.sul_queries),
            ("cache hit rate", "-", f"{rep.cache_hit_rate:.0%}"),
        ],
    )
    assert model.num_states == PAPER_GOOGLE_STATES
    assert model.num_transitions == PAPER_GOOGLE_TRANSITIONS


def test_sec622_quiche_model(benchmark, quic_quiche):
    model = quic_quiche.model
    rep = quic_quiche.report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report(
        "E4 Sec6.2.2 Quiche QUIC",
        [
            ("states", PAPER_QUICHE_STATES, model.num_states),
            ("transitions", PAPER_QUICHE_TRANSITIONS, model.num_transitions),
            ("queries (SUL)", PAPER_QUICHE_QUERIES, rep.sul_queries),
            ("cache hit rate", "-", f"{rep.cache_hit_rate:.0%}"),
        ],
    )
    assert model.num_states == PAPER_QUICHE_STATES
    assert model.num_transitions == PAPER_QUICHE_TRANSITIONS


def test_sec622_ranking_holds(benchmark, quic_google, quic_quiche):
    """Google's model is bigger and costs more queries, as in the paper."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert quic_google.model.num_states > quic_quiche.model.num_states
    assert quic_google.report.sul_queries > quic_quiche.report.sul_queries


def test_sec622_mvfst_fails_deterministic_learning(benchmark):
    def attempt():
        with pytest.raises(NondeterminismError) as excinfo:
            learn_quic("mvfst")
        return excinfo.value

    error = run_once(benchmark, attempt)
    report(
        "E4 Sec6.2.2 mvfst",
        [
            ("learnable deterministically", "no", "no"),
            (
                "most-common response share",
                "~0.82",
                f"{error.frequency_of_most_common():.2f}",
            ),
        ],
    )
    assert "STATELESS_RESET" in str(error) or "{}" in str(error)

"""Extension bench -- passive + active learning (paper section 8).

The paper's future-work suggestion: when logs are available, seed the
active learner with them.  We log random sessions against the TCP SUL,
seed the query cache, and measure the saved SUL queries; we also measure
what RPNI alone recovers from the same logs.
"""

import random

from conftest import report, run_once

from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.core.trace import IOTrace
from repro.framework import Prognosis
from repro.learn.passive import rpni_mealy, seed_cache_from_traces


def _log_sessions(model_sul, num=400, max_len=10, seed=11):
    rng = random.Random(seed)
    symbols = list(model_sul.input_alphabet)
    traces = []
    for _ in range(num):
        word = tuple(rng.choice(symbols) for _ in range(rng.randint(1, max_len)))
        traces.append(IOTrace(word, model_sul.query(word)))
    return traces


def test_passive_bootstrap(benchmark):
    def run_all():
        # Logs come from an independent SUL instance ("production logs").
        log_source = TCPAdapterSUL(seed=55)
        logs = _log_sessions(log_source)

        plain = Prognosis(TCPAdapterSUL(seed=3), name="active-only")
        plain_report = plain.learn()

        boosted = Prognosis(TCPAdapterSUL(seed=3), name="log-boosted")
        seed_cache_from_traces(boosted.cache_oracle.cache, logs)
        boosted_report = boosted.learn()

        passive_only = rpni_mealy(logs, log_source.input_alphabet)
        test_words = [t.inputs for t in _log_sessions(log_source, num=100, seed=77)]
        accuracy = passive_only.accuracy(plain_report.model, test_words)
        return plain_report, boosted_report, passive_only, accuracy

    plain_report, boosted_report, passive_only, accuracy = run_once(
        benchmark, run_all
    )
    saved = plain_report.sul_queries - boosted_report.sul_queries
    report(
        "EXT passive+active learning",
        [
            ("active-only SUL queries", "-", plain_report.sul_queries),
            ("log-boosted SUL queries", "fewer", boosted_report.sul_queries),
            ("queries saved by logs", "> 0", saved),
            ("passive-only model states", "~6", passive_only.num_states),
            ("passive-only accuracy", "high", f"{accuracy:.0%}"),
        ],
    )
    assert boosted_report.model.num_states == plain_report.model.num_states == 6
    assert saved > 0
    assert accuracy > 0.8

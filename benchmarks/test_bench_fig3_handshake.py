"""E1 -- Figure 3(b): the learned TCP 3-way-handshake model."""

from conftest import report, run_once

from repro.experiments import learn_tcp_handshake, run_handshake


def test_fig3b_handshake_model(benchmark):
    experiment = run_once(benchmark, learn_tcp_handshake)
    model = experiment.model
    exchange = run_handshake(model)
    report(
        "E1 Fig3b TCP handshake",
        [
            ("SYN response", "ACK+SYN(?,?,0)", exchange[0][1]),
            ("ACK response", "NIL", exchange[1][1]),
            ("model is minimal", True, model.minimize().num_states == model.num_states),
            ("membership queries", "(small)", experiment.report.sul_queries),
        ],
    )
    assert exchange[0] == ("SYN(?,?,0)", "ACK+SYN(?,?,0)")
    assert exchange[1] == ("ACK(?,?,0)", "NIL")

"""S3 -- Property-suite fan-out: pooled vs serial evaluation wall-clock.

Property evaluation over a campaign's models is the analysis-side
counterpart of the learning fan-out: every (model, suite) pair is an
independent job, so :func:`~repro.analysis.property_api
.check_properties_batch` maps them over the shared
:class:`~repro.adapter.pool.BatchExecutor`.  This benchmark evaluates
the toy suite plus ad-hoc LTLf formulas at depth 9 (2^10-trace
exhaustive exploration per property) across a fleet of toy-variant
models, serially and at ``workers=4``.  Verdicts must be identical;
wall-clock is reported (pure-Python model exploration shares the GIL,
so -- unlike SUL-bound fan-out -- the pooled win here is bounded, which
is exactly what the row documents).
"""

import time

from conftest import report, run_once

from repro.adapter.mealy_sul import toy_machine
from repro.analysis.property_api import check_properties_batch, resolve_properties
from repro.core.mealy import MealyMachine

FLEET_SIZE = 8
DEPTH = 9
POOL_WORKERS = 4


def _variant(index: int) -> MealyMachine:
    """The toy machine, with every even variant's established state
    answering a SYN with NIL instead of RST (so half the fleet violates
    the ad-hoc formula and pays the witness-minimization path too)."""
    base = toy_machine()
    table = {
        (t.source, t.input): (t.target, t.output) for t in base.transitions()
    }
    if index % 2 == 0:
        syn, _ = base.input_alphabet.symbols
        nil = base.step("s2", syn)[1]
        table[("s1", syn)] = (table[("s1", syn)][0], nil)
    return MealyMachine(
        "s0", base.input_alphabet, table, f"bench-prop-variant-{index}"
    )


def _jobs():
    suite = resolve_properties(
        "toy",
        formulas=[
            # Violated by every unmutated variant (their lock RSTs).
            "G (out != RST(?,?,0))",
            # Holds everywhere: the closed output vocabulary.
            "G (out == NIL || out == RST(?,?,0) || out == ACK+SYN(?,?,0))",
        ],
        include_probes=True,
    )
    return [(_variant(index), suite) for index in range(FLEET_SIZE)]


def _evaluate(workers: int):
    jobs = _jobs()
    start = time.perf_counter()
    reports = check_properties_batch(jobs, workers=workers, depth=DEPTH)
    elapsed = time.perf_counter() - start
    return reports, elapsed


def test_bench_property_fanout(benchmark):
    serial_reports, serial_time = _evaluate(workers=1)
    pooled_reports, pooled_time = run_once(benchmark, _evaluate, POOL_WORKERS)

    # Fan-out must never change a verdict.
    assert [r.to_dict() for r in serial_reports] == [
        r.to_dict() for r in pooled_reports
    ]
    violated = sum(1 for r in pooled_reports if not r.ok)
    assert violated == FLEET_SIZE // 2  # the seeded violating variants

    speedup = serial_time / pooled_time if pooled_time else float("inf")
    report(
        "S3-property-fanout",
        [
            ("models x properties", "-", f"{FLEET_SIZE} x {len(_jobs()[0][1])}"),
            ("serial wall-clock (s)", "-", f"{serial_time:.2f}"),
            (f"pooled wall-clock (s, w={POOL_WORKERS})", "-", f"{pooled_time:.2f}"),
            ("speedup", "-", f"{speedup:.2f}x"),
        ],
    )

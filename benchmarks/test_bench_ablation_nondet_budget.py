"""A3 -- Ablation: nondeterminism-check repeat budget vs detection.

The check re-executes queries a minimum number of times (section 5).  With
one repeat the mvfst bug can slip through a single query; with three or
more the flaky closed state is caught almost surely.
"""

from conftest import report, run_once

from repro.core.alphabet import parse_quic_symbol
from repro.experiments import make_quic_sul
from repro.learn.nondeterminism import (
    MajorityVoteOracle,
    NondeterminismError,
    NondeterminismPolicy,
)
from repro.learn.teacher import SULMembershipOracle

TRIGGER = (
    parse_quic_symbol("INITIAL(?,?)[CRYPTO]"),
    parse_quic_symbol("HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]"),
    parse_quic_symbol("SHORT(?,?)[ACK,HANDSHAKE_DONE]"),
)


def detection_rate(min_repeats: int, trials: int = 30) -> float:
    detected = 0
    for trial in range(trials):
        sul = make_quic_sul("mvfst", seed=1000 + trial)
        oracle = MajorityVoteOracle(
            SULMembershipOracle(sul),
            NondeterminismPolicy(
                min_repeats=min_repeats,
                max_repeats=max(min_repeats, 6),
                certainty=0.99,
            ),
        )
        try:
            oracle.query(TRIGGER)
        except NondeterminismError:
            detected += 1
    return detected / trials


def test_ablation_nondet_budget(benchmark):
    """Per-query detection follows 1 - (p^k + (1-p)^k) for k repeats.

    With p = 0.82 that is 0 / ~0.30 / ~0.44 for k = 1 / 2 / 3.  A learning
    run issues thousands of queries through the flaky state, so overall
    detection is ~certain for any k >= 2 (bench E4 demonstrates the abort).
    """
    rates = run_once(
        benchmark,
        lambda: {repeats: detection_rate(repeats) for repeats in (1, 2, 3)},
    )
    theory = {
        k: 1 - (0.82**k + 0.18**k) for k in (1, 2, 3)
    }
    report(
        "A3 nondeterminism budget",
        [
            ("detection @1 repeat", f"{theory[1]:.2f}", f"{rates[1]:.2f}"),
            ("detection @2 repeats", f"~{theory[2]:.2f}", f"{rates[2]:.2f}"),
            ("detection @3 repeats", f"~{theory[3]:.2f}", f"{rates[3]:.2f}"),
        ],
    )
    assert rates[1] == 0.0  # a single execution cannot expose nondeterminism
    assert rates[2] > 0.05
    assert rates[3] >= 0.2
    assert rates[3] >= rates[1]
    assert abs(rates[3] - theory[3]) < 0.3  # sampling noise bound

"""HTTP/2 workload: the learned connection-handshake + request model.

The third closed-box target.  The conformant in-process server learns as
a minimal 5-state machine over the 7-symbol frame alphabet; the
benchmark drives the learned model through the SETTINGS handshake and a
complete request, the exchange every HTTP/2 connection starts with.
"""

from conftest import report, run_once

from repro.experiments import (
    EXPECTED_HTTP2_STATES,
    EXPECTED_HTTP2_TRANSITIONS,
    learn_http2,
    run_http2_handshake,
)


def test_http2_handshake_model(benchmark):
    experiment = run_once(benchmark, learn_http2)
    model = experiment.model
    exchange = run_http2_handshake(model)
    report(
        "HTTP/2 handshake + request",
        [
            ("states", EXPECTED_HTTP2_STATES, model.num_states),
            ("transitions", EXPECTED_HTTP2_TRANSITIONS, model.num_transitions),
            ("SETTINGS response", "SETTINGS[]+SETTINGS[ACK]", exchange[0][1]),
            (
                "request response",
                "HEADERS[END_HEADERS]+DATA[END_STREAM]",
                exchange[1][1],
            ),
            ("model is minimal", True, model.minimize().num_states == model.num_states),
            ("membership queries", "(small)", experiment.report.sul_queries),
        ],
    )
    experiment.close()
    assert model.num_states == EXPECTED_HTTP2_STATES
    assert model.num_transitions == EXPECTED_HTTP2_TRANSITIONS
    assert exchange[0] == ("SETTINGS[]", "SETTINGS[]+SETTINGS[ACK]")
    assert exchange[1] == (
        "HEADERS[END_HEADERS,END_STREAM]",
        "HEADERS[END_HEADERS]+DATA[END_STREAM]",
    )

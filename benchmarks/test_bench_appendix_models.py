"""E10 -- Appendix A: full learned machines (structure + DOT export)."""

from conftest import report, run_once

from repro.analysis.diff import behavioural_summary
from repro.analysis.visualize import to_dot
from repro.core.alphabet import parse_quic_symbol


def test_appendix_a1_tcp_structure(benchmark, tcp_full):
    model = tcp_full.model
    dot = run_once(benchmark, to_dot, model)
    report(
        "E10 Appendix A.1 TCP",
        [
            ("states", 6, model.num_states),
            ("DOT edges", 42, dot.count("->") - 1),  # minus the start edge
        ],
    )
    assert dot.count("->") - 1 == model.num_transitions


def test_appendix_a2_google_structure(benchmark, quic_google):
    model = quic_google.model
    dot = run_once(benchmark, to_dot, model)
    assert model.num_states == 12
    assert "digraph" in dot
    # Key appendix behaviours: HANDSHAKE_DONE from the client draws a close.
    hhd = parse_quic_symbol("HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]")
    summary = behavioural_summary(model)
    assert any("CONNECTION_CLOSE" in str(o) for o in summary[hhd])
    report(
        "E10 Appendix A.2 Google",
        [
            ("states", 12, model.num_states),
            ("close on client HANDSHAKE_DONE", "yes", "yes"),
        ],
    )


def test_appendix_a3_quiche_structure(benchmark, quic_quiche):
    model = quic_quiche.model
    dot = run_once(benchmark, to_dot, model)
    assert model.num_states == 8
    assert "digraph" in dot
    # Quiche closes with a single handshake-space packet during handshake.
    ch = parse_quic_symbol("INITIAL(?,?)[CRYPTO]")
    hhd = parse_quic_symbol("HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]")
    outputs = model.run((ch, hhd))
    assert str(outputs[1]) == "{HANDSHAKE(?,?)[CONNECTION_CLOSE]}"
    report(
        "E10 Appendix A.3 Quiche",
        [
            ("states", 8, model.num_states),
            ("close output", "{HANDSHAKE[CONNECTION_CLOSE]}", str(outputs[1])),
        ],
    )

"""E5 -- Section 6.2.2: trace-space reduction statistics."""

from conftest import report, run_once

from repro.core.trace import count_words
from repro.experiments import (
    PAPER_GOOGLE_MODEL_TRACES,
    PAPER_QUICHE_MODEL_TRACES,
    PAPER_TOTAL_TRACES,
    quic_trace_reduction,
)


def test_raw_trace_count_is_exact(benchmark):
    total = run_once(benchmark, count_words, 7, 10)
    report(
        "E5 raw trace count",
        [("traces of length <=10 (7 symbols)", PAPER_TOTAL_TRACES, total)],
    )
    assert total == PAPER_TOTAL_TRACES


def test_model_trace_reduction_google(benchmark, quic_google):
    reduction = run_once(benchmark, quic_trace_reduction, quic_google)
    report(
        "E5 Google reduction",
        [
            ("total traces", PAPER_TOTAL_TRACES, reduction.total_traces),
            ("model traces", PAPER_GOOGLE_MODEL_TRACES, reduction.model_traces),
            ("reduction factor", "~272,000x", f"{reduction.reduction_factor:,.0f}x"),
        ],
    )
    assert reduction.total_traces == PAPER_TOTAL_TRACES
    # Same order of magnitude as the paper's 1,210.
    assert 100 <= reduction.model_traces <= 12_100


def test_model_trace_reduction_quiche(benchmark, quic_quiche):
    reduction = run_once(benchmark, quic_trace_reduction, quic_quiche)
    report(
        "E5 Quiche reduction",
        [
            ("model traces", PAPER_QUICHE_MODEL_TRACES, reduction.model_traces),
            ("reduction factor", "~461,000x", f"{reduction.reduction_factor:,.0f}x"),
        ],
    )
    assert 70 <= reduction.model_traces <= 7_150


def test_reduction_ranking(benchmark, quic_google, quic_quiche):
    """The bigger model needs more traces, exactly like 1210 vs 715."""
    google = run_once(benchmark, quic_trace_reduction, quic_google)
    quiche = quic_trace_reduction(quic_quiche)
    assert google.model_traces > quiche.model_traces

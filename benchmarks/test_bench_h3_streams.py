"""HTTP/3 workload: the composed QUIC-stream stack and its scenarios.

The fourth closed-box target, and the first declared through the
layered-adapter API (`compose(QuicStreamTransport, build_h3_app)`).
Beyond the learned-model shape, this benchmark measures what only the
QUIC substrate can do -- no head-of-line blocking across request
streams under deterministic loss (contrasted against HTTP/2 over the
reliable pipe), connection-ID routed migration, and 0-RTT resumption --
and writes the machine-readable ``bench_h3_streams.json`` artifact CI
uploads.  ``BENCH_H3_OUT`` overrides the artifact path.
"""

import json
import os
from pathlib import Path

from conftest import report, run_once

from repro.experiments import (
    EXPECTED_H3_BUGGY_STATES,
    EXPECTED_H3_STATES,
    EXPECTED_H3_TRANSITIONS,
    hol_blocking_probe,
    learn_http3,
    migration_probe,
    resumption_probe,
    run_http3_request,
)

ARTIFACT_PATH = Path(os.environ.get("BENCH_H3_OUT", "bench_h3_streams.json"))


def _merge_artifact(section: str, data: dict) -> None:
    """Merge one section into the artifact (tests run in any order)."""
    existing = (
        json.loads(ARTIFACT_PATH.read_text()) if ARTIFACT_PATH.exists() else {}
    )
    existing[section] = data
    ARTIFACT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True))


def test_http3_learned_models(benchmark):
    def learn_both():
        return learn_http3(), learn_http3(goaway_teardown_bug=True)

    conformant, buggy = run_once(benchmark, learn_both)
    exchange = run_http3_request(conformant.model)
    report(
        "HTTP/3 learned models",
        [
            ("states", EXPECTED_H3_STATES, conformant.model.num_states),
            (
                "transitions",
                EXPECTED_H3_TRANSITIONS,
                conformant.model.num_transitions,
            ),
            ("buggy states", EXPECTED_H3_BUGGY_STATES, buggy.model.num_states),
            ("SETTINGS response", "{SETTINGS}", exchange[0][1]),
            ("request response", "{HEADERS+DATA[FIN]}", exchange[1][1]),
            (
                "model is minimal",
                True,
                conformant.model.minimize().num_states
                == conformant.model.num_states,
            ),
            ("membership queries", "(small)", conformant.report.sul_queries),
        ],
    )
    _merge_artifact(
        "models",
        {
            "states": conformant.model.num_states,
            "transitions": conformant.model.num_transitions,
            "buggy_states": buggy.model.num_states,
            "sul_queries": conformant.report.sul_queries,
            "buggy_sul_queries": buggy.report.sul_queries,
        },
    )
    conformant.close()
    buggy.close()
    assert conformant.model.num_states == EXPECTED_H3_STATES
    assert conformant.model.num_transitions == EXPECTED_H3_TRANSITIONS
    assert buggy.model.num_states == EXPECTED_H3_BUGGY_STATES
    assert exchange[0] == ("SETTINGS", "{SETTINGS}")
    assert exchange[1] == ("HEADERS[FIN]", "{HEADERS+DATA[FIN]}")


def test_h3_stream_scenarios(benchmark):
    """The QUIC-substrate scenarios: HOL blocking, migration, 0-RTT."""

    def run_probes():
        return hol_blocking_probe(), migration_probe(), resumption_probe()

    hol, migration, resumption = run_once(benchmark, run_probes)
    report(
        "HTTP/3 stream scenarios",
        [
            ("h3 answered under loss", 1, hol["h3_first_exchange_answered"]),
            ("h2 answered under loss", 0, hol["h2_first_exchange_answered"]),
            ("h3 after recovery", 2, hol["h3_after_recovery_answered"]),
            ("h2 after recovery", 2, hol["h2_after_recovery_answered"]),
            (
                "answered after migration",
                True,
                migration["answered_after_migration"],
            ),
            ("handshakes across migration", 1, migration["handshake_rounds"]),
            (
                "connection rounds (full vs 0-RTT)",
                "3 vs 2",
                f"{resumption['first_connection_rounds']} vs "
                f"{resumption['second_connection_rounds']}",
            ),
        ],
    )
    _merge_artifact(
        "scenarios",
        {"hol_blocking": hol, "migration": migration, "resumption": resumption},
    )
    # No head-of-line blocking: H3 answers the surviving stream in the
    # lossy exchange; HTTP/2's ordered pipe answers neither.
    assert hol["h3_first_exchange_answered"] == 1
    assert hol["h2_first_exchange_answered"] == 0
    assert (
        hol["h3_after_recovery_answered"]
        == hol["h2_after_recovery_answered"]
        == 2
    )
    assert migration["answered_after_migration"]
    assert migration["port_changed"]
    assert migration["handshake_rounds"] == 1
    assert resumption["zero_rtt"]
    assert resumption["handshake_rounds"] == 1

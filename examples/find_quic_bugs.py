"""Reproduce the four QUIC findings of paper section 6.2.

* Issue 1 -- RFC imprecision: strict vs lenient post-RETRY packet-number
  handling produces models of vastly different sizes.
* Issue 2 -- mvfst nondeterminism: after a close, stateless RESETs come
  back only ~82% of the time (a DoS-amplifying bug).
* Issue 3 -- QUIC-Tracker port bug: the RETRY token returns from a random
  port, so the learned model shows connection establishment is impossible.
* Issue 4 -- Google's STREAM_DATA_BLOCKED carries a constant 0 where live
  flow-control state belongs.

Run:  python examples/find_quic_bugs.py      (takes a few minutes)
"""

from repro.experiments import (
    issue1_retry_divergence,
    issue2_nondeterminism,
    issue3_retry_port,
    issue4_stream_data_blocked,
)


def main() -> None:
    print("=== Issue 1: RFC imprecision on post-RETRY packet-number reset ===")
    issue1 = issue1_retry_divergence()
    strict_states, lenient_states = issue1.sizes
    print(f"strict (Google-like) model : {strict_states} states")
    print(f"lenient (Quiche-like) model: {lenient_states} states")
    print(issue1.diff.render())
    print()

    print("=== Issue 2: nondeterministic stateless resets in mvfst ===")
    issue2 = issue2_nondeterminism(samples=200)
    print(f"learning aborted with: {issue2.error}")
    print(
        f"measured RESET rate: {issue2.reset_rate:.0%} "
        f"(paper: ~{issue2.expected_rate:.0%}) -- no back-off: DoS risk"
    )
    print()

    print("=== Issue 3: RETRY token returned from the wrong port ===")
    issue3 = issue3_retry_port()
    print(f"buggy reference client: establishes = {issue3.buggy_establishes}")
    print(f"fixed reference client: establishes = {issue3.fixed_establishes}")
    print(issue3.diff.render())
    print()

    print("=== Issue 4: STREAM_DATA_BLOCKED.maximum_stream_data == 0 ===")
    issue4 = issue4_stream_data_blocked()
    print(f"buggy server: synthesized field value = constant {issue4.buggy_constant}")
    print(
        "fixed server: synthesized field value = "
        + ("constant " + str(issue4.fixed_constant) if issue4.fixed_constant is not None
           else "state-dependent (not a constant)")
    )


if __name__ == "__main__":
    main()

"""Sweep learners x seeds over the TCP target with the Campaign API.

Demonstrates the declarative spec/registry/campaign workflow:

* a base :class:`~repro.spec.ExperimentSpec` fixes the shared setup (the
  cheap-random-then-W-method equivalence chain, the cache middleware);
* :meth:`~repro.campaign.Campaign.grid` expands it over the learner and
  seed axes;
* all runs target the *same* SUL, so the campaign's per-fingerprint query
  cache answers most of the later runs without executing the SUL at all.

Run:  PYTHONPATH=src python examples/sweep_tcp_learners.py
"""

from repro import Campaign, ComponentSpec, ExperimentSpec


def main() -> None:
    base = ExperimentSpec(
        target="tcp",
        target_params={"seed": 3},
        equivalence=[
            ComponentSpec("random", {"num_words": 60}),
            ComponentSpec("wmethod", {"extra_states": 1}),
        ],
    )
    campaign = Campaign.grid(
        targets=("tcp",),
        learners=("ttt", "lstar"),
        seeds=(0, 1, 2),
        base=base,
    )
    print(f"sweeping {len(campaign.specs)} runs (learners x seeds) ...")
    results = campaign.run()
    for result in results:
        print(" ", result.summary())

    total = sum(r.report.sul_queries for r in results if r.ok)
    first = results[0].report.sul_queries
    print()
    print(f"total SUL queries across the sweep: {total}")
    print(
        f"(the first run alone needed {first}; cross-run cache sharing "
        f"answered most of the rest)"
    )

    # Every cell learned the same 6-state machine, whatever the learner
    # or testing seed -- the point of the paper's determinism checks.
    def shape(model):
        canonical = model.minimize()
        return tuple(
            (str(t.source), str(t.input), str(t.output), str(t.target))
            for t in canonical.transitions()
        )

    models = {shape(r.model) for r in results if r.ok}
    print(f"distinct learned behaviours: {len(models)}")


if __name__ == "__main__":
    main()
